"""Shared test utilities: the paper's queries, a query corpus, comparators."""

from __future__ import annotations

from repro.baselines import ENGINES, UnsupportedQueryError

# ---------------------------------------------------------------------------
# Queries from the paper
# ---------------------------------------------------------------------------

INTRO_QUERY = """
<r> {
for $bib in /bib return
((for $x in $bib/* return
if (not(exists $x/price)) then $x else ()),
for $b in $bib/book return $b/title)
} </r>
"""

EXAMPLE4_QUERY = """
<q> {for $a in //a
return
<a>
{for $b in $a//b
return <b/>}
</a>}
</q>
"""

FIGURE9_QUERY = """
<q>
{for $a in //a
return
<a>
{for $b in //b
return <b/>}
</a>
} </q>
"""

FIGURE4_DOC = "<a><a><b/></a><b/></a>"  # the tree of Figure 4(a)

INTRO_DOC = (
    "<bib>"
    "<book><title/><author/></book>"
    "<book><price>49</price><title>Data on the Web</title></book>"
    "<cd><price>17</price><title>CD title</title></cd>"
    "<journal><title>J1</title></journal>"
    "</bib>"
)

# ---------------------------------------------------------------------------
# A corpus of (name, query, document) cases covering the fragment
# ---------------------------------------------------------------------------

CORPUS: list[tuple[str, str, str]] = [
    ("intro", INTRO_QUERY, INTRO_DOC),
    ("example4", EXAMPLE4_QUERY, FIGURE4_DOC),
    ("figure9", FIGURE9_QUERY, FIGURE4_DOC),
    (
        "flat-output",
        "<out>{for $b in /bib/book return $b/title}</out>",
        "<bib><book><title>T1</title></book><book><title>T2</title></book></bib>",
    ),
    (
        "bare-var-output",
        "<out>{for $b in /bib/book return $b}</out>",
        "<bib><book><title>T1</title>text</book><book/></bib>",
    ),
    (
        "wildcard",
        "<out>{for $x in /r/* return <item>{$x/name}</item>}</out>",
        "<r><a><name>n1</name></a><b><name>n2</name><junk/></b><c/></r>",
    ),
    (
        "descendant",
        "<out>{for $x in //b return $x}</out>",
        "<r><a><b>1</b><c><b>2</b></c></a><b>3</b></r>",
    ),
    (
        "nested-descendant",
        "<out>{for $a in //a return for $b in $a//b return <hit/>}</out>",
        "<r><a><a><b/></a><b/></a><b/></r>",
    ),
    (
        "exists-positive",
        "<out>{for $x in /r/item return if (exists $x/price) then <has/> else <no/>}</out>",
        "<r><item><price>1</price></item><item/><item><x/><price>2</price></item></r>",
    ),
    (
        "exists-multistep",
        "<out>{for $x in /r/item return if (exists $x/a/b) then <hit/> else ()}</out>",
        "<r><item><a/></item><item><a><b/></a></item><item><a/><a><b/></a></item></r>",
    ),
    (
        "compare-literal",
        '<out>{for $p in /ps/p return if ($p/id = "p1") then $p/name else ()}</out>',
        "<ps><p><id>p0</id><name>zero</name></p><p><id>p1</id><name>one</name></p></ps>",
    ),
    (
        "compare-numeric",
        '<out>{for $p in /ps/p return if ($p/v >= "10") then <big/> else <small/>}</out>',
        "<ps><p><v>9.5</v></p><p><v>10</v></p><p><v>100</v></p></ps>",
    ),
    (
        "compare-path-path",
        "<out>{for $a in /r/a return for $b in /r/b return "
        "if ($a/k = $b/k) then <match/> else ()}</out>",
        "<r><a><k>1</k></a><a><k>2</k></a><b><k>2</k></b><b><k>3</k></b></r>",
    ),
    (
        "join-q8-style",
        "<out>{for $p in /site/people/person return <row>{($p/name/text(), "
        "for $t in /site/sales/sale return "
        "if ($t/buyer = $p/id) then <s/> else ())}</row>}</out>",
        "<site><people>"
        "<person><id>p0</id><name>ann</name></person>"
        "<person><id>p1</id><name>bob</name></person></people>"
        "<sales><sale><buyer>p1</buyer></sale><sale><buyer>p0</buyer></sale>"
        "<sale><buyer>p1</buyer></sale></sales></site>",
    ),
    (
        "boolean-logic",
        "<out>{for $x in /r/i return "
        "if ((exists $x/a and exists $x/b) or not(exists $x/c)) "
        "then <t/> else <f/>}</out>",
        "<r><i><a/><b/></i><i><c/></i><i><a/><c/></i><i/></r>",
    ),
    (
        "if-else-both-sides",
        "<out>{for $x in /r/i return if (exists $x/a) then <has>{$x/a}</has> else <none/>}</out>",
        "<r><i><a>x</a></i><i/><i><a/></i></r>",
    ),
    (
        "text-output",
        "<out>{for $p in /ps/p return $p/name/text()}</out>",
        "<ps><p><name>alpha</name></p><p><name>beta</name></p></ps>",
    ),
    (
        "where-clause",
        '<out>{for $p in /ps/p where $p/id = "x" return $p/name}</out>',
        "<ps><p><id>x</id><name>n1</name></p><p><id>y</id><name>n2</name></p></ps>",
    ),
    (
        "let-binding",
        "<out>{for $p in /ps/p return let $n := $p/name return <row>{$n}</row>}</out>",
        "<ps><p><name>n1</name></p><p><name>n2</name><name>n3</name></p></ps>",
    ),
    (
        "multistep-for",
        "<out>{for $t in /site/people/person/name return $t}</out>",
        "<site><people><person><name>a</name></person>"
        "<person><name>b</name></person></people><junk/></site>",
    ),
    (
        "empty-result",
        "<out>{for $z in /r/zzz return $z}</out>",
        "<r><a/><b>text</b></r>",
    ),
    (
        "deep-nesting",
        "<out>{for $a in /r/a return for $b in $a/b return for $c in $b/c return $c/d}</out>",
        "<r><a><b><c><d>1</d></c><c/></b></a><a><b/></a></r>",
    ),
    (
        "true-cond",
        "<out>{for $x in /r/a return if (true()) then <t/> else <f/>}</out>",
        "<r><a/><a/></r>",
    ),
    (
        "mixed-content-literal",
        "<out>{for $x in /r/a return <w>label</w>}</out>",
        "<r><a/><a/></r>",
    ),
    (
        "sibling-revisit",
        # The same nodes bound by two sequential loops (Fig. 9 pattern, but
        # with a relative absolute mix): bs are needed after the a-loop.
        "<out>{(for $a in /r/a return <a/>, for $b in /r/b return $b)}</out>",
        "<r><a/><b>1</b><a/><b>2</b></r>",
    ),
    (
        "empty-doc-root-only",
        "<out>{for $x in /r/a return $x}</out>",
        "<r/>",
    ),
]

# ---------------------------------------------------------------------------
# Comparators
# ---------------------------------------------------------------------------


def run_all_engines(query: str, document: str) -> dict[str, str]:
    """Outputs of every engine that supports the query."""
    outputs: dict[str, str] = {}
    for name, factory in ENGINES.items():
        try:
            outputs[name] = factory().run(query, document).output
        except UnsupportedQueryError:
            continue
    return outputs


def assert_engines_agree(query: str, document: str) -> str:
    outputs = run_all_engines(query, document)
    assert outputs, "no engine supported the query"
    distinct = set(outputs.values())
    assert len(distinct) == 1, f"engines disagree: {outputs}"
    return distinct.pop()
