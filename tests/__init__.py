"""Test suite package (import-unique module paths for pytest)."""
