"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.analysis import CompileOptions, compile_query
from repro.xmark import generate_xmark

from tests.helpers import INTRO_DOC, INTRO_QUERY


@pytest.fixture(scope="session")
def intro_compiled_paper():
    """The introduction's query compiled in the paper's base configuration
    (no early updates, no redundant-role elimination) — matches Figures 1-2."""
    return compile_query(
        INTRO_QUERY, CompileOptions(early_updates=False, eliminate_redundant=False)
    )


@pytest.fixture(scope="session")
def intro_doc() -> str:
    return INTRO_DOC


@pytest.fixture(scope="session")
def xmark_doc_small() -> str:
    """A ~40 KB XMark document shared across tests (generation is fast but
    not free, so keep it session scoped)."""
    return generate_xmark(0.001, seed=7)
