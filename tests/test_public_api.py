"""Public API tests: the documented entry points keep working."""

import pytest

import repro


class TestTopLevelApi:
    def test_evaluate_one_shot(self):
        output = repro.evaluate(
            "<o>{for $b in /bib/book return $b/title}</o>",
            "<bib><book><title>T</title></book></bib>",
        )
        assert output == "<o><title>T</title></o>"

    @pytest.mark.parametrize("engine", ["gcx", "naive-dom", "projection-only"])
    def test_evaluate_engine_parameter(self, engine):
        output = repro.evaluate(
            "<o>{for $a in /r/a return <hit/>}</o>", "<r><a/><a/></r>", engine=engine
        )
        assert output == "<o><hit/><hit/></o>"

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_example(self):
        """The example in the package docstring must actually work."""
        query = "<out>{for $b in /bib/book return $b/title}</out>"
        doc = (
            "<bib><book><title>T1</title></book>"
            "<book><title>T2</title></book></bib>"
        )
        result = repro.GCXEngine().run(query, doc)
        assert result.output == "<out><title>T1</title><title>T2</title></out>"


class TestCompileApi:
    def test_compile_query_returns_artifacts(self):
        compiled = repro.compile_query(
            "<o>{for $b in /bib/book return $b/title}</o>"
        )
        assert compiled.projection_tree.node_count() >= 3
        assert compiled.variables.names[0] == "$root"
        assert compiled.rewritten is not compiled.normalized

    def test_compile_options_roundtrip(self):
        options = repro.CompileOptions(early_updates=False)
        compiled = repro.compile_query("<o>{$root/a}</o>", options)
        assert compiled.options == options

    def test_parse_unparse_exports(self):
        query = repro.parse_query("<o>{()}</o>")
        assert repro.unparse(query) == "<o/>"


class TestSchemaApi:
    DTD = (
        "<!ELEMENT bib (book*)>\n"
        "<!ELEMENT book (title)>\n"
        "<!ELEMENT title (#PCDATA)>\n"
    )

    def test_schema_exported_at_top_level(self):
        schema = repro.Schema.from_dtd_text(self.DTD)
        assert schema.tags == {"bib", "book", "title"}

    def test_load_dtd_exported(self, tmp_path):
        path = tmp_path / "bib.dtd"
        path.write_text(self.DTD)
        assert repro.load_dtd(path).roots == {"bib"}

    def test_compile_query_schema_keyword(self):
        compiled = repro.compile_query(
            "<o>{for $b in /bib/book return $b/title}</o>",
            schema=repro.Schema.from_dtd_text(self.DTD),
        )
        assert isinstance(compiled.constraints, repro.SchemaConstraints)
        assert compiled.certified_zero_buffer

    def test_compile_query_positional_back_compat(self):
        """compile_query(query, options) keeps working unchanged."""
        options = repro.CompileOptions(early_updates=False)
        compiled = repro.compile_query("<o>{$root/a}</o>", options)
        assert compiled.options == options
        assert compiled.constraints is None

    def test_engine_session_schema_keyword(self):
        schema = repro.Schema.from_dtd_text(self.DTD)
        session = repro.GCXEngine().session(
            "<o>{for $b in /bib/book return $b/title}</o>", schema=schema
        )
        doc = "<bib><book><title>T</title></book></bib>"
        result = session.run(doc)
        assert result.output == "<o><title>T</title></o>"
        assert result.stats.hwm_bytes == 0

    def test_schema_violation_exported(self):
        with pytest.raises(repro.SchemaViolation):
            repro.Schema.from_dtd_text("garbage")


class TestEngineRegistry:
    def test_engines_share_interface(self):
        for name, factory in repro.ENGINES.items():
            engine = factory()
            assert hasattr(engine, "compile")
            assert hasattr(engine, "run")
            assert hasattr(engine, "name")
            assert engine.name == name

    def test_xmark_exports(self):
        assert len(repro.TABLE1_QUERIES) == 5
        doc = repro.generate_xmark(0.0005, seed=1)
        assert doc.startswith("<site>")
