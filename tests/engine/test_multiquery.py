"""The multi-query shared-stream engine: correctness, invariants, leaks.

The two load-bearing guarantees of :mod:`repro.engine.multi`:

1. **Differential conformance** — a shared pass over one document must be
   byte-identical, query by query, to sequential per-query
   :class:`~repro.engine.session.QuerySession` runs (and therefore to the
   committed goldens).
2. **Single-scan invariant** — the shared pass reads the document's token
   stream exactly once, however many queries ride along.

Plus the run-machinery properties inherited from the single-query engine:
strict safety per lane, exactly-once checkout release on completion,
close and crash, and session reusability afterwards.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine import MultiQuerySession, QuerySession
from repro.engine.session import EngineOptions
from repro.xmark.queries import XMARK_QUERIES
from repro.xmlio.lexer import tokenize

GOLDENS = Path(__file__).parent / "goldens"
QUERY_NAMES = sorted(XMARK_QUERIES)


@pytest.fixture(scope="module")
def document() -> str:
    return (GOLDENS / "document.xml").read_text(encoding="utf-8")


def golden(name: str) -> str:
    return (GOLDENS / f"{name}.expected").read_text(encoding="utf-8")


def all_queries() -> dict[str, str]:
    return {name: XMARK_QUERIES[name].adapted for name in QUERY_NAMES}


class TestDifferentialConformance:
    def test_all_golden_queries_in_one_pass(self, document):
        session = MultiQuerySession(all_queries())
        results = session.run(document)
        assert list(results) == QUERY_NAMES  # query order preserved
        for name in QUERY_NAMES:
            assert results[name].output == golden(name), name

    def test_repeated_passes_stay_identical(self, document):
        """Recycled buffers and warm matchers must not drift run to run."""
        session = MultiQuerySession(all_queries())
        first = session.run(document)
        second = session.run(document)
        for name in QUERY_NAMES:
            assert first[name].output == second[name].output == golden(name)
        assert session.runs_completed == 2

    def test_matches_fresh_single_query_sessions(self, document):
        results = MultiQuerySession(all_queries()).run(document)
        for name, text in all_queries().items():
            assert results[name].output == QuerySession(text).run(document).output

    def test_single_query_is_the_n1_case(self, document):
        """One-query multi session == plain QuerySession, byte for byte."""
        multi = MultiQuerySession({"Q1": XMARK_QUERIES["Q1"].adapted})
        single = QuerySession(XMARK_QUERIES["Q1"].adapted)
        assert multi.run(document)["Q1"].output == single.run(document).output


class TestSingleScanInvariant:
    def test_shared_pass_reads_one_document_scan(self, document):
        document_tokens = sum(1 for _token in tokenize(document))
        session = MultiQuerySession(all_queries())
        stream = session.run_streaming(document)
        for _pair in stream:
            pass
        stats = stream.stats
        assert stats.tokens_read == document_tokens
        assert stats.query_count == len(QUERY_NAMES)

    def test_scan_count_is_independent_of_query_count(self, document):
        document_tokens = sum(1 for _token in tokenize(document))
        for subset in (["Q1"], ["Q1", "Q6"], QUERY_NAMES):
            session = MultiQuerySession(
                {name: XMARK_QUERIES[name].adapted for name in subset}
            )
            stream = session.run_streaming(document)
            for _pair in stream:
                pass
            assert stream.stats.tokens_read == document_tokens, subset

    def test_routing_withholds_irrelevant_regions(self, document):
        """A people-only query must not be fed the regions subtree."""
        session = MultiQuerySession(
            {"Q1": XMARK_QUERIES["Q1"].adapted, "Q6": XMARK_QUERIES["Q6"].adapted}
        )
        stream = session.run_streaming(document)
        for _pair in stream:
            pass
        stats = stream.stats
        # Each lane saw a proper subset of the scan, and the routing saved
        # dispatches overall (both queries touch disjoint site sections).
        assert stats.lane_tokens["Q1"] < stats.tokens_read
        assert stats.lane_tokens["Q6"] < stats.tokens_read
        assert stats.routing_savings > 0
        assert stats.dispatched_tokens == sum(stats.lane_tokens.values())


class TestRunMachinery:
    def test_streaming_yields_interleaved_named_tokens(self, document):
        session = MultiQuerySession(
            {"Q1": XMARK_QUERIES["Q1"].adapted, "Q13": XMARK_QUERIES["Q13"].adapted}
        )
        names = {name for name, _token in session.run_streaming(document)}
        assert names == {"Q1", "Q13"}

    def test_strict_safety_holds_per_lane(self, document):
        session = MultiQuerySession(
            all_queries(), EngineOptions(strict=True)
        )
        results = session.run(document)  # strict check_safety per run
        for result in results.values():
            assert result.stats.role_accounting_balanced()
            assert result.stats.live_role_instances == 0

    def test_close_releases_every_checkout(self, document):
        session = MultiQuerySession(
            {"Q1": XMARK_QUERIES["Q1"].adapted, "Q6": XMARK_QUERIES["Q6"].adapted}
        )
        stream = session.run_streaming(document)
        for _count, _pair in zip(range(3), stream):
            pass
        stream.close()
        # Every per-query session must be serviceable again immediately:
        # a leaked checkout would raise the single-client guard instead.
        results = session.run(document)
        assert results["Q1"].output == golden("Q1")
        assert results["Q6"].output == golden("Q6")

    def test_close_is_idempotent(self, document):
        session = MultiQuerySession({"Q1": XMARK_QUERIES["Q1"].adapted})
        stream = session.run_streaming(document)
        next(iter(stream))
        stream.close()
        stream.close()

    def test_crash_mid_stream_releases_all_checkouts(self, document):
        """A dying input poisons the whole pass; no checkout may leak."""

        def poisoned():
            for count, token in enumerate(tokenize(document)):
                if count == 50:
                    raise RuntimeError("boom")
                yield token

        session = MultiQuerySession(
            {"Q1": XMARK_QUERIES["Q1"].adapted, "Q6": XMARK_QUERIES["Q6"].adapted}
        )
        stream = session.run_streaming(poisoned())
        with pytest.raises(RuntimeError, match="boom"):
            for _pair in stream:
                pass
        # All checkouts must be home again; the session still works.
        results = session.run(document)
        assert results["Q1"].output == golden("Q1")
        assert results["Q6"].output == golden("Q6")

    def test_result_outputs_and_wall_clock(self, document):
        session = MultiQuerySession({"Q1": XMARK_QUERIES["Q1"].adapted})
        results = session.run(document)
        result = results["Q1"]
        assert result.output == golden("Q1")
        assert result.elapsed_seconds >= 0
        assert result.exhausted_input

    def test_custom_sinks_receive_tokens(self, document):
        from repro.xmlio.serialize import StringSink

        session = MultiQuerySession({"Q1": XMARK_QUERIES["Q1"].adapted})
        sink = StringSink()
        results = session.run(document, sinks={"Q1": sink})
        assert results["Q1"].output == ""  # tokens went to the caller's sink
        sink.close()
        assert sink.getvalue() == golden("Q1")

    def test_path_documents_are_supported(self):
        session = MultiQuerySession({"Q1": XMARK_QUERIES["Q1"].adapted})
        results = session.run(GOLDENS / "document.xml")
        assert results["Q1"].output == golden("Q1")

    def test_aggregate_accounting_settles(self, document):
        session = MultiQuerySession(all_queries())
        session.run(document)
        acct = session._accountant
        assert acct.live_nodes == 0
        assert acct.live_bytes == 0
        assert session.peak_live_nodes > 0

    def test_gc_abandoned_run_settles_the_aggregate(self, document):
        """Dropping a multi-run without close() must not inflate the
        session's live aggregate forever (the finalizer queues the open
        lanes' residency; observation points reap the queue)."""
        import gc

        session = MultiQuerySession(
            {"Q1": XMARK_QUERIES["Q1"].adapted, "Q6": XMARK_QUERIES["Q6"].adapted}
        )
        stream = session.run_streaming(document)
        for _count, _pair in zip(range(5), stream):
            pass
        assert session._accountant.live_nodes > 0  # mid-pass residency
        del stream
        gc.collect()
        assert session.peak_live_nodes > 0  # property reaps the queue
        acct = session._accountant
        assert acct.live_nodes == 0
        assert acct.live_bytes == 0
        # The sessions themselves are serviceable again (guards reaped).
        assert session.run(document)["Q1"].output == golden("Q1")


class TestConstruction:
    def test_sequence_queries_get_default_names(self, document):
        session = MultiQuerySession(
            [XMARK_QUERIES["Q1"].adapted, XMARK_QUERIES["Q13"].adapted]
        )
        assert session.names == ("q0", "q1")
        results = session.run(document)
        assert results["q0"].output == golden("Q1")

    def test_compiled_queries_are_adopted(self, document):
        from repro.analysis import compile_query

        compiled = compile_query(XMARK_QUERIES["Q1"].adapted)
        session = MultiQuerySession({"Q1": compiled})
        assert session.compiled("Q1") is compiled
        assert session.run(document)["Q1"].output == golden("Q1")

    def test_empty_query_set_is_rejected(self):
        with pytest.raises(ValueError, match="at least one query"):
            MultiQuerySession({})

    def test_union_tree_masks_cover_all_queries(self):
        session = MultiQuerySession(all_queries())
        union = session.union
        assert union.query_count == len(QUERY_NAMES)
        assert union.root.mask == union.full_mask
        rendered = session.format_union()
        for name in QUERY_NAMES:
            assert name in rendered
