"""Evaluator unit tests: iteration discipline, conditions, output."""

import pytest

from repro.engine import EngineOptions, GCXEngine
from repro.engine.evaluator import _compare


def run(query, doc, **opts):
    return GCXEngine(EngineOptions(**opts)).run(query, doc)


class TestOutput:
    def test_element_constructor(self):
        assert run("<a>{()}</a>", "<x/>").output == "<a/>"

    def test_literal_text(self):
        assert run("<a>hello</a>", "<x/>").output == "<a>hello</a>"

    def test_var_output_serializes_subtree(self):
        result = run(
            "<out>{for $b in /r/b return $b}</out>",
            "<r><b><c>text</c><d/></b></r>",
        )
        assert result.output == "<out><b><c>text</c><d/></b></out>"

    def test_path_output_all_matches_in_order(self):
        result = run(
            "<out>{for $r in /r return $r/k}</out>",
            "<r><k>1</k><x/><k>2</k><k>3</k></r>",
        )
        assert result.output == "<out><k>1</k><k>2</k><k>3</k></out>"

    def test_text_node_output(self):
        result = run(
            "<out>{for $b in /r/b return $b/text()}</out>",
            "<r><b>alpha</b><b>beta</b></r>",
        )
        assert result.output == "<out>alphabeta</out>"

    def test_output_escapes_special_characters(self):
        result = run(
            "<out>{for $b in /r/b return $b}</out>",
            "<r><b>a &amp; b &lt; c</b></r>",
        )
        assert result.output == "<out><b>a &amp; b &lt; c</b></out>"


class TestIterationDiscipline:
    def test_iteration_survives_gc_of_previous_sibling(self):
        """Early updates purge each binding before the next is fetched."""
        result = run(
            "<out>{for $r in /r return $r/k}</out>",
            "<r>" + "".join(f"<k>{i}</k>" for i in range(50)) + "</r>",
        )
        assert result.output.count("<k>") == 50
        # The buffer never holds more than a handful of nodes at once.
        assert result.stats.hwm_nodes <= 6

    def test_descendant_iteration_document_order(self):
        result = run(
            "<out>{for $b in //b return $b}</out>",
            "<r><b>1</b><a><b>2</b><c><b>3</b></c></a><b>4</b></r>",
        )
        assert result.output == "<out><b>1</b><b>2</b><b>3</b><b>4</b></out>"

    def test_nested_loops_over_same_nodes(self):
        result = run(
            "<out>{for $a in /r/a return for $k in $a/k return <hit/>}</out>",
            "<r><a><k/><k/></a><a><k/></a></r>",
        )
        assert result.output == "<out><hit/><hit/><hit/></out>"

    def test_empty_iteration(self):
        result = run("<out>{for $z in /r/none return $z}</out>", "<r><a/></r>")
        assert result.output == "<out/>"


class TestConditions:
    def test_exists_true_and_false(self):
        result = run(
            "<out>{for $i in /r/i return if (exists $i/a) then <y/> else <n/>}</out>",
            "<r><i><a/></i><i><b/></i></r>",
        )
        assert result.output == "<out><y/><n/></out>"

    def test_exists_blocks_until_witness_or_close(self):
        # The witness is the last child: evaluation must wait for it.
        result = run(
            "<out>{for $i in /r/i return if (exists $i/a) then <y/> else <n/>}</out>",
            "<r><i><x/><x/><a/></i></r>",
        )
        assert result.output == "<out><y/></out>"

    def test_comparison_existential_semantics(self):
        # Any pair satisfying the comparison makes it true.
        result = run(
            '<out>{for $i in /r/i return if ($i/v = "2") then <y/> else <n/>}</out>',
            "<r><i><v>1</v><v>2</v></i><i><v>3</v></i></r>",
        )
        assert result.output == "<out><y/><n/></out>"

    def test_empty_sequence_comparison_is_false(self):
        result = run(
            '<out>{for $i in /r/i return if ($i/v = "1") then <y/> else <n/>}</out>',
            "<r><i/></r>",
        )
        assert result.output == "<out><n/></out>"

    def test_string_value_concatenates_subtree(self):
        result = run(
            '<out>{for $i in /r/i return if ($i/v = "ab") then <y/> else <n/>}</out>',
            "<r><i><v>a<nest>b</nest></v></i></r>",
        )
        assert result.output == "<out><y/></out>"


class TestCompareHelper:
    @pytest.mark.parametrize(
        "left, op, right, expected",
        [
            ("10", "=", "10.0", True),  # numeric equality
            ("10", "<", "9", False),
            ("9.5", "<", "10", True),  # numeric, not lexicographic
            ("abc", "<", "abd", True),  # string fallback
            ("abc", "=", "abc", True),
            ("10", "=", "ten", False),  # mixed: string comparison
            ("100", ">=", "100", True),
            ("2", ">", "10", False),
        ],
    )
    def test_cases(self, left, op, right, expected):
        assert _compare(left, op, right) == expected


class TestLaziness:
    def test_exists_check_stops_reading_early(self):
        """An existence check over the document head short-circuits: the
        first witness decides, and nothing further is read for it."""
        head = "<r><people><p><id>x</id></p></people>"
        tail = "<junk>" + "<j/>" * 5000 + "</junk></r>"
        result = run(
            "<out>{if (exists $root/r/people) then <yes/> else <no/>}</out>",
            head + tail,
        )
        assert result.output == "<out><yes/></out>"
        assert result.stats.tokens_read < 200
        assert not result.exhausted_input

    def test_demand_driven_scan_keeps_memory_flat(self):
        """A loop over /r/people must read to EOF (more people could
        follow), but the junk tail contributes nothing to the buffer."""
        head = "<r><people><p><id>x</id></p></people>"
        tail = "<junk>" + "<j/>" * 5000 + "</junk></r>"
        result = run(
            "<out>{for $ps in /r/people return for $p in $ps/p return $p/id}</out>",
            head + tail,
        )
        assert result.output == "<out><id>x</id></out>"
        assert result.exhausted_input
        assert result.stats.hwm_nodes < 10

    def test_full_scan_reads_everything(self):
        doc = "<r>" + "<a/>" * 100 + "</r>"
        result = run("<out>{for $a in /r/a return <hit/>}</out>", doc)
        assert result.exhausted_input
