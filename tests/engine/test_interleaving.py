"""Interleaved same-thread streaming runs: independent dynamic state.

A session supports any number of concurrently open streaming runs on one
thread; each run owns its preprojector (frame stack, depth, consumed
``[1]`` bookkeeping) and buffer while sharing the session's lazy-DFA
matcher.  These are the regression tests that the shared static state
stays observationally invisible across interleavings — in particular that
two generators over *different documents* keep independent preprojector
depth state, and that ``check_safety`` (run strictly at each run's
finalize) never sees one run's counters polluted by another's progress.

Kept deliberately brutal on the schedule: uneven alternation, runs over
documents of different depths, ``[1]``-consuming (off-DFA) queries, and a
multi-query shared pass interleaved with single-query runs of the same
underlying sessions.
"""

from __future__ import annotations

import pytest

from repro.engine import MultiQuerySession, QuerySession
from repro.xmark.queries import XMARK_QUERIES
from repro.xmlio import StringSink


def drain(tokens) -> str:
    sink = StringSink()
    for token in tokens:
        sink.write(token)
    sink.close()
    return sink.getvalue()


def doc_flat(n: int) -> str:
    items = "".join(f"<book><title>F{i}</title></book>" for i in range(n))
    return f"<bib>{items}</bib>"


def doc_deep(n: int) -> str:
    items = "".join(
        f"<book><x><y><z>deep</z></y></x><title>D{i}</title></book>"
        for i in range(n)
    )
    return f"<bib>{items}</bib>"


QUERY = "<o>{for $b in /bib/book return $b/title}</o>"
#: Forces [1]-step consumption (off-DFA transitions) via the condition.
FIRST_WITNESS_QUERY = (
    "<o>{for $b in /bib/book return "
    'if ($b/title = "F1") then <hit/> else ()}</o>'
)


class TestInterleavedDepthState:
    def test_two_generators_keep_independent_depth(self):
        """The satellite regression: depths diverge, outputs do not."""
        session = QuerySession(QUERY)
        doc_a, doc_b = doc_flat(4), doc_deep(3)
        expected_a = session.run(doc_a).output
        expected_b = session.run(doc_b).output

        run_a = session.run_streaming(doc_a)
        run_b = session.run_streaming(doc_b)
        out_a = [next(run_a)]  # A under way...
        out_b = drain(run_b)  # ...while B runs to completion
        # B's exhaustion must not have dragged A's preprojector along:
        # A is still mid-document at its own depth, B's is closed out.
        assert not run_a._preprojector.exhausted
        assert run_b._preprojector.exhausted
        assert run_b._preprojector.depth == 0
        out_a.extend(run_a)
        assert drain(out_a) == expected_a
        assert out_b == expected_b
        assert run_a.result is not None and run_b.result is not None

    @pytest.mark.parametrize("query", [QUERY, FIRST_WITNESS_QUERY])
    def test_uneven_three_way_interleave(self, query):
        session = QuerySession(query)
        documents = [doc_flat(5), doc_deep(4), doc_flat(1)]
        expected = [session.run(doc).output for doc in documents]

        runs = [iter(session.run_streaming(doc)) for doc in documents]
        outputs: list[list] = [[], [], []]
        done = [False, False, False]
        step = 0
        while not all(done):
            index = step % 3
            step += 1
            # Uneven schedule: run i advances i+1 tokens per turn.
            for _count in range(index + 1):
                if done[index]:
                    break
                try:
                    outputs[index].append(next(runs[index]))
                except StopIteration:
                    done[index] = True
        assert [drain(tokens) for tokens in outputs] == expected

    def test_strict_safety_after_interleaved_completion(self):
        """check_safety runs per finalize; interleaving must not trip it."""
        session = QuerySession(FIRST_WITNESS_QUERY)  # strict by default
        run_a = iter(session.run_streaming(doc_flat(3)))
        run_b = iter(session.run_streaming(doc_deep(2)))
        a_done = b_done = False
        while not (a_done and b_done):
            if not a_done:
                a_done = next(run_a, None) is None
            if not b_done:
                b_done = next(run_b, None) is None
        # Both finalized under strict mode: balanced role accounting each.
        assert session.runs_completed >= 2

    def test_multi_run_interleaved_with_single_runs(self):
        """A shared pass and plain runs of its member sessions coexist."""
        multi = MultiQuerySession(
            {"Q1": XMARK_QUERIES["Q1"].adapted, "Q17": XMARK_QUERIES["Q17"].adapted}
        )
        from pathlib import Path

        document = (
            Path(__file__).parent / "goldens" / "document.xml"
        ).read_text(encoding="utf-8")
        expected_q1 = multi.sessions["Q1"].run(document).output
        expected_q17 = multi.sessions["Q17"].run(document).output

        stream = multi.run_streaming(document)
        first_pairs = [next(stream) for _count in range(2)]
        # While the shared pass is mid-flight, run the same sessions solo
        # on this thread — their checkouts are per-run, so nothing leaks.
        assert multi.sessions["Q1"].run(document).output == expected_q1
        sinks = {"Q1": StringSink(), "Q17": StringSink()}
        for name, token in first_pairs:
            sinks[name].write(token)
        for name, token in stream:
            sinks[name].write(token)
        for sink in sinks.values():
            sink.close()
        assert sinks["Q1"].getvalue() == expected_q1
        assert sinks["Q17"].getvalue() == expected_q17
