"""SessionPool: concurrency stress, checkout discipline, aggregate stats.

The stress tests drive N threads x M documents through one pool and hold
the results to the strongest oracle available — byte-identical output to a
sequential :class:`QuerySession` — while instrumentation asserts that no
``BufferTree`` is ever checked out twice concurrently.  The worker count
is taken from ``GCX_POOL_STRESS_WORKERS`` so CI can run a thread-count
matrix over the same tests.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.concurrency import serving_documents
from repro.engine import QuerySession, SessionPool
from repro.engine.pool import PoolResult
from repro.xmark.queries import XMARK_QUERIES
from repro.xmlio import StringSink

from tests.helpers import INTRO_QUERY

STRESS_WORKERS = int(os.environ.get("GCX_POOL_STRESS_WORKERS", "8"))
STRESS_DOCUMENTS = 32

Q1 = XMARK_QUERIES["Q1"].adapted


class TestStress:
    def test_pool_output_byte_identical_to_sequential(self):
        """N threads x M documents == sequential QuerySession, byte for byte."""
        docs = serving_documents(STRESS_DOCUMENTS)
        sequential = QuerySession(Q1)
        expected = [sequential.run(doc).output for doc in docs]
        with SessionPool(Q1, max_workers=STRESS_WORKERS) as pool:
            results = list(pool.map(docs))
        assert [r.output for r in results] == expected

    def test_stress_via_submit_futures(self):
        docs = serving_documents(STRESS_DOCUMENTS)
        sequential = QuerySession(Q1)
        expected = [sequential.run(doc).output for doc in docs]
        with SessionPool(Q1, max_workers=STRESS_WORKERS) as pool:
            futures = [pool.submit(doc) for doc in docs]
            assert [f.result().output for f in futures] == expected

    def test_stress_direct_runs_from_many_threads(self):
        """run()/run_streaming() on caller threads, all hitting one pool."""
        docs = serving_documents(STRESS_DOCUMENTS)
        sequential = QuerySession(Q1)
        expected = [sequential.run(doc).output for doc in docs]
        with SessionPool(Q1, max_workers=STRESS_WORKERS) as pool:
            with ThreadPoolExecutor(STRESS_WORKERS) as executor:
                outputs = list(
                    executor.map(lambda d: pool.run(d).output, docs)
                )
        assert outputs == expected

    def test_no_buffer_checked_out_twice_concurrently(self):
        """Instrumented checkout: ownership is exclusive at every instant."""
        docs = serving_documents(STRESS_DOCUMENTS)
        pool = SessionPool(Q1, max_workers=STRESS_WORKERS)
        held: dict[int, int] = {}
        violations: list[int] = []
        lock = threading.Lock()
        real_checkout = pool._checkout_buffer
        real_release = pool._release_buffer

        def checkout():
            buffer = real_checkout()
            with lock:
                if id(buffer) in held:
                    violations.append(id(buffer))
                held[id(buffer)] = threading.get_ident()
            return buffer

        def release(buffer, *, completed):
            with lock:
                held.pop(id(buffer), None)
            real_release(buffer, completed=completed)

        pool._checkout_buffer = checkout
        pool._release_buffer = release
        with pool:
            list(pool.map(docs))
        assert violations == []
        assert held == {}  # every checkout was released

    def test_double_checkout_raises(self):
        """The pool's own owner assertion fires on a double checkout."""
        pool = SessionPool(INTRO_QUERY)
        buffer = pool._checkout_buffer()
        # Simulate the bug the assertion exists for: the same buffer
        # re-entering circulation while still owned by a run.
        pool._idle_buffers.append(buffer)
        with pytest.raises(RuntimeError, match="already held"):
            pool._checkout_buffer()

    def test_release_of_unknown_buffer_raises(self):
        from repro.buffer.buffer import BufferTree

        pool = SessionPool(INTRO_QUERY)
        with pytest.raises(RuntimeError, match="not checked out"):
            pool._release_buffer(BufferTree(), completed=True)


class TestConcurrentStreams:
    def test_streams_genuinely_overlap(self):
        """A barrier forces all workers to hold open runs simultaneously."""
        workers = min(STRESS_WORKERS, 4)
        docs = serving_documents(workers)
        sequential = QuerySession(Q1)
        expected = [sequential.run(doc).output for doc in docs]
        pool = SessionPool(Q1, max_workers=workers)
        barrier = threading.Barrier(workers)

        def serve(i: int) -> str:
            stream = pool.run_streaming(docs[i])
            sink = StringSink()
            sink.write(next(stream))  # buffer now checked out, run open
            barrier.wait()  # every thread holds an open run here
            for token in stream:
                sink.write(token)
            return sink.getvalue()

        with pool:
            with ThreadPoolExecutor(workers) as executor:
                outputs = list(executor.map(serve, range(workers)))
        assert outputs == expected
        stats = pool.stats
        assert stats.peak_active_runs >= workers
        assert stats.active_runs == 0
        assert stats.live_nodes == 0 and stats.live_bytes == 0

    def test_shared_matcher_is_one_object_and_warms_across_runs(self):
        docs = serving_documents(8)
        with SessionPool(Q1, max_workers=4) as pool:
            matcher = pool.matcher
            list(pool.map(docs))
            assert pool.matcher is matcher
            warmed_states = matcher.state_count
            hits_before = matcher.table_hits
            list(pool.map(docs))
            # Replaying the same documents discovers no new DFA states and
            # runs almost entirely on memoized transitions.
            assert matcher.state_count == warmed_states
            assert matcher.table_hits > hits_before


class TestAggregateAccounting:
    def test_aggregate_peak_at_least_single_run_peak(self):
        docs = serving_documents(16)
        with SessionPool(Q1, max_workers=4) as pool:
            results = list(pool.map(docs))
            stats = pool.stats
        assert stats.peak_live_nodes >= max(r.hwm_nodes for r in results)
        assert stats.peak_live_bytes >= max(r.hwm_bytes for r in results)
        assert stats.runs_completed == len(docs)
        assert stats.live_nodes == 0 and stats.live_bytes == 0

    def test_overlapping_runs_sum_into_aggregate(self):
        """Two runs paused while holding buffered nodes: the aggregate live
        count is the sum of both runs' residency, which no per-run stat
        can see."""
        # INTRO_QUERY buffers each <book> subtree while deciding on it, so
        # pausing right after the first buffered token leaves nodes live.
        doc = (
            "<bib><book><title>T1</title></book>"
            "<book><price>9</price><title>T2</title></book></bib>"
        )
        pool = SessionPool(INTRO_QUERY, max_workers=2)

        def pause_with_live_nodes(stream) -> None:
            for _ in range(3):  # <r> wrapper, then buffered book content
                next(stream)

        solo = pool.run_streaming(doc)
        pause_with_live_nodes(solo)
        live_single = pool.stats.live_nodes
        for _ in solo:
            pass
        assert live_single > 0

        stream_a = pool.run_streaming(doc)
        stream_b = pool.run_streaming(doc)
        pause_with_live_nodes(stream_a)
        pause_with_live_nodes(stream_b)
        live_both = pool.stats.live_nodes
        for stream in (stream_a, stream_b):
            for _ in stream:
                pass
        assert live_both == 2 * live_single
        assert pool.stats.peak_active_runs >= 2
        assert pool.stats.live_nodes == 0
        pool.close()

    def test_abandoned_run_is_settled(self):
        docs = serving_documents(4)
        with SessionPool(Q1, max_workers=2) as pool:
            stream = pool.run_streaming(docs[0])
            next(stream)
            stream.close()
            stats = pool.stats
            assert stats.runs_abandoned == 1
            assert stats.active_runs == 0
            assert stats.live_nodes == 0 and stats.live_bytes == 0
            # The pool still serves correctly afterwards.
            assert pool.run(docs[0]).output == QuerySession(Q1).run(
                docs[0]
            ).output

    def test_failed_run_releases_its_checkout(self):
        with SessionPool(INTRO_QUERY, max_workers=2) as pool:
            with pytest.raises(Exception):
                pool.run("<bib><unclosed>")
            stats = pool.stats
            assert stats.active_runs == 0
            assert stats.runs_abandoned == 1
            # The worker slot is not wedged: the pool keeps serving.
            assert "<title>" not in pool.run("<bib><book/></bib>").output


class TestMapSemantics:
    def test_map_is_ordered(self):
        docs = serving_documents(24)
        with SessionPool(Q1, max_workers=4) as pool:
            outputs = [r.output for r in pool.map(docs)]
        sequential = QuerySession(Q1)
        assert outputs == [sequential.run(d).output for d in docs]

    def test_map_is_backpressured_and_lazy(self):
        """The documents iterable is pulled as results are consumed, never
        drained eagerly: in-flight work stays within the window."""
        docs = serving_documents(40)
        pulled = []

        def source():
            for doc in docs:
                pulled.append(doc)
                yield doc

        with SessionPool(Q1, max_workers=2) as pool:
            results = pool.map(source(), window=3, chunksize=1)
            assert pulled == []  # nothing read before iteration
            first = next(results)
            assert first.output  # sanity
            assert len(pulled) <= 3 + 1  # window chunks + the one yielded
            rest = list(results)
        assert len(pulled) == len(docs)
        assert len(rest) == len(docs) - 1

    def test_map_chunksize_batches_without_reordering(self):
        docs = serving_documents(17)  # deliberately not a chunk multiple
        with SessionPool(Q1, max_workers=4) as pool:
            outputs = [r.output for r in pool.map(docs, chunksize=5)]
        sequential = QuerySession(Q1)
        assert outputs == [sequential.run(d).output for d in docs]

    def test_map_propagates_evaluation_errors(self):
        docs = ["<site><people/></site>", "<site><broken>"]
        with SessionPool(Q1, max_workers=2) as pool:
            with pytest.raises(Exception):
                list(pool.map(docs))

    def test_map_rejects_bad_arguments(self):
        with SessionPool(Q1) as pool:
            with pytest.raises(ValueError, match="chunksize"):
                list(pool.map(["<site/>"], chunksize=0))
            with pytest.raises(ValueError, match="window"):
                list(pool.map(["<site/>"], window=0))


class TestMapMulti:
    QUERIES = {
        "Q1": Q1,
        "Q17": XMARK_QUERIES["Q17"].adapted,
        "Q20": XMARK_QUERIES["Q20"].adapted,
    }

    def test_map_multi_is_ordered_and_correct(self):
        docs = serving_documents(12)
        sequential = {
            name: QuerySession(text) for name, text in self.QUERIES.items()
        }
        with SessionPool(Q1, max_workers=STRESS_WORKERS) as pool:
            rows = list(pool.map_multi(docs, self.QUERIES, chunksize=2))
        assert len(rows) == len(docs)
        for doc, row in zip(docs, rows):
            assert set(row) == set(self.QUERIES)
            for name, session in sequential.items():
                assert row[name].output == session.run(doc).output

    def test_map_multi_counts_runs_per_query(self):
        docs = serving_documents(6)
        with SessionPool(Q1, max_workers=2) as pool:
            list(pool.map_multi(docs, self.QUERIES))
            stats = pool.stats
        assert stats.runs_started == len(docs) * len(self.QUERIES)
        assert stats.runs_completed == stats.runs_started

    def test_map_multi_accepts_sequences_and_compiled(self):
        from repro.analysis import compile_query

        compiled = compile_query(Q1)
        docs = serving_documents(3)
        with SessionPool(Q1, max_workers=2) as pool:
            rows = list(pool.map_multi(docs, [compiled]))
        sequential = QuerySession(Q1)
        assert [row["q0"].output for row in rows] == [
            sequential.run(doc).output for doc in docs
        ]

    def test_map_multi_rejects_process_executor(self):
        with SessionPool(Q1, executor="process", max_workers=2) as pool:
            with pytest.raises(RuntimeError, match="thread executor"):
                pool.map_multi(["<site/>"], self.QUERIES)

    def test_map_multi_after_close_raises(self):
        pool = SessionPool(Q1, max_workers=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(pool.map_multi(["<site/>"], self.QUERIES))


class TestProcessExecutor:
    def test_process_pool_matches_sequential(self):
        docs = serving_documents(6)
        sequential = QuerySession(Q1)
        expected = [sequential.run(doc).output for doc in docs]
        with SessionPool(Q1, max_workers=2, executor="process") as pool:
            results = list(pool.map(docs, chunksize=2))
            assert [r.output for r in results] == expected
            assert all(isinstance(r, PoolResult) for r in results)
            assert pool.stats.runs_started == len(docs)
        # Completion counters are exact once close() has drained the
        # executor (done-callbacks may lag future.result() before that).
        assert pool.stats.runs_completed == len(docs)

    def test_process_pool_requires_query_text(self):
        from repro.analysis.compile import compile_query

        compiled = compile_query(Q1)
        with pytest.raises(ValueError, match="query as text"):
            SessionPool(compiled, executor="process")

    def test_process_pool_has_no_streaming(self):
        with SessionPool(Q1, executor="process") as pool:
            with pytest.raises(RuntimeError, match="not available"):
                pool.run_streaming("<site/>")

    def test_process_pool_counts_failed_runs(self):
        with SessionPool(Q1, max_workers=2, executor="process") as pool:
            good = pool.submit("<site><people/></site>")
            bad = pool.submit("<site><broken>")
            assert good.result().output
            with pytest.raises(Exception):
                bad.result()
            assert pool.stats.runs_started == 2  # exact at submit
        stats = pool.stats  # completion counters exact after close()
        assert stats.runs_completed == 1
        assert stats.runs_abandoned == 1

    def test_process_pool_summary_reports_aggregate_as_na(self):
        with SessionPool(Q1, max_workers=2, executor="process") as pool:
            list(pool.map(["<site><people/></site>"]))
            summary = pool.stats.summary()
        assert "n/a (process workers)" in summary
        assert "0 nodes" not in summary


class TestLifecycle:
    def test_close_drains_queued_work(self):
        """Futures accepted before close() all resolve — close waits for
        queued (not just running) work instead of failing it."""
        docs = serving_documents(STRESS_DOCUMENTS)
        sequential = QuerySession(Q1)
        expected = [sequential.run(doc).output for doc in docs]
        pool = SessionPool(Q1, max_workers=2)
        futures = [pool.submit(doc) for doc in docs]
        pool.close()
        assert [f.result().output for f in futures] == expected

    def test_closed_pool_rejects_work(self):
        pool = SessionPool(Q1)
        pool.run("<site/>")
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run("<site/>")
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit("<site/>")
        pool.close()  # idempotent

    def test_leftover_map_iterator_gets_clear_error_after_close(self):
        """Chunks are submitted lazily, so an iterator kept across close()
        must fail with the pool's error, not the executor's opaque one."""
        pool = SessionPool(Q1, max_workers=2)
        results = pool.map(["<site><people/></site>"] * 3, window=1)
        assert next(results).output  # first chunk served while open
        pool.close()
        with pytest.raises(RuntimeError, match="SessionPool is closed"):
            list(results)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            SessionPool(Q1, max_workers=0)
        with pytest.raises(ValueError, match="executor"):
            SessionPool(Q1, executor="fibers")

    def test_pool_adopts_precompiled_query(self):
        from repro.analysis.compile import compile_query

        compiled = compile_query(INTRO_QUERY)
        with SessionPool(compiled, max_workers=2) as pool:
            assert pool.compiled is compiled
            doc = "<bib><book><title>T</title></book></bib>"
            assert pool.run(doc).output == QuerySession(compiled).run(
                doc
            ).output

    def test_dropped_unstarted_run_releases_its_checkout(self):
        """A run that is never iterated nor closed must not leak its
        checkout when garbage collected (its generator's finally never
        runs, so the weakref finalizer is the only way out)."""
        import gc

        with SessionPool(Q1, max_workers=2) as pool:
            run = pool.run_streaming("<site><people/></site>")
            assert pool.stats.active_runs == 1
            del run
            gc.collect()  # the run<->generator cycle needs the collector
            stats = pool.stats
            assert stats.active_runs == 0
            assert stats.runs_abandoned == 1
            # The slot is free again: fresh checkouts work.
            assert pool.run("<site><people/></site>").output

    def test_dropped_unstarted_session_run_unblocks_other_threads(self):
        import gc

        doc = "<bib><book><title>T</title></book></bib>"
        session = QuerySession(INTRO_QUERY)
        run = session.run_streaming(doc)
        del run
        gc.collect()
        outputs: list[str] = []
        thread = threading.Thread(
            target=lambda: outputs.append(session.run(doc).output)
        )
        thread.start()
        thread.join()
        assert outputs and "<title>T</title>" in outputs[0]

    def test_buffers_are_recycled_not_hoarded(self):
        docs = serving_documents(STRESS_DOCUMENTS)
        with SessionPool(Q1, max_workers=STRESS_WORKERS) as pool:
            list(pool.map(docs))
            stats = pool.stats
        # Never more buffers than could be live at once.
        assert stats.buffers_created <= STRESS_WORKERS + 1


class TestDrainHooks:
    """The serving layer's async-friendly drain hooks on the pool."""

    def test_outstanding_checkouts_tracks_run_lifecycle(self):
        with SessionPool(Q1, max_workers=2) as pool:
            assert pool.stats.outstanding_checkouts == 0
            run = pool.run_streaming("<site><people/></site>")
            assert pool.stats.outstanding_checkouts == 1
            list(run)  # exhaust -> released through the guard
            assert pool.stats.outstanding_checkouts == 0

    def test_outstanding_checkouts_counts_abandoned_runs_until_reaped(self):
        import gc

        with SessionPool(Q1, max_workers=2) as pool:
            run = pool.run_streaming("<site><people/></site>")
            next(run)
            run.close()  # abandoned: discarded via _dropped_runs
            del run
            gc.collect()
            # The stats snapshot reaps first, so the leak is settled here.
            assert pool.stats.outstanding_checkouts == 0

    def test_wait_idle_immediate_when_nothing_is_checked_out(self):
        with SessionPool(Q1, max_workers=2) as pool:
            assert pool.wait_idle(timeout=0.0) is True

    def test_wait_idle_times_out_while_a_run_is_in_flight(self):
        with SessionPool(Q1, max_workers=2) as pool:
            run = pool.run_streaming("<site><people/></site>")
            next(run)
            assert pool.wait_idle(timeout=0.05) is False
            list(run)
            assert pool.wait_idle(timeout=0.0) is True

    def test_wait_idle_unblocks_when_another_thread_finishes(self):
        with SessionPool(Q1, max_workers=2) as pool:
            run = pool.run_streaming("<site><people/></site>")
            next(run)
            release = threading.Timer(0.05, lambda: list(run))
            release.start()
            try:
                assert pool.wait_idle(timeout=5.0) is True
            finally:
                release.join()

    def test_wait_idle_sees_runs_released_by_garbage_collection(self):
        """An abandoned run releases through _dropped_runs (no notify);
        wait_idle must still converge by reaping between waits."""
        import gc

        with SessionPool(Q1, max_workers=2) as pool:
            run = pool.run_streaming("<site><people/></site>")
            next(run)
            run.close()
            del run
            gc.collect()
            assert pool.wait_idle(timeout=2.0) is True


class TestSessionThreadGuard:
    """Satellite regression: the latent single-slot race now raises."""

    def test_second_thread_streaming_raises_runtime_error(self):
        doc = "<bib><book><title>T</title></book></bib>"
        session = QuerySession(INTRO_QUERY)
        stream = session.run_streaming(doc)
        next(stream)  # checkout is live on this thread
        caught: list[BaseException] = []

        def second_client():
            try:
                session.run_streaming(doc)
            except BaseException as error:  # noqa: BLE001 - assert below
                caught.append(error)

        thread = threading.Thread(target=second_client)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], RuntimeError)
        assert "SessionPool" in str(caught[0])
        # The first run is untouched by the rejected attempt.
        rest = StringSink()
        for token in stream:
            rest.write(token)
        assert stream.result is not None

    def test_cross_thread_error_message_contract(self):
        """Satellite regression: the message names the owning and the
        calling thread and points at both remediations — SessionPool for
        in-process sharing and ``gcx serve`` for network clients."""
        doc = "<bib><book><title>T</title></book></bib>"
        session = QuerySession(INTRO_QUERY)
        stream = session.run_streaming(doc)
        next(stream)
        owner_ident = threading.get_ident()
        caught: list[tuple[RuntimeError, int]] = []

        def second_client():
            try:
                session.run_streaming(doc)
            except RuntimeError as error:
                caught.append((error, threading.get_ident()))

        thread = threading.Thread(target=second_client)
        thread.start()
        thread.join()
        ((error, caller_ident),) = caught
        message = str(error)
        assert str(owner_ident) in message
        assert str(caller_ident) in message
        assert "repro.engine.pool.SessionPool" in message
        assert "gcx serve" in message
        list(stream)  # the owning run still completes untouched
        assert stream.result is not None

    def test_same_thread_interleaving_still_allowed(self):
        doc_a = "<bib><book><title>A</title></book></bib>"
        doc_b = "<bib><book><title>B</title></book></bib>"
        session = QuerySession(INTRO_QUERY)
        stream_a = session.run_streaming(doc_a)
        stream_b = session.run_streaming(doc_b)  # same thread: fine
        list(stream_a)
        list(stream_b)
        assert session.runs_completed == 2

    def test_sequential_cross_thread_use_is_fine(self):
        doc = "<bib><book><title>T</title></book></bib>"
        session = QuerySession(INTRO_QUERY)
        expected = session.run(doc).output
        outputs: list[str] = []

        def client():
            outputs.append(session.run(doc).output)

        for _ in range(3):  # one at a time, different threads
            thread = threading.Thread(target=client)
            thread.start()
            thread.join()
        assert outputs == [expected] * 3
