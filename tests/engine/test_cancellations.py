"""Pending-cancellation tests: signOffs racing ahead of the stream.

A signOff may execute while its region (the binding's subtree) is not fully
read — e.g. when an existence check is decided by an early witness and the
rest of the subtree streams in later.  Without cancellations those late
arrivals would keep their roles forever, violating Section 3's requirement
that all roles be removed.  These tests construct exactly such races.
"""


from repro.engine import EngineOptions, GCXEngine

PAPER_BASE = EngineOptions(
    aggregate_roles=False, early_updates=False, eliminate_redundant_roles=False
)


class TestLateArrivals:
    def test_exists_decided_early_late_subtree(self):
        """The price arrives first; the subtree continues afterwards.  The
        bare-$x output dependency (dos role) was already signed off for the
        else-branch by the time the tail streams in."""
        query = (
            "<out>{for $x in /r/i return "
            "if (not(exists $x/price)) then $x else ()}</out>"
        )
        doc = "<r><i><price>1</price><tail><deep>text</deep></tail></i></r>"
        for options in (EngineOptions(), PAPER_BASE):
            result = GCXEngine(options).run(query, doc)
            assert result.output == "<out/>"
            assert result.stats.role_accounting_balanced()
            assert result.stats.live_nodes == 0

    def test_cancelled_roles_counted(self):
        query = (
            "<out>{for $x in /r/i return "
            "if (not(exists $x/price)) then $x else ()}</out>"
        )
        doc = "<r><i><price>1</price><a/><b/><c/></i></r>"
        result = GCXEngine(PAPER_BASE).run(query, doc)
        assert result.stats.roles_cancelled > 0

    def test_late_arrivals_not_buffered(self):
        """Nodes arriving with all roles cancelled are dropped entirely."""
        query = (
            "<out>{for $x in /r/i return "
            "if (not(exists $x/price)) then $x else ()}</out>"
        )
        tail = "".join(f"<t{i}/>" for i in range(50))
        doc = f"<r><i><price>1</price>{tail}</i></r>"
        result = GCXEngine().run(query, doc)
        assert result.stats.hwm_nodes <= 5

    def test_mixed_roles_partial_cancellation(self):
        """Late arrivals keep roles that are still live (the b-loop's) while
        losing the already-signed-off ones (the a-loop's dos role)."""
        query = (
            "<out>{for $x in /r/i return "
            "(if (not(exists $x/p)) then $x else (), "
            "for $t in $x/keep return $t)}</out>"
        )
        doc = "<r><i><p>1</p><keep>k1</keep><keep>k2</keep></i></r>"
        result = GCXEngine(PAPER_BASE).run(query, doc)
        assert result.output == "<out><keep>k1</keep><keep>k2</keep></out>"

    def test_first_witness_cancellation(self):
        """signOff($x/price[1], r) with no witness yet: the witness arrives
        later and must not retain the role."""
        query = (
            "<out>{for $x in /r/i return "
            "(for $a in $x/early return $a, "
            "if (exists $x/price) then <has/> else ())}</out>"
        )
        # price arrives before the subtree ends; evaluation order still
        # guarantees the exists is evaluated within the binding's scope.
        doc = "<r><i><early>e</early><price>1</price><late/></i></r>"
        result = GCXEngine().run(query, doc)
        assert "<has/>" in result.output


class TestNestedRegions:
    def test_nested_descendant_bindings(self):
        """Overlapping regions (a inside a): per-region cancellations must
        compose with multiplicity-2 role assignments."""
        query = "<out>{for $a in //a return if (not(exists $a/stop)) then $a else ()}</out>"
        doc = "<r><a><stop/><a><x/></a><y/></a></r>"
        result = GCXEngine(PAPER_BASE).run(query, doc)
        # outer a has stop -> skipped; inner a has no stop -> output.
        assert result.output == "<out><a><x/></a></out>"
        assert result.stats.role_accounting_balanced()

    def test_sequential_bindings_unaffected(self):
        """A cancellation in one sibling's region must not leak into the
        next binding's fresh assignments."""
        query = (
            "<out>{for $x in /r/i return "
            "if (not(exists $x/price)) then $x else ()}</out>"
        )
        doc = (
            "<r>"
            "<i><price>1</price><junk/></i>"
            "<i><keep>yes</keep></i>"
            "</r>"
        )
        result = GCXEngine().run(query, doc)
        assert result.output == "<out><i><keep>yes</keep></i></out>"


class TestMidPathFirstWitness:
    """``[1]`` steps in non-final path positions (docs/JOINS.md widening).

    Role accounting for these paths must go through the recorded
    document-order witness: picking the first still-buffered match after
    the true witness was collected, or counting ``[1]`` embeddings as
    unrestricted in a pending cancellation, lets an outer binding whose
    witness subtree is closed steal role instances earned by an inner
    binding (historically an ``UndefinedRoleRemoval`` crash or a silently
    dropped output).
    """

    def test_outer_witness_purged_before_signoff_navigation(self):
        # b_outer's witness is the empty first <a/>; after its prefix-role
        # signOff purges it, the r3 signOff must not slide onto b_inner's
        # witness subtree.
        query = "<out>{for $v in $root//b return $v//a[1]//a}</out>"
        doc = "<r><b><a/><b><a><a/></a></b></b></r>"
        for options in (EngineOptions(), PAPER_BASE):
            result = GCXEngine(options).run(query, doc)
            assert result.output == "<out><a/></out>"
            assert result.stats.role_accounting_balanced()

    def test_closed_witness_region_cancels_nothing(self):
        # The wildcard loop signs off r, whose witness subtree is closed,
        # before the inner bindings' chains complete; r's pending
        # cancellation must not eat the text's dos role.
        query = "<out>{for $v in $root//* return $v//a[1]/text()}</out>"
        doc = "<r><b><a/><a><a><a>x</a></a></a></b></r>"
        for options in (EngineOptions(), PAPER_BASE):
            result = GCXEngine(options).run(query, doc)
            assert result.output == "<out>x</out>"
            assert result.stats.role_accounting_balanced()

    def test_positional_head_with_descendant_tail(self):
        query = "<out>{for $v in $root//* return $v/a[1]//a}</out>"
        doc = "<r><a/><a><a><a/></a></a></r>"
        for options in (EngineOptions(), PAPER_BASE):
            result = GCXEngine(options).run(query, doc)
            assert result.output == "<out><a/></out>"
            assert result.stats.role_accounting_balanced()
