"""Tests for the engine layer."""
