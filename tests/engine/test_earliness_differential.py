"""Differential guarantee: earliness never changes what a query returns.

The earliness pass (:mod:`repro.analysis.earliness`) only moves *when*
output leaves the engine, never *what* leaves it — so for every query
and every document, running with watermark-triggered flushing must be
byte-identical to the conservative serialize-at-signoff engine.  The
conservative engine (``EngineOptions(earliness=False)``) is the oracle;
the committed goldens are the independent anchor.

On top of identity, the accounting must be monotone: the watermark
engine never holds a produced token *longer* than the conservative one
(``tokens_held_before_emit`` on <= off, per query and document), and for
the known-early goldens the inequality is strict — Q1 through the
first-witness watermark, Q13 through the schema-certified at-most-once
watermark (which only arms under ``trust_schema=True``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine import EngineOptions, GCXEngine
from repro.xmark.queries import XMARK_QUERIES
from repro.xmark.schema import xmark_schema

GOLDENS = Path(__file__).parent / "goldens"
QUERY_NAMES = sorted(XMARK_QUERIES)

#: The oracle configuration: everything on except the earliness pass.
CONSERVATIVE = EngineOptions(earliness=False)


@pytest.fixture(scope="module")
def xmark_document() -> str:
    return (GOLDENS / "document.xml").read_text(encoding="utf-8")


class TestGoldenCorpus:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_earliness_on_equals_earliness_off(self, name, xmark_document):
        on = GCXEngine().run(XMARK_QUERIES[name].adapted, xmark_document)
        off = GCXEngine(CONSERVATIVE).run(XMARK_QUERIES[name].adapted, xmark_document)
        assert on.output == off.output
        # The committed goldens are the independent anchor.
        expected = (GOLDENS / f"{name}.expected").read_text(encoding="utf-8")
        assert on.output == expected

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_held_tokens_are_monotone(self, name, xmark_document):
        """Watermarks may only release buffered output *earlier*."""
        on = GCXEngine().run(XMARK_QUERIES[name].adapted, xmark_document)
        off = GCXEngine(CONSERVATIVE).run(XMARK_QUERIES[name].adapted, xmark_document)
        assert on.stats.tokens_held_before_emit <= off.stats.tokens_held_before_emit

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_trusted_mode_is_monotone_too(self, name, xmark_document):
        """Same inequality under FluX mode, where at-most-once loops arm."""
        trusted = EngineOptions(trust_schema=True)
        trusted_off = EngineOptions(trust_schema=True, earliness=False)
        schema = xmark_schema()
        on = GCXEngine(trusted).run(
            XMARK_QUERIES[name].adapted, xmark_document, schema=schema
        )
        off = GCXEngine(trusted_off).run(
            XMARK_QUERIES[name].adapted, xmark_document, schema=schema
        )
        assert on.output == off.output
        assert on.stats.tokens_held_before_emit <= off.stats.tokens_held_before_emit


class TestKnownEarlyGoldens:
    def test_q1_first_witness_is_strictly_earlier(self, xmark_document):
        """Q1's condition decides at the first <id> — no schema needed."""
        on = GCXEngine().run(XMARK_QUERIES["Q1"].adapted, xmark_document)
        off = GCXEngine(CONSERVATIVE).run(XMARK_QUERIES["Q1"].adapted, xmark_document)
        assert on.output == off.output
        assert off.stats.tokens_held_before_emit > 0
        assert on.stats.tokens_held_before_emit < off.stats.tokens_held_before_emit

    def test_q13_at_most_once_is_strictly_earlier_when_trusted(self, xmark_document):
        """Q13 is structurally irreducible untrusted (a second <name>
        cannot be ruled out before </item>); the DTD's ``name`` content
        model proves at-most-once, so under ``trust_schema=True`` the loop
        stops at the first match and the held tokens drop strictly."""
        trusted = EngineOptions(trust_schema=True)
        trusted_off = EngineOptions(trust_schema=True, earliness=False)
        schema = xmark_schema()
        on = GCXEngine(trusted).run(
            XMARK_QUERIES["Q13"].adapted, xmark_document, schema=schema
        )
        off = GCXEngine(trusted_off).run(
            XMARK_QUERIES["Q13"].adapted, xmark_document, schema=schema
        )
        assert on.output == off.output
        assert off.stats.tokens_held_before_emit > 0
        assert on.stats.tokens_held_before_emit < off.stats.tokens_held_before_emit
        assert on.stats.early_flushes > 0

    def test_q13_untrusted_stays_conservative(self, xmark_document):
        """Without schema trust the at-most-once watermark must NOT arm:
        the conservative and watermark engines hold the same tokens."""
        on = GCXEngine().run(XMARK_QUERIES["Q13"].adapted, xmark_document)
        off = GCXEngine(CONSERVATIVE).run(XMARK_QUERIES["Q13"].adapted, xmark_document)
        assert on.stats.tokens_held_before_emit == off.stats.tokens_held_before_emit

    def test_q6_streams_through_the_open_watermark(self, xmark_document):
        """Q6's verbatim-subtree output site streams in arrival order."""
        on = GCXEngine().run(XMARK_QUERIES["Q6"].adapted, xmark_document)
        off = GCXEngine(CONSERVATIVE).run(XMARK_QUERIES["Q6"].adapted, xmark_document)
        assert on.output == off.output
        assert on.stats.early_flushes > 0
        assert on.stats.tokens_held_before_emit < off.stats.tokens_held_before_emit


class TestDisabledAccounting:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_no_early_flushes_when_disabled(self, name, xmark_document):
        """``early_flushes`` counts *watermark* flushes only: zero when
        the pass is off, so the stat cleanly separates the mechanisms."""
        off = GCXEngine(CONSERVATIVE).run(XMARK_QUERIES[name].adapted, xmark_document)
        assert off.stats.early_flushes == 0

    def test_no_early_flushes_without_aggregate_roles(self, xmark_document):
        """The open watermark's proof *is* the aggregate-role cover;
        without aggregate roles the pass must disarm itself entirely."""
        options = EngineOptions(aggregate_roles=False)
        for name in ("Q1", "Q6"):
            run = GCXEngine(options).run(XMARK_QUERIES[name].adapted, xmark_document)
            assert run.stats.early_flushes == 0
            oracle = GCXEngine(CONSERVATIVE).run(
                XMARK_QUERIES[name].adapted, xmark_document
            )
            assert run.output == oracle.output
