"""QuerySession: compile-once/run-many isolation and incremental output."""

import io

import pytest

import repro.engine.session as session_module
from repro.engine import GCXEngine, QuerySession
from repro.xmlio import StringSink, WriterSink, tokenize
from repro.xmlio.tokens import StartTag

from tests.helpers import CORPUS, INTRO_QUERY

DOC_A = "<bib><book><title>A1</title></book><book><title>A2</title></book></bib>"
DOC_B = "<bib><cd><price>9</price></cd><book><title>B</title></book></bib>"


class CountingTokens:
    """A token source that records how much of the input was consumed."""

    def __init__(self, tokens):
        self._tokens = iter(tokens)
        self.consumed = 0

    def __iter__(self):
        return self

    def __next__(self):
        token = next(self._tokens)
        self.consumed += 1
        return token


class TestCompileOnce:
    def test_static_analysis_runs_exactly_once(self, monkeypatch):
        calls = []
        real = session_module.compile_query

        def counting(query, options=None, *, schema=None):
            calls.append(query)
            return real(query, options, schema=schema)

        monkeypatch.setattr(session_module, "compile_query", counting)
        session = QuerySession(INTRO_QUERY)
        for document in (DOC_A, DOC_B, DOC_A):
            session.run(document)
        assert len(calls) == 1

    def test_compiled_artifacts_stable_across_runs(self):
        session = QuerySession(INTRO_QUERY)
        compiled = session.compiled
        session.run(DOC_A)
        session.run(DOC_B)
        assert session.compiled is compiled

    def test_session_adopts_precompiled_query(self):
        engine = GCXEngine()
        compiled = engine.compile(INTRO_QUERY)
        session = engine.session(compiled)
        assert session.compiled is compiled
        assert "<title>A1</title>" in session.run(DOC_A).output


class TestRunManyIsolation:
    def test_two_documents_match_two_fresh_engines(self):
        session = QuerySession(INTRO_QUERY)
        session_outputs = [session.run(doc).output for doc in (DOC_A, DOC_B)]
        fresh_outputs = [
            GCXEngine().run(INTRO_QUERY, doc).output for doc in (DOC_A, DOC_B)
        ]
        assert session_outputs == fresh_outputs

    def test_no_state_leaks_between_runs(self):
        """Re-running the first document after others gives identical output
        and identical buffer statistics — nothing carried over."""
        session = QuerySession(INTRO_QUERY)
        first = session.run(DOC_A)
        session.run(DOC_B)
        again = session.run(DOC_A)
        assert again.output == first.output
        assert again.stats.hwm_nodes == first.stats.hwm_nodes
        assert again.stats.roles_assigned == first.stats.roles_assigned
        assert again.stats.tokens_read == first.stats.tokens_read

    @pytest.mark.parametrize(
        "name,query,document",
        [(name, query, doc) for name, query, doc in CORPUS],
        ids=[name for name, _, _ in CORPUS],
    )
    def test_corpus_session_equals_fresh_engine(self, name, query, document):
        session = QuerySession(query)
        expected = GCXEngine().run(query, document).output
        assert session.run(document).output == expected
        assert session.run(document).output == expected  # and again

    def test_runs_completed_counts(self):
        session = QuerySession(INTRO_QUERY)
        assert session.runs_completed == 0
        session.run(DOC_A)
        session.run(DOC_B)
        assert session.runs_completed == 2

    def test_buffer_recycled_with_warm_tag_table(self):
        session = QuerySession(INTRO_QUERY)
        session.run(DOC_A)
        spare = session._spare_buffer
        assert spare is not None
        assert spare.tag_id("bib") == 0  # interned during the first run
        session.run(DOC_A)
        assert session._spare_buffer is spare  # same buffer, reset and reused

    def test_interleaved_streaming_runs_are_isolated(self):
        """Two in-flight streaming runs on one session never share state."""
        session = QuerySession(INTRO_QUERY)
        stream_a = session.run_streaming(DOC_A)
        stream_b = session.run_streaming(DOC_B)
        sink_a, sink_b = StringSink(), StringSink()
        done_a = done_b = False
        while not (done_a and done_b):  # alternate, token by token
            try:
                sink_a.write(next(stream_a))
            except StopIteration:
                done_a = True
            try:
                sink_b.write(next(stream_b))
            except StopIteration:
                done_b = True
        assert sink_a.getvalue() == GCXEngine().run(INTRO_QUERY, DOC_A).output
        assert sink_b.getvalue() == GCXEngine().run(INTRO_QUERY, DOC_B).output
        assert session.runs_completed == 2


class TestStreamingOutput:
    def test_first_token_before_input_exhausted(self):
        """On a query whose first match occurs early, output starts while
        most of the input is still unread (instrumented token source)."""
        body = "".join(
            f"<book><title>T{i}</title></book>" for i in range(200)
        )
        document = f"<bib>{body}</bib>"
        total_tokens = sum(1 for _ in tokenize(document))
        source = CountingTokens(tokenize(document))

        session = QuerySession(
            "<out>{for $b in /bib/book return $b/title}</out>"
        )
        stream = session.run_streaming(source)
        first = next(stream)  # <out> wrapper
        second = next(stream)  # first <title> from the document
        assert first == StartTag("out")
        assert second == StartTag("title")
        assert source.consumed < total_tokens / 10
        assert not session._spare_buffer  # run still in flight
        rest = list(stream)
        assert source.consumed == total_tokens
        assert stream.result is not None

    def test_nothing_is_read_before_first_next(self):
        source = CountingTokens(tokenize(DOC_A))
        stream = QuerySession(INTRO_QUERY).run_streaming(source)
        assert source.consumed == 0
        next(stream)

    def test_stream_tokens_join_to_buffered_output(self):
        session = QuerySession(INTRO_QUERY)
        streamed = "".join(session.run_streaming(DOC_A).serialized())
        assert streamed == session.run(DOC_A).output

    def test_result_available_only_after_exhaustion(self):
        session = QuerySession(INTRO_QUERY)
        stream = session.run_streaming(DOC_A)
        assert stream.result is None
        next(stream)
        assert stream.result is None
        list(stream)
        result = stream.result
        assert result is not None
        assert result.exhausted_input
        assert result.stats.role_accounting_balanced()
        assert result.first_output_seconds is not None
        assert result.first_output_seconds <= result.elapsed_seconds

    def test_streaming_safety_checks_still_run(self):
        """Strict mode's Section 3 accounting applies to streaming runs."""
        session = QuerySession(INTRO_QUERY)
        stream = session.run_streaming(DOC_A)
        list(stream)
        assert stream.result.stats.live_role_instances == 0

    def test_abandoned_stream_discards_buffer(self):
        session = QuerySession(INTRO_QUERY)
        stream = session.run_streaming(DOC_A)
        next(stream)
        stream.close()
        assert stream.result is None
        assert session.runs_completed == 0
        # The session still works afterwards with a fresh buffer.
        assert session.run(DOC_A).output == GCXEngine().run(
            INTRO_QUERY, DOC_A
        ).output


class TestSinks:
    def test_run_with_writer_sink_streams_and_leaves_output_empty(self):
        target = io.StringIO()
        session = QuerySession(INTRO_QUERY)
        result = session.run(DOC_A, sink=WriterSink(target))
        assert result.output == ""
        assert target.getvalue() == GCXEngine().run(INTRO_QUERY, DOC_A).output

    def test_engine_run_accepts_sink(self):
        target = io.StringIO()
        result = GCXEngine().run(INTRO_QUERY, DOC_A, sink=WriterSink(target))
        assert result.output == ""
        assert "<title>A1</title>" in target.getvalue()

    def test_caller_string_sink_does_not_leak_into_output(self):
        """RunResult.output reflects one run even when a caller reuses a
        StringSink across runs (the accumulated text stays the caller's)."""
        shared = StringSink()
        session = QuerySession(INTRO_QUERY)
        first = session.run(DOC_A, sink=shared)
        second = session.run(DOC_B, sink=shared)
        assert first.output == "" and second.output == ""
        expected_a = GCXEngine().run(INTRO_QUERY, DOC_A).output
        expected_b = GCXEngine().run(INTRO_QUERY, DOC_B).output
        assert shared.getvalue() == expected_a + expected_b

    def test_caller_provided_sink_is_not_closed(self):
        """A reusable sink survives several runs; run() only closes sinks
        it created itself."""
        from repro.xmlio import GeneratorSink

        session = QuerySession(INTRO_QUERY)
        bridge = GeneratorSink()
        session.run(DOC_A, sink=bridge)
        session.run(DOC_B, sink=bridge)  # must not raise "closed sink"
        assert not bridge.closed
        assert len(bridge) > 0

    def test_idle_session_spare_buffer_is_empty(self):
        """The recycled buffer is reset at release, so an idle session
        holds no document subtree in memory."""
        session = QuerySession(INTRO_QUERY)
        session.run(DOC_A)
        assert session._spare_buffer is not None
        assert session._spare_buffer.is_empty()

    def test_latency_clock_starts_at_first_next(self):
        import time as _time

        session = QuerySession(INTRO_QUERY)
        stream = session.run_streaming(DOC_A)
        _time.sleep(0.05)  # consumer think-time before iterating
        list(stream)
        assert stream.result.first_output_seconds < 0.05


class TestEngineFrontDoor:
    def test_engine_run_streaming(self):
        stream = GCXEngine().run_streaming(INTRO_QUERY, DOC_A)
        text = "".join(stream.serialized())
        assert text == GCXEngine().run(INTRO_QUERY, DOC_A).output
        assert stream.result is not None

    def test_run_result_first_output_seconds_populated(self):
        result = GCXEngine().run(INTRO_QUERY, DOC_A)
        assert result.first_output_seconds is not None

    def test_empty_match_still_emits_wrapper(self):
        stream = GCXEngine().run_streaming(
            "<out>{for $z in /r/zzz return $z}</out>", "<r><a/></r>"
        )
        assert "".join(stream.serialized()) == "<out/>"
        assert stream.result.first_output_seconds is not None
