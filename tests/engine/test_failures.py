"""Failure injection: malformed input, bad queries, strictness modes."""

import pytest

from repro.engine import EngineOptions, GCXEngine
from repro.xmlio import XMLSyntaxError
from repro.xquery import ScopeError, XQSyntaxError

QUERY = "<o>{for $a in /r/a return $a}</o>"


class TestMalformedDocuments:
    @pytest.mark.parametrize(
        "doc",
        [
            "<r><a></r>",  # mismatched nesting
            "<r><a/>",  # truncated stream
            "<r/><r/>",  # two roots
            "",  # empty
        ],
    )
    def test_syntax_error_propagates(self, doc):
        with pytest.raises(XMLSyntaxError):
            GCXEngine().run(QUERY, doc)

    def test_error_after_partial_output(self):
        """The error surfaces even when evaluation already produced output."""
        doc = "<r><a>ok</a><a>ok2</a><broken>"
        with pytest.raises(XMLSyntaxError):
            GCXEngine().run(QUERY, doc)

    def test_truncation_mid_match_detected(self):
        doc = "<r><a><deep>"
        with pytest.raises(XMLSyntaxError):
            GCXEngine().run(QUERY, doc)


class TestBadQueries:
    def test_parse_error(self):
        with pytest.raises(XQSyntaxError):
            GCXEngine().compile("<o>{for $a in}</o>")

    def test_scope_error(self):
        with pytest.raises(ScopeError):
            GCXEngine().compile("<o>{$undefined/a}</o>")

    def test_rebinding_error(self):
        with pytest.raises(ScopeError):
            GCXEngine().compile(
                "<o>{for $a in /r/a return for $a in /r/b return $a}</o>"
            )


class TestStrictness:
    def test_lenient_engine_still_correct(self):
        options = EngineOptions(strict=False)
        result = GCXEngine(options).run(QUERY, "<r><a>1</a></r>")
        assert result.output == "<o><a>1</a></o>"

    def test_strict_is_default(self):
        assert EngineOptions().strict


class TestAdversarialDocuments:
    def test_very_deep_nesting(self):
        depth = 200
        doc = "<r>" + "<a>" * depth + "<b/>" + "</a>" * depth + "</r>"
        result = GCXEngine().run("<o>{for $b in //b return <hit/>}</o>", doc)
        assert result.output == "<o><hit/></o>"

    def test_many_siblings(self):
        doc = "<r>" + "<a><k>x</k></a>" * 1000 + "</r>"
        result = GCXEngine().run("<o>{for $a in /r/a return $a/k}</o>", doc)
        assert result.output.count("<k>") == 1000
        assert result.stats.hwm_nodes < 10  # streaming, not accumulating

    def test_pathological_tag_reuse(self):
        """Same tag on every level: descendant matching multiplicities."""
        doc = "<a>" + "<a>" * 10 + "t" + "</a>" * 10 + "</a>"
        result = GCXEngine().run(
            "<o>{for $x in //a return <m/>}</o>", doc
        )
        assert result.output.count("<m/>") == 11
        assert result.stats.role_accounting_balanced()

    def test_huge_text_node(self):
        doc = f"<r><a><k>{'x' * 100_000}</k></a></r>"
        result = GCXEngine().run("<o>{for $a in /r/a return $a/k}</o>", doc)
        assert len(result.output) > 100_000

    def test_unicode_content(self):
        doc = "<r><a><k>café 中文 \U0001f600</k></a></r>"
        result = GCXEngine().run("<o>{for $a in /r/a return $a/k}</o>", doc)
        assert "café 中文 \U0001f600" in result.output
