"""Golden test for Figure 2: active garbage collection, step by step.

The paper traces the introduction's query on the stream
``<bib><book><title/><author/></book>...`` and shows, per step, what has
been read, the buffer contents with role annotations, and the output.  This
test drives the preprojector token by token and replays the evaluation up
to step 7, comparing buffer snapshots against the figure (base scheme: no
aggregate roles, no early updates, no redundant-role elimination).
"""

import pytest

from repro.analysis import CompileOptions, compile_query
from repro.buffer import BufferTree
from repro.engine.evaluator import Evaluator
from repro.stream import StreamPreprojector
from repro.xmlio import tokenize
from repro.xmlio.serialize import StringSink

from tests.helpers import INTRO_QUERY

PAPER_OPTIONS = CompileOptions(early_updates=False, eliminate_redundant=False)
STREAM = "<bib><book><title/><author/></book></bib>"


@pytest.fixture
def machinery():
    compiled = compile_query(INTRO_QUERY, PAPER_OPTIONS)
    buffer = BufferTree()
    preprojector = StreamPreprojector(
        tokenize(STREAM), compiled.projection_tree, buffer, aggregate_roles=False
    )
    return compiled, buffer, preprojector


class TestFigure2Projection:
    """Steps 2-5: reading tokens fills the buffer with annotated nodes."""

    def test_step2_bib(self, machinery):
        _compiled, buffer, pp = machinery
        pp.pull()  # <bib>
        assert buffer.format_contents() == ["bib{r2}"]

    def test_step3_book(self, machinery):
        _compiled, buffer, pp = machinery
        pp.pull(), pp.pull()  # <bib> <book>
        assert buffer.format_contents() == ["bib{r2}", "  book{r3,r5,r6}"]

    def test_step4_title(self, machinery):
        _compiled, buffer, pp = machinery
        for _ in range(4):  # <bib> <book> <title> </title>
            pp.pull()
        assert buffer.format_contents() == [
            "bib{r2}",
            "  book{r3,r5,r6}",
            "    title{r5,r7}",
        ]

    def test_step5_author(self, machinery):
        _compiled, buffer, pp = machinery
        for _ in range(6):  # ... <author> </author>
            pp.pull()
        assert buffer.format_contents() == [
            "bib{r2}",
            "  book{r3,r5,r6}",
            "    title{r5,r7}",
            "    author{r5}",
        ]


class TestFigure2Evaluation:
    """Steps 6-7: </book> unblocks the if, output + signOffs purge author."""

    def test_step7_buffer_after_first_book(self, machinery):
        compiled, buffer, pp = machinery
        sink = StringSink()
        evaluator = Evaluator(
            compiled.rewritten, buffer, pp, sink, aggregate_roles=False
        )
        evaluator.run()
        # After evaluation the buffer is empty, so instead replay only the
        # first book by a fresh run over a longer stream, pausing when the
        # second book starts: the paper's step 7 state.
        compiled2 = compile_query(INTRO_QUERY, PAPER_OPTIONS)
        buffer2 = BufferTree()
        stream = "<bib><book><title/><author/></book><book><x/></book></bib>"
        pp2 = StreamPreprojector(
            tokenize(stream), compiled2.projection_tree, buffer2,
            aggregate_roles=False,
        )
        sink2 = StringSink()
        evaluator2 = Evaluator(
            compiled2.rewritten, buffer2, pp2, sink2, aggregate_roles=False
        )
        snapshots = []

        def snapshot(event):
            snapshots.append((event, buffer2.format_contents()))

        evaluator2.on_event = snapshot
        evaluator2.run()
        # Find the state right after the first book's signOff batch ran
        # (the last signOff of the batch is r5's).
        after_batch = [
            state
            for event, state in snapshots
            if event.startswith("signOff") and "r5" in event
        ][0]
        assert after_batch[:3] == [
            "bib{r2}",
            "  book{r6}",
            "    title{r7}",
        ]

    def test_step6_output(self, machinery):
        compiled, buffer, pp = machinery
        sink = StringSink()
        Evaluator(compiled.rewritten, buffer, pp, sink, aggregate_roles=False).run()
        assert sink.getvalue() == "<r><book><title/><author/></book><title/></r>"

    def test_author_purged_title_kept(self, machinery):
        """Step 6's narrative: the author node loses its single role r5 and,
        as it has no descendants, is purged; title keeps r7 for for_b."""
        compiled, buffer, pp = machinery
        sink = StringSink()
        states = []
        evaluator = Evaluator(
            compiled.rewritten, buffer, pp, sink, aggregate_roles=False,
            on_event=lambda event: states.append(
                (event, [l.split("{")[0].strip() for l in buffer.format_contents()])
            ),
        )
        evaluator.run()
        r5_state = [s for e, s in states if "r5" in e][0]
        assert "author" not in r5_state
        assert "title" in r5_state

    def test_buffer_empty_at_end(self, machinery):
        compiled, buffer, pp = machinery
        Evaluator(
            compiled.rewritten, buffer, pp, StringSink(), aggregate_roles=False
        ).run()
        assert buffer.is_empty()
        assert buffer.stats.role_accounting_balanced()
