"""Regenerate the conformance corpus (document + expected outputs).

Run only after an *intentional* output-semantics change, and eyeball the
diff — these files are the end-to-end oracle for matcher/buffer refactors:

    PYTHONPATH=src python tests/engine/goldens/regenerate.py
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.session import QuerySession
from repro.xmark.generator import generate_xmark, xmark_scale_for_bytes
from repro.xmark.queries import XMARK_QUERIES

GOLDENS = Path(__file__).parent
TARGET_BYTES = 60_000
SEED = 20070415  # fixed forever: the corpus document must stay stable


def main() -> None:
    document = generate_xmark(xmark_scale_for_bytes(TARGET_BYTES), seed=SEED)
    (GOLDENS / "document.xml").write_text(document, encoding="utf-8")
    print(f"document.xml: {len(document)} bytes (seed={SEED})")
    for name, entry in sorted(XMARK_QUERIES.items()):
        output = QuerySession(entry.adapted).run(document).output
        (GOLDENS / f"{name}.expected").write_text(output, encoding="utf-8")
        print(f"{name}.expected: {len(output)} bytes")


if __name__ == "__main__":
    main()
