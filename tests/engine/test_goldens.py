"""Deterministic conformance corpus: every XMark query vs committed goldens.

``goldens/document.xml`` is a small XMark document (committed, so the
oracle does not depend on the generator's cross-version stability) and
``goldens/<Q>.expected`` holds the full evaluation output of each adapted
query from :mod:`repro.xmark.queries` over it.  Every query runs three
ways — fresh session, recycled session, and through a shared
:class:`~repro.engine.pool.SessionPool` — and all must stay byte-identical
to the committed bytes, giving matcher/buffer refactors an end-to-end
oracle beyond the unit level.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python tests/engine/goldens/regenerate.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine import QuerySession, SessionPool
from repro.xmark.queries import XMARK_QUERIES

GOLDENS = Path(__file__).parent / "goldens"
QUERY_NAMES = sorted(XMARK_QUERIES)


@pytest.fixture(scope="module")
def document() -> str:
    return (GOLDENS / "document.xml").read_text(encoding="utf-8")


def expected(name: str) -> str:
    path = GOLDENS / f"{name}.expected"
    assert path.is_file(), (
        f"missing golden for {name}; regenerate with "
        "PYTHONPATH=src python tests/engine/goldens/regenerate.py"
    )
    return path.read_text(encoding="utf-8")


class TestGoldenConformance:
    def test_every_query_has_a_golden(self):
        assert {p.stem for p in GOLDENS.glob("*.expected")} == set(
            QUERY_NAMES
        )

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_sequential_session_matches_golden(self, name, document):
        session = QuerySession(XMARK_QUERIES[name].adapted)
        assert session.run(document).output == expected(name)
        # A recycled (warm buffer, warm matcher) run must not drift.
        assert session.run(document).output == expected(name)

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_pooled_evaluation_matches_golden(self, name, document):
        with SessionPool(
            XMARK_QUERIES[name].adapted, max_workers=4
        ) as pool:
            results = list(pool.map([document] * 8, chunksize=2))
        assert [r.output for r in results] == [expected(name)] * 8

    def test_goldens_are_nontrivial(self, document):
        """Guard against silently regenerating an empty corpus."""
        assert len(document) > 10_000
        assert sum(len(expected(name)) for name in QUERY_NAMES) > 1_000
