"""Differential guarantee: a schema never changes what a query returns.

The schema-constraint pass trades *proofs* for buffer space, never for
semantics — so for every query and every document, compiling with a
schema must produce byte-identical output to compiling without one:

* on conforming documents (the proofs hold, the direct runner streams),
* on *violating* documents (the certificate's assumption is broken; the
  runner detects nested matches mid-stream and falls back to buffering
  exactly those subtrees),
* and under ``trust_schema=True`` on conforming documents (FluX's
  conforming-input assumption — the mode that actually applies pruning
  and signoff stripping to the runtime artifacts).

This mirrors the Theorem 1 differential suite: the no-schema engine is
the oracle, randomized documents drive the fallback machinery hard.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.schema import Schema
from repro.engine import EngineOptions, GCXEngine
from repro.xmark.queries import XMARK_QUERIES
from repro.xmark.schema import xmark_schema

from tests.properties.strategies import documents

GOLDENS = Path(__file__).parent / "goldens"
QUERY_NAMES = sorted(XMARK_QUERIES)

FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: A schema over the hypothesis strategies' tag alphabet that many random
#: documents violate (it forbids self-nesting of <a> among other things) —
#: exactly what the fallback path needs to be exercised against.
RANDOM_DOC_DTD = """
<!ELEMENT r (a*, b*, c*, d*)>
<!ELEMENT a (b*, c*, d*)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
"""


@pytest.fixture(scope="module")
def xmark_document() -> str:
    return (GOLDENS / "document.xml").read_text(encoding="utf-8")


class TestGoldenCorpus:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_schema_on_equals_schema_off(self, name, xmark_document):
        engine = GCXEngine()
        off = engine.run(XMARK_QUERIES[name].adapted, xmark_document)
        on = engine.run(
            XMARK_QUERIES[name].adapted, xmark_document, schema=xmark_schema()
        )
        assert on.output == off.output
        # The committed goldens are the independent anchor.
        expected = (GOLDENS / f"{name}.expected").read_text(encoding="utf-8")
        assert on.output == expected

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_trusted_mode_on_conforming_corpus(self, name, xmark_document):
        """XMark documents conform, so FluX mode must agree too."""
        off = GCXEngine().run(XMARK_QUERIES[name].adapted, xmark_document)
        trusted = GCXEngine(EngineOptions(trust_schema=True)).run(
            XMARK_QUERIES[name].adapted, xmark_document, schema=xmark_schema()
        )
        assert trusted.output == off.output

    def test_certified_queries_drop_to_zero(self, xmark_document):
        """The headline: at least Q6 and Q15 run with an empty buffer."""
        engine = GCXEngine()
        for name in ("Q6", "Q15"):
            off = engine.run(XMARK_QUERIES[name].adapted, xmark_document)
            on = engine.run(
                XMARK_QUERIES[name].adapted,
                xmark_document,
                schema=xmark_schema(),
            )
            assert on.stats.hwm_bytes == 0
            assert off.stats.hwm_bytes > 0


class TestRandomDocuments:
    @FAST
    @given(document=documents(max_depth=5))
    def test_subtree_query_matches_oracle(self, document):
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in //a return $x}</o>"
        engine = GCXEngine()
        assert (
            engine.run(query, document, schema=schema).output
            == engine.run(query, document).output
        )

    @FAST
    @given(document=documents(max_depth=5))
    def test_path_query_matches_oracle(self, document):
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in /r/a return $x/b}</o>"
        engine = GCXEngine()
        assert (
            engine.run(query, document, schema=schema).output
            == engine.run(query, document).output
        )

    @FAST
    @given(
        document=documents(max_depth=5),
        nested=st.integers(min_value=1, max_value=3),
    )
    def test_forced_violations_match_oracle(self, document, nested):
        """Splice guaranteed self-nesting into the document body."""
        spliced = "<a>" * nested + "<b>v</b>" + "</a>" * nested
        document = document.replace("<r>", "<r>" + spliced, 1)
        if not document.startswith("<r><a>"):
            document = "<r>" + spliced + "</r>"
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in //a return $x}</o>"
        engine = GCXEngine()
        on = engine.run(query, document, schema=schema)
        off = engine.run(query, document)
        assert on.output == off.output
        if nested > 1:
            assert on.stats.schema_fallbacks >= 1


class TestViolationAccounting:
    def test_fallbacks_surface_in_stats(self):
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in //a return $x}</o>"
        document = "<r><a><a><b>t</b></a></a></r>"
        result = GCXEngine().run(query, document, schema=schema)
        assert result.stats.schema_fallbacks == 1
        assert result.output == GCXEngine().run(query, document).output

    def test_empty_buffer_after_fallback_replay(self):
        """Captured subtrees are purged once replayed: nothing leaks."""
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in //a return $x}</o>"
        document = "<r><a><a><b>t</b></a></a><a><b>u</b></a></r>"
        result = GCXEngine().run(query, document, schema=schema)
        assert result.stats.live_nodes == 0
        assert result.stats.live_bytes == 0
