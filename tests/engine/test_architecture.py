"""Architecture tests (Figure 11): the pull chain and safety checks."""


from repro.engine import EngineOptions, GCXEngine

from tests.helpers import INTRO_QUERY


class TestPullChain:
    def test_evaluator_drives_reading(self):
        """Tokens are read on demand, not eagerly: after compilation no
        token has been read; each blocking step pulls a bounded amount."""
        engine = GCXEngine()
        compiled = engine.compile(INTRO_QUERY)
        # Compilation is purely static.
        assert compiled.projection_tree is not None
        result = engine.run(compiled, "<bib><book><title/></book></bib>")
        assert result.stats.tokens_read == 6

    def test_compiled_query_reusable_across_runs(self):
        engine = GCXEngine()
        compiled = engine.compile(INTRO_QUERY)
        out1 = engine.run(compiled, "<bib><book><title>a</title></book></bib>").output
        out2 = engine.run(compiled, "<bib><cd><price>1</price></cd></bib>").output
        assert "<title>a</title>" in out1
        assert "title" not in out2

    def test_run_accepts_token_stream(self):
        from repro.xmlio import tokenize

        engine = GCXEngine()
        result = engine.run(INTRO_QUERY, tokenize("<bib><book><title/></book></bib>"))
        assert "<title/>" in result.output


class TestSafetyChecks:
    def test_strict_run_reports_clean_accounting(self):
        result = GCXEngine().run(INTRO_QUERY, "<bib><book><title/></book></bib>")
        stats = result.stats
        assert stats.role_accounting_balanced()
        assert stats.live_role_instances == 0
        assert stats.live_nodes == 0

    def test_all_option_combinations_safe(self):
        doc = (
            "<bib><book><title>t1</title></book>"
            "<book><price>5</price><title>t2</title></book>"
            "<cd><price>3</price></cd></bib>"
        )
        outputs = set()
        for aggregate in (False, True):
            for early in (False, True):
                for eliminate in (False, True):
                    options = EngineOptions(
                        aggregate_roles=aggregate,
                        early_updates=early,
                        eliminate_redundant_roles=eliminate,
                    )
                    result = GCXEngine(options).run(INTRO_QUERY, doc)
                    outputs.add(result.output)
        assert len(outputs) == 1  # all eight configurations agree


class TestRunResult:
    def test_result_fields(self):
        result = GCXEngine().run(INTRO_QUERY, "<bib/>")
        assert result.output == "<r/>"
        assert result.elapsed_seconds >= 0
        assert result.hwm_nodes >= 1
        assert result.exhausted_input

    def test_stats_summary_renders(self):
        result = GCXEngine().run(INTRO_QUERY, "<bib/>")
        summary = result.stats.summary()
        assert "hwm" in summary and "roles" in summary
