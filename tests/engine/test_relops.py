"""Unit and differential tests for the streaming relational runtime.

The unit half pins the two operators' contracts in isolation: the
canonical join key must mirror the ``=`` comparison exactly, the index
must return probes in document order and honour GC eviction, and the
aggregate helpers must classify paths and format values the way the
evaluator does.  The differential half is the acceptance criterion of
docs/JOINS.md: hash-join output byte-identical to the nested-loop
oracle on the real XMark join queries, and aggregates answered with
zero buffered subtree nodes.
"""

import pytest

from repro.buffer.node import ELEMENT, BufferNode
from repro.engine import EngineOptions, GCXEngine, QuerySession
from repro.engine.relops import (
    JoinIndex,
    accumulable,
    canon_key,
    collect_aggregate_sites,
    format_number,
)
from repro.xmark import XMARK_QUERIES, generate_xmark


class TestCanonKey:
    def test_numeric_values_compare_numerically(self):
        assert canon_key("09") == canon_key("9.0")
        assert canon_key("1e2") == canon_key("100")

    def test_non_numeric_values_compare_as_strings(self):
        assert canon_key("abc") == canon_key("abc")
        assert canon_key("abc") != canon_key("abd")

    def test_numbers_and_strings_never_cross(self):
        # "=" tries float() on BOTH operands; a numeric and a non-numeric
        # value compare as strings, but canon_key only has one value to
        # look at — so numeric strings must not collide with their own
        # spelling in the string domain.
        assert canon_key("9") != canon_key("x9")

    def test_nan_never_equals_nan(self):
        assert canon_key("nan") != canon_key("nan")


def _node(seq: int) -> BufferNode:
    return BufferNode(ELEMENT, seq, tag_id=1)


class TestJoinIndex:
    def test_probe_returns_document_order(self):
        index = JoinIndex()
        for seq in (5, 2, 9):
            index.add(_node(seq), [canon_key("k")])
        assert [n.seq for n in index.probe([canon_key("k")])] == [2, 5, 9]

    def test_probe_dedupes_across_keys(self):
        index = JoinIndex()
        node = _node(1)
        index.add(node, [canon_key("a"), canon_key("b")])
        hits = index.probe([canon_key("a"), canon_key("b")])
        assert hits == [node]

    def test_evicted_nodes_do_not_probe(self):
        index = JoinIndex()
        keep, gone = _node(1), _node(2)
        index.add(keep, [canon_key("k")])
        index.add(gone, [canon_key("k")])
        index.evict(gone.seq)
        assert index.probe([canon_key("k")]) == [keep]

    def test_marked_deleted_nodes_do_not_probe(self):
        index = JoinIndex()
        node = _node(1)
        index.add(node, [canon_key("k")])
        node.marked_deleted = True
        assert index.probe([canon_key("k")]) == []

    def test_miss_is_empty(self):
        assert JoinIndex().probe([canon_key("k")]) == []


class TestAggregateHelpers:
    def test_format_number(self):
        assert format_number(3.0) == "3"
        assert format_number(1.5) == "1.5"
        assert format_number(-2.0) == "-2"

    def test_accumulable_rejects_positional_paths(self):
        from repro.xquery import parse_expr

        plain = parse_expr("count($x/a/b)").path
        positional = parse_expr("count($x/a[1]/b)").path
        assert accumulable(plain)
        assert not accumulable(positional)

    def test_collect_sites_dedupes_and_tracks_value_need(self):
        from repro.analysis.compile import compile_query

        compiled = compile_query(
            "<out>{(count($root/a), sum($root/a), count($root/b))}</out>"
        )
        sites = collect_aggregate_sites(compiled.rewritten)
        by_path = {site.path: site for site in sites}
        assert len(sites) == 2  # ($root, a) merged across count+sum
        a_path = next(p for p in by_path if p[0].test.name == "a")
        b_path = next(p for p in by_path if p[0].test.name == "b")
        assert by_path[a_path].needs_values  # sum needs the text
        assert not by_path[b_path].needs_values  # count alone does not


@pytest.fixture(scope="module")
def xmark_doc():
    return generate_xmark(0.002, seed=11)


class TestHashJoinDifferential:
    @pytest.mark.parametrize("name", ["Q8", "Q9"])
    def test_byte_identical_to_nested_loop(self, name, xmark_doc):
        query = XMARK_QUERIES[name].adapted
        hashed = QuerySession(query).run(xmark_doc)
        nested = QuerySession(
            query, EngineOptions(hash_joins=False)
        ).run(xmark_doc)
        assert hashed.output == nested.output
        assert hashed.stats.join_indexes_built > 0, "dispatch did not happen"
        assert nested.stats.join_indexes_built == 0
        assert hashed.stats.join_probes > 0

    def test_numeric_key_equivalence(self):
        # "09" and "9.0" are distinct strings but equal under "=", so the
        # hash probe must find them; "x9" must not leak across domains.
        doc = (
            "<site><people><person><id>09</id></person>"
            "<person><id>x9</id></person></people>"
            "<closed_auctions>"
            "<closed_auction><buyer><person>9.0</person></buyer></closed_auction>"
            "<closed_auction><buyer><person>x9</person></buyer></closed_auction>"
            "</closed_auctions></site>"
        )
        query = XMARK_QUERIES["Q8"].adapted
        hashed = QuerySession(query).run(doc)
        nested = QuerySession(query, EngineOptions(hash_joins=False)).run(doc)
        assert hashed.output == nested.output
        assert hashed.output.count("<sale/>") == 2

    def test_multi_document_session_reuse(self, xmark_doc):
        # The join index is per-run state; a warm session must rebuild it
        # per document, not leak nodes across runs.
        session = QuerySession(XMARK_QUERIES["Q8"].adapted)
        first = session.run(xmark_doc)
        second = session.run(xmark_doc)
        assert first.output == second.output
        assert second.stats.join_indexes_built == 1


class TestAggregateDifferential:
    def test_xmark_q5_matches_naive(self, xmark_doc):
        from repro.baselines import NaiveDomEngine

        query = XMARK_QUERIES["Q5"].adapted
        gcx = GCXEngine().run(query, xmark_doc)
        naive = NaiveDomEngine().run(query, xmark_doc)
        assert gcx.output == naive.output

    def test_root_anchored_aggregates_buffer_nothing(self, xmark_doc):
        for query in (
            "<out>{count($root//closed_auction)}</out>",
            "<out>{sum($root//price/text())}</out>",
            "<out>{avg($root//price)}</out>",
        ):
            result = GCXEngine().run(query, xmark_doc)
            assert result.stats.hwm_bytes == 0, query
            assert result.stats.hwm_nodes == 0, query
            assert result.stats.acc_updates > 0, query

    def test_witness_multiplicity(self):
        # dos-reachable nodes count once per embedding, like _iter_path.
        from repro.baselines import NaiveDomEngine

        doc = "<r><a><a>1</a></a></r>"
        query = "<out>{count($root//a)}</out>"
        gcx = GCXEngine().run(query, doc).output
        assert gcx == NaiveDomEngine().run(query, doc).output
        assert gcx == "<out>2</out>"
