"""The zero-buffer direct runner: certified queries bypass the buffer.

When the schema-constraint pass certifies a query (matches provably
cannot nest in a conforming document), the session swaps the
preprojector/buffer/evaluator stack for
:class:`repro.engine.direct.DirectEvaluator`: a stack of NFA state sets
over the open elements, with matched subtrees streamed through to the
output as they are read.  Peak buffer residency is zero.

The certificate is *structurally sound*: the runner detects nested
matches (schema violations) itself, captures just those subtrees, and
replays them in document order — so output stays byte-identical to the
generic engine even on documents that violate the certifying schema,
with the violation count surfaced as ``BufferStats.schema_fallbacks``.
"""

from __future__ import annotations

import pytest

from repro.analysis.schema import Schema
from repro.engine import EngineOptions, GCXEngine
from repro.engine.direct import DirectEvaluator

FLAT_DTD = """
<!ELEMENT r (a*)>
<!ELEMENT a (b*)>
<!ELEMENT b (#PCDATA)>
"""

SUBTREE_QUERY = "<o>{for $x in //a return $x}</o>"
PATH_QUERY = "<o>{for $x in /r/a return $x/b}</o>"

CONFORMING = "<r><a><b>one</b><b>two</b></a><a/><a><b>three</b></a></r>"
# <a> inside <a>: violates the DTD, and makes the //a matches nest.
VIOLATING = "<r><a><b>x</b><a><b>y</b></a></a><a><b>z</b></a></r>"


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema.from_dtd_text(FLAT_DTD)


def run_both(query: str, document: str, schema: Schema):
    """(schema-on result, schema-off result) for the default engine."""
    engine = GCXEngine()
    return engine.run(query, document, schema=schema), engine.run(
        query, document
    )


class TestDispatch:
    def test_certified_query_uses_direct_runner(self, schema):
        session = GCXEngine().session(SUBTREE_QUERY, schema=schema)
        assert session.compiled.certified_zero_buffer
        run = session.run_streaming(CONFORMING)
        # The direct runner serves as both preprojector and evaluator.
        assert isinstance(run._preprojector, DirectEvaluator)
        "".join(run.serialized())

    def test_uncertified_query_keeps_generic_path(self, schema):
        # <a> nesting cannot be ruled out without the schema's help; a
        # where clause is outside the certifiable shape.
        query = "<o>{for $x in //a where (exists $x/b) return $x}</o>"
        session = GCXEngine().session(query, schema=schema)
        assert not session.compiled.certified_zero_buffer
        run = session.run_streaming(CONFORMING)
        assert not isinstance(run._preprojector, DirectEvaluator)
        "".join(run.serialized())

    def test_eager_leaf_bindings_excludes_direct(self, schema):
        # The flux-like configuration changes evaluation order; the
        # certificate is proven for the default order only.
        options = EngineOptions(eager_leaf_bindings=True)
        session = GCXEngine(options).session(SUBTREE_QUERY, schema=schema)
        run = session.run_streaming(CONFORMING)
        assert not isinstance(run._preprojector, DirectEvaluator)
        "".join(run.serialized())


class TestConformingDocuments:
    @pytest.mark.parametrize("query", [SUBTREE_QUERY, PATH_QUERY])
    def test_output_matches_generic_engine(self, query, schema):
        on, off = run_both(query, CONFORMING, schema)
        assert on.output == off.output

    @pytest.mark.parametrize("query", [SUBTREE_QUERY, PATH_QUERY])
    def test_zero_buffer_high_watermark(self, query, schema):
        on, off = run_both(query, CONFORMING, schema)
        assert on.stats.hwm_bytes == 0
        assert on.stats.hwm_nodes == 0
        assert off.stats.hwm_bytes > 0  # the win being claimed

    def test_no_fallbacks_on_conforming_input(self, schema):
        on, _ = run_both(SUBTREE_QUERY, CONFORMING, schema)
        assert on.stats.schema_fallbacks == 0

    def test_role_accounting_stays_balanced(self, schema):
        on, _ = run_both(SUBTREE_QUERY, CONFORMING, schema)
        assert on.stats.role_accounting_balanced()

    def test_tokens_are_still_counted(self, schema):
        on, off = run_both(SUBTREE_QUERY, CONFORMING, schema)
        assert on.stats.tokens_read == off.stats.tokens_read

    def test_streaming_is_incremental(self, schema):
        """The first fragment must arrive before the document ends."""
        session = GCXEngine().session(SUBTREE_QUERY, schema=schema)
        run = session.run_streaming(CONFORMING)
        fragments = run.serialized()
        first = next(fragments)
        assert first  # output began while input remains
        rest = "".join(fragments)
        _, off = run_both(SUBTREE_QUERY, CONFORMING, schema)
        assert first + rest == off.output


class TestViolatingDocuments:
    def test_output_still_byte_identical(self, schema):
        on, off = run_both(SUBTREE_QUERY, VIOLATING, schema)
        assert on.output == off.output

    def test_fallbacks_are_counted(self, schema):
        on, _ = run_both(SUBTREE_QUERY, VIOLATING, schema)
        assert on.stats.schema_fallbacks == 1

    def test_fallback_buffering_is_charged(self, schema):
        """Captured nested matches must show up in the high watermark."""
        on, _ = run_both(SUBTREE_QUERY, VIOLATING, schema)
        assert on.stats.hwm_bytes > 0
        assert on.stats.nodes_created == on.stats.nodes_purged

    def test_document_order_is_preserved(self, schema):
        # Generic semantics emit the outer match, then the nested one.
        on, off = run_both(SUBTREE_QUERY, VIOLATING, schema)
        outer = on.output.index("<a><b>x</b><a><b>y</b></a></a>")
        inner = on.output.index("<a><b>y</b></a>", outer + 1)
        assert outer < inner
        assert on.output == off.output

    def test_deeply_nested_violations(self, schema):
        document = "<r><a><a><a><b>t</b></a></a></a></r>"
        on, off = run_both(SUBTREE_QUERY, document, schema)
        assert on.output == off.output
        assert on.stats.schema_fallbacks == 2

    def test_summary_mentions_fallbacks(self, schema):
        on, _ = run_both(SUBTREE_QUERY, VIOLATING, schema)
        assert "schema fallbacks 1" in on.stats.summary()


class TestSessionReuse:
    def test_compile_once_run_many(self, schema):
        session = GCXEngine().session(SUBTREE_QUERY, schema=schema)
        first = session.run(CONFORMING)
        second = session.run(VIOLATING)
        third = session.run(CONFORMING)
        assert first.output == third.output
        assert second.stats.schema_fallbacks == 1
        assert third.stats.schema_fallbacks == 0
