"""Tests for Definitions 3 and 4 (straight variables, fsa)."""


from repro.analysis import compute_straight
from repro.xquery import analyze_variables, normalize, parse_query

from tests.helpers import EXAMPLE4_QUERY, FIGURE9_QUERY, INTRO_QUERY


def straight_of(query_text: str):
    variables = analyze_variables(normalize(parse_query(query_text)))
    return variables, compute_straight(variables)


class TestPaperExamples:
    def test_root_is_straight(self):
        _vars, straight = straight_of("<r>{$root/a}</r>")
        assert straight.is_straight("$root")
        assert straight.fsa("$root") == "$root"

    def test_intro_query_all_straight(self):
        _vars, straight = straight_of(INTRO_QUERY)
        for var in ("$root", "$bib", "$x", "$b"):
            assert straight.is_straight(var), var
            assert straight.fsa(var) == var

    def test_example6_first_query(self):
        """Example 6: $a and $b in Example 4's query are straight."""
        _vars, straight = straight_of(EXAMPLE4_QUERY)
        assert straight.is_straight("$a")
        assert straight.is_straight("$b")
        assert straight.fsa("$a") == "$a"
        assert straight.fsa("$b") == "$b"

    def test_example6_figure9_query(self):
        """Example 6: in Figure 9's query $b is not straight, fsa = $root."""
        _vars, straight = straight_of(FIGURE9_QUERY)
        assert straight.is_straight("$a")
        assert not straight.is_straight("$b")
        assert straight.fsa("$b") == "$root"


class TestTransitivity:
    def test_descendant_of_non_straight_is_non_straight(self):
        # $c hangs off the non-straight $b, so condition (1) fails for $c.
        _vars, straight = straight_of(
            "<q>{for $a in //a return for $b in //b return "
            "for $c in $b/c return <x/>}</q>"
        )
        assert not straight.is_straight("$b")
        assert not straight.is_straight("$c")
        assert straight.fsa("$c") == "$root"

    def test_sibling_loops_both_straight(self):
        _vars, straight = straight_of(
            "<q>{(for $a in /r/a return $a, for $b in /r/b return $b)}</q>"
        )
        assert straight.is_straight("$a")
        assert straight.is_straight("$b")

    def test_join_inner_loop_not_straight(self):
        """XMark Q8's pattern: the inner absolute loop defers to $root."""
        _vars, straight = straight_of(
            "<q>{for $p in /site/person return "
            "for $t in /site/sale return "
            "if ($t/buyer = $p/id) then <s/> else ()}</q>"
        )
        assert straight.is_straight("$p")
        assert not straight.is_straight("$t")
        assert straight.fsa("$t") == "$root"

    def test_variables_with_fsa_grouping(self):
        variables, straight = straight_of(FIGURE9_QUERY)
        assert straight.variables_with_fsa("$root") == ["$root", "$b"]
        assert straight.variables_with_fsa("$a") == ["$a"]
        assert straight.variables_with_fsa("$b") == []
