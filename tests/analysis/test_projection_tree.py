"""Projection tree construction tests, including the Figure 1 golden."""

import pytest

from repro.analysis import CompileOptions, compile_query
from repro.xquery.paths import child, dos_node

from tests.helpers import INTRO_QUERY

PAPER_OPTIONS = CompileOptions(early_updates=False, eliminate_redundant=False)


@pytest.fixture
def intro_tree():
    return compile_query(INTRO_QUERY, PAPER_OPTIONS).projection_tree


class TestFigure1:
    def test_rendered_tree_matches_figure(self, intro_tree):
        assert intro_tree.format() == "\n".join(
            [
                "n1: /",
                "  n2: /bib",
                "    n3: /*",
                "      n4: /price[1]",
                "      n5: dos::node()",
                "    n6: /book",
                "      n7: /title/dos::node()",
            ]
        )

    def test_roles_follow_node_numbering(self, intro_tree):
        assert [role.name for role in intro_tree.roles] == [
            "r2",
            "r3",
            "r4",
            "r5",
            "r6",
            "r7",
        ]

    def test_binding_roles(self, intro_tree):
        assert intro_tree.binding_role("$bib").name == "r2"
        assert intro_tree.binding_role("$x").name == "r3"
        assert intro_tree.binding_role("$b").name == "r6"
        assert intro_tree.binding_role("$root") is None

    def test_dependency_roles(self, intro_tree):
        dep_roles = {
            role.name: dep.path for dep, role in intro_tree.dependency_roles("$x")
        }
        assert dep_roles == {
            "r4": (child("price", first=True),),
            "r5": (dos_node(),),
        }

    def test_root_carries_no_role(self, intro_tree):
        assert intro_tree.root.role is None
        assert intro_tree.root.var == "$root"

    def test_role_nodes_backlink(self, intro_tree):
        for role in intro_tree.roles:
            node = intro_tree.role_nodes[role]
            assert node.role is role


class TestStructure:
    def test_chain_for_multistep_dependency(self, intro_tree):
        """n7 is a two-step chain (title -> dos::node()) with one display id."""
        book = intro_tree.var_nodes["$b"]
        (title,) = book.children
        assert title.step == child("title")
        assert title.role is None  # covered by the dos leaf's self part
        (dos_leaf,) = title.children
        assert dos_leaf.step == dos_node()
        assert dos_leaf.role.name == "r7"
        assert title.display_id == dos_leaf.display_id == 7

    def test_path_from_root(self, intro_tree):
        x_node = intro_tree.var_nodes["$x"]
        assert x_node.path_from_root() == (child("bib"), child("*"))

    def test_node_count(self, intro_tree):
        # 7 displayed nodes, one of which is a 2-node chain => 8 PTNodes.
        assert intro_tree.node_count() == 8


class TestPrefixRoles:
    def test_uncovered_intermediate_gets_prefix_role(self):
        """Multi-step condition paths need roles on intermediate steps."""
        compiled = compile_query(
            "<r>{for $t in /r/t return "
            'if ($t/buyer/person = "p0") then <s/> else ()}</r>',
            PAPER_OPTIONS,
        )
        tree = compiled.projection_tree
        entries = tree.signoff_entries["$t"]
        # prefix (buyer) first, then the dependency (buyer/person/dos).
        assert [path for path, _role in entries] == [
            (child("buyer"),),
            (child("buyer"), child("person"), dos_node()),
        ]
        prefix_role = entries[0][1]
        assert prefix_role.kind == "prefix"

    def test_single_step_needs_no_prefix(self, intro_tree):
        assert all(
            role.kind != "prefix"
            for _path, role in intro_tree.signoff_entries.get("$x", [])
        )

    def test_dos_tail_covers_second_to_last(self, intro_tree):
        # title/dos::node(): title is self-covered by the dos leaf, so the
        # only signoff entry for $b's dependency is the full path.
        entries = intro_tree.signoff_entries["$b"]
        assert [path for path, _role in entries] == [(child("title"), dos_node())]
