"""Union projection trees: merging, masks, and the merged signoff table."""

from __future__ import annotations

import pytest

from repro.analysis import build_union_projection, compile_query
from repro.xmark.queries import XMARK_QUERIES


def union_of(*texts: str):
    trees = [compile_query(text).projection_tree for text in texts]
    return build_union_projection(trees)


class TestMerging:
    def test_identical_queries_merge_completely(self):
        query = "<o>{for $a in /r/a return $a/b}</o>"
        union = union_of(query, query)
        # Every union node is shared by both queries...
        assert all(node.mask == 0b11 for node in union.all_nodes())
        # ...so the union is no larger than one query's tree.
        assert union.node_count() == union.trees[0].node_count()
        assert union.shared_node_count() == union.node_count()

    def test_disjoint_queries_share_only_the_root_path(self):
        union = union_of(
            "<o>{for $a in /r/a return $a}</o>",
            "<o>{for $b in /r/b return $b}</o>",
        )
        shared = [node for node in union.all_nodes() if node.shared]
        # The root and the common /r step (both queries loop from /r).
        assert all(node.step is None or str(node.step) == "r" for node in shared)
        assert union.node_count() < union.separate_node_count()

    def test_steps_differing_only_in_first_flag_stay_separate(self):
        union = union_of(
            "<o>{for $a in /r/a return if (exists $a/b) then <h/> else ()}</o>",
            "<o>{for $a in /r/a return $a/b}</o>",
        )
        b_steps = [
            node
            for node in union.all_nodes()
            if node.step is not None and str(node.step.test) == "b"
        ]
        firsts = {node.step.first for node in b_steps}
        # The existence check consumes b[1]; the output path does not —
        # they must not merge, or routing would conflate their semantics.
        assert firsts == {True, False}

    def test_masks_cover_each_query_exactly(self):
        names = ["Q1", "Q6", "Q13"]
        union = union_of(*(XMARK_QUERIES[name].adapted for name in names))
        assert union.query_count == 3
        assert union.full_mask == 0b111
        assert union.root.mask == 0b111
        for index, tree in enumerate(union.trees):
            contributed = [
                node
                for node in union.all_nodes()
                if any(qi == index for qi, _src in node.sources)
            ]
            # Every non-root node of the per-query tree appears exactly once
            # among the union sources of that query.
            assert len(contributed) == tree.node_count()

    def test_empty_input_is_rejected(self):
        with pytest.raises(ValueError, match="at least one tree"):
            build_union_projection([])


class TestSignoffTable:
    def test_release_entries_match_per_query_roles(self):
        union = union_of(
            XMARK_QUERIES["Q1"].adapted, XMARK_QUERIES["Q13"].adapted
        )
        table = union.release_table()
        # Every (query, role) pair appears exactly once across the table.
        seen = [(qi, role.name) for _node, entries in table for qi, role in entries]
        assert len(seen) == len(set(seen))
        per_query = [
            sum(1 for qi, _name in seen if qi == index) for index in range(2)
        ]
        for index, tree in enumerate(union.trees):
            displayed_roles = sum(
                1 for node in tree.all_nodes() if node.role is not None
            )
            assert per_query[index] == displayed_roles

    def test_shared_positions_list_all_interested_queries(self):
        """The merged release rule: /site is held until *both* sign off."""
        union = union_of(
            XMARK_QUERIES["Q1"].adapted, XMARK_QUERIES["Q6"].adapted
        )
        site = next(
            node
            for node in union.all_nodes()
            if node.step is not None and str(node.step) == "site"
        )
        assert site.mask == 0b11
        assert sorted(qi for qi, _role in site.releases) == [0, 1]


class TestRendering:
    def test_format_labels_masks_with_query_names(self):
        union = union_of(
            XMARK_QUERIES["Q1"].adapted, XMARK_QUERIES["Q6"].adapted
        )
        rendered = union.format(["Q1", "Q6"])
        assert "site {Q1,Q6}" in rendered
        assert "signoff[" in rendered

    def test_format_defaults_to_positional_labels(self):
        union = union_of("<o>{for $a in /r/a return $a}</o>")
        assert "q0" in union.format()
