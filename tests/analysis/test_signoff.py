"""Golden tests for signOff insertion (Figures 8 and 9, the intro query)."""


from repro.analysis import CompileOptions, compile_query
from repro.xquery import parse_query, unparse

from tests.helpers import EXAMPLE4_QUERY, FIGURE9_QUERY, INTRO_QUERY

PAPER_OPTIONS = CompileOptions(early_updates=False, eliminate_redundant=False)


class TestIntroQuery:
    """The rewritten query from the introduction (page 2)."""

    def test_rewritten_matches_paper(self):
        compiled = compile_query(INTRO_QUERY, PAPER_OPTIONS)
        expected = parse_query(
            """
            <r> {
            for $bib in $root/bib return
            ((for $x in $bib/* return
            (if (not(exists $x/price)) then $x else (),
            signOff($x,r3), signOff($x/price[1],r4),
            signOff($x/dos::node(),r5))),
            (for $b in $bib/book return
            ($b/title,
            signOff($b,r6),
            signOff($b/title/dos::node(),r7))),
            signOff($bib,r2))
            } </r>
            """
        )
        # Compare via the unparser: the compiled query holds Role objects,
        # the expected one role-name strings; rendering normalizes both.
        assert unparse(compiled.rewritten) == unparse(expected)

    def test_signoffs_never_inside_ifs(self):
        from repro.xquery.ast import IfThenElse, SignOff, walk

        compiled = compile_query(INTRO_QUERY, PAPER_OPTIONS)
        for node in walk(compiled.rewritten.root):
            if isinstance(node, IfThenElse):
                assert not any(
                    isinstance(sub, SignOff) for sub in walk(node.then_branch)
                )
                assert not any(
                    isinstance(sub, SignOff) for sub in walk(node.else_branch)
                )


class TestFigure9:
    """Non-straight variables sign off at fsa scope end."""

    def test_binding_role_of_inner_loop_deferred_to_root(self):
        compiled = compile_query(FIGURE9_QUERY, PAPER_OPTIONS)
        rendered = unparse(compiled.rewritten)
        # $a's binding role is removed per binding...
        assert "signOff($a, r2)" in rendered
        # ...but $b's is removed once, at $root scope end, via the varpath.
        assert "signOff($root/descendant::b, r3)" in rendered
        # No per-binding signOff for $b exists.
        assert "signOff($b" not in rendered

    def test_structure_matches_paper(self):
        """Same shape as Figure 9's right-hand query (role ids shifted by
        one because our numbering reserves n1 for the tree root)."""
        compiled = compile_query(FIGURE9_QUERY, PAPER_OPTIONS)
        expected = parse_query(
            """
            <q>{(for $a in $root/descendant::a
            return
            ((<a>
            {for $b in $root/descendant::b
            return <b/>}
            </a>),
            signOff($a,r2)),
            signOff($root/descendant::b,r3))}
            </q>
            """
        )
        assert unparse(compiled.rewritten) == unparse(expected)


class TestExample4:
    """Per-binding signOffs for the straight $a//b query."""

    def test_rewritten_matches_example(self):
        compiled = compile_query(EXAMPLE4_QUERY, PAPER_OPTIONS)
        rendered = unparse(compiled.rewritten)
        assert "signOff($b, r3)" in rendered  # paper's r2; ids shifted
        assert "signOff($a, r2)" in rendered  # paper's r1

    def test_batch_order_binding_then_dependencies(self):
        compiled = compile_query(INTRO_QUERY, PAPER_OPTIONS)
        rendered = unparse(compiled.rewritten)
        assert rendered.index("signOff($x, r3)") < rendered.index(
            "signOff($x/price[1], r4)"
        )
        assert rendered.index("signOff($x/price[1], r4)") < rendered.index(
            "signOff($x/dos::node(), r5)"
        )


class TestEarlyUpdates:
    def test_output_becomes_one_iteration_loop(self):
        compiled = compile_query(INTRO_QUERY, CompileOptions(eliminate_redundant=False))
        rendered = unparse(compiled.rewritten)
        # $b/title turned into "for $outN in $b/title return ($outN, ...)"
        assert "in $b/title return" in rendered
        # The fresh variable is signed off inside its own loop (early).
        import re

        match = re.search(
            r"for (\$out\d+) in \$b/title return \(\1, signOff\(\1,", rendered
        )
        assert match, rendered

    def test_early_updates_preserve_output(self):
        from repro.engine import EngineOptions, GCXEngine

        doc = "<bib><book><title>T</title><title>U</title></book></bib>"
        with_updates = GCXEngine(EngineOptions(early_updates=True)).run(
            INTRO_QUERY, doc
        )
        without = GCXEngine(EngineOptions(early_updates=False)).run(INTRO_QUERY, doc)
        assert with_updates.output == without.output
