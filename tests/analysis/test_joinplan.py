"""Join-planner detection tests: which loops are (not) equi-join sites.

The planner's contract (``repro.analysis.joinplan``) is that dispatching
a detected site to the hash operator is always sound, so every test here
is about the *boundary*: the Q8/Q9 shape must be found through the
early-updates/if-pushdown rewriting, and anything that would change
semantics under probing — signoffs in the body, mixed gates, non-``=``
operators, gates on body-bound variables — must be left alone.
"""

from repro.analysis.compile import compile_query

JOIN_BODY = """
  for $s in /site return
  for $pl in $s/people return
  for $p in $pl/person return
    {body}
"""


def _plan(body: str):
    return compile_query(
        "<out>{" + JOIN_BODY.format(body=body) + "}</out>"
    ).joinplan


INNER = (
    "for $s2 in /site return "
    "for $ca in $s2/closed_auctions return "
    "for $t in $ca/closed_auction return {gated}"
)


class TestDetection:
    def test_q8_shape_is_detected(self):
        plan = _plan(
            INNER.format(
                gated="if ($t/buyer/person = $p/id) then <sale/> else ()"
            )
        )
        assert len(plan) == 1
        [site] = plan.sites.values()
        assert site.var == "$t"
        assert site.outer_var == "$p"

    def test_q9_output_body_is_detected(self):
        # Early updates interpose a one-iteration loop around the output
        # path; detection must recurse through it to find the gate.
        plan = _plan(
            INNER.format(
                gated="if ($t/buyer/person = $p/id) "
                "then <b>{$t/itemref/item/text()}</b> else ()"
            )
        )
        assert len(plan) == 1

    def test_where_clause_spelling_is_detected(self):
        # ``where`` normalizes to the gated-if shape before planning.
        plan = _plan(
            "for $s2 in /site return "
            "for $ca in $s2/closed_auctions return "
            "for $t in $ca/closed_auction "
            "where $t/buyer/person = $p/id return <sale/>"
        )
        assert len(plan) == 1

    def test_multiple_gated_outputs_with_one_gate(self):
        plan = _plan(
            INNER.format(
                gated="(if ($t/buyer/person = $p/id) then <a/> else (), "
                "if ($t/buyer/person = $p/id) then <b/> else ())"
            )
        )
        assert len(plan) == 1

    def test_site_description_names_both_paths(self):
        plan = _plan(
            INNER.format(
                gated="if ($t/buyer/person = $p/id) then <sale/> else ()"
            )
        )
        [line] = plan.describe()
        assert "$t/buyer/person" in line and "$p/id" in line


class TestBailouts:
    def test_ungated_output_bails(self):
        # An unconditional output next to the gated one: probing would
        # drop it for non-matching bindings.
        plan = _plan(
            INNER.format(
                gated="(<always/>, "
                "if ($t/buyer/person = $p/id) then <sale/> else ())"
            )
        )
        assert len(plan) == 0

    def test_mixed_gates_bail(self):
        plan = _plan(
            INNER.format(
                gated="(if ($t/buyer/person = $p/id) then <a/> else (), "
                'if ($t/price = "9") then <b/> else ())'
            )
        )
        assert len(plan) == 0

    def test_non_equality_comparison_bails(self):
        plan = _plan(
            INNER.format(
                gated="if ($t/buyer/person >= $p/id) then <sale/> else ()"
            )
        )
        assert len(plan) == 0

    def test_literal_comparison_bails(self):
        # One side must be an outer variable, not a constant.
        plan = _plan(
            INNER.format(
                gated='if ($t/buyer/person = "person0") then <sale/> else ()'
            )
        )
        assert len(plan) == 0

    def test_gate_on_body_bound_variable_bails(self):
        # The gate references a variable bound inside the body of the
        # ``$t`` loop, so ``$t`` is not a site — but the innermost loop
        # (``$u`` against the loop-invariant ``$t/buyer/person``) is a
        # perfectly sound equi-join of its own, and is detected.
        plan = _plan(
            INNER.format(
                gated="for $u in $t/itemref return "
                "if ($t/buyer/person = $u/item) then <sale/> else ()"
            )
        )
        assert all(site.var != "$t" for site in plan.sites.values())
        assert [site.var for site in plan.sites.values()] == ["$u"]

    def test_non_else_empty_if_bails(self):
        plan = _plan(
            INNER.format(
                gated="if ($t/buyer/person = $p/id) then <sale/> else <no/>"
            )
        )
        assert len(plan) == 0

    def test_positional_loop_paths_bail(self):
        # Normalization already rejects positional for-loop steps, so the
        # planner's own guard is exercised on a hand-built AST (the
        # public ``compute_join_plan`` takes any core query).
        from repro.analysis.joinplan import compute_join_plan
        from repro.xquery.ast import (
            Comparison,
            Element,
            Empty,
            ForLoop,
            IfThenElse,
            PathOperand,
            Query,
        )
        from repro.xquery.paths import Axis, Step, tag_test

        positional = Step(Axis.CHILD, tag_test("a"), first=True)
        gate = Comparison(
            PathOperand("$t", (Step(Axis.CHILD, tag_test("k")),)),
            "=",
            PathOperand("$p", (Step(Axis.CHILD, tag_test("id")),)),
        )
        loop = ForLoop(
            "$t",
            "$s",
            (positional,),
            IfThenElse(gate, Element("sale", Empty()), Empty()),
        )
        assert len(compute_join_plan(Query(loop))) == 0

    def test_rewritten_query_keeps_signoffs_out_of_sites(self):
        # Compile inserts signoffs around the join loop; the detected
        # site's body must still contain none (they run on the loop's own
        # schedule, outside the gated body).
        from repro.xquery.ast import SignOff, walk

        plan = _plan(
            INNER.format(
                gated="if ($t/buyer/person = $p/id) then <sale/> else ()"
            )
        )
        [site] = plan.sites.values()
        assert not any(
            isinstance(node, SignOff) for node in walk(site.body)
        )
