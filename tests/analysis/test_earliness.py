"""The earliness pass: decided watermarks, their trust wall, no retraction.

Unit level: :func:`~repro.analysis.earliness.compute_earliness` certifies
the ``open`` watermark exactly for output sites with a matching dep role,
reports ``first-witness`` marks for existential conditions, and — with a
schema — folds at-most-once and horizon facts in as *trusted-only*
watermarks that never enlarge the streamable set.

Adversarial level: the splicing suite forces schema violations into
random documents and checks the engine never retracts emitted output —
with a schema present but untrusted, the output is byte-identical to the
no-schema oracle, because streamability rests only on structural proofs.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import CompileOptions, compile_query
from repro.analysis.schema import Schema
from repro.engine import EngineOptions, GCXEngine
from repro.xmark.queries import XMARK_QUERIES
from repro.xmark.schema import xmark_schema

from tests.properties.strategies import documents

FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: The schema over the strategies' tag alphabet that random documents
#: routinely violate (no self-nesting of <a>, PCDATA-only leaves).
RANDOM_DOC_DTD = """
<!ELEMENT r (a*, b*, c*, d*)>
<!ELEMENT a (b*, c*, d*)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
"""


def plan_for(query: str, schema: Schema | None = None):
    compiled = compile_query(query, schema=schema)
    assert compiled.earliness is not None
    return compiled.earliness


class TestPlan:
    def test_subtree_output_gets_the_open_watermark(self):
        plan = plan_for("<o>{for $x in /r/a return $x}</o>")
        decision = plan.decision_for("$x")
        assert decision is not None
        assert decision.streamable
        assert decision.watermark == "open"
        assert ("$x", ()) in plan.streamable_sites

    def test_rewritten_path_output_still_streams(self):
        """Early updates turn ``$x/b`` into ``for $out in $x/b return
        $out`` — the plan keys the site on the fresh variable and the
        dep-role certificate carries over."""
        plan = plan_for("<o>{for $x in /r/a return $x/b}</o>")
        [site] = plan.streamable_sites
        var, path = site
        assert path == ()
        assert plan.decision_for(var, path).watermark == "open"

    def test_path_output_site_is_keyed_by_relative_path(self):
        """Without the rewrite the PathOutput survives and the site is
        keyed ``(var, relative path)`` — not the dos-extended dep path."""
        compiled = compile_query(
            "<o>{for $x in /r/a return $x/b}</o>",
            CompileOptions(early_updates=False),
        )
        plan = compiled.earliness
        sites = {site for site in plan.streamable_sites if site[0] == "$x"}
        assert sites, plan.summary()
        [(var, path)] = sites
        assert len(path) == 1  # the /b step
        assert plan.decision_for("$x", path).watermark == "open"

    def test_conditions_report_first_witness_watermarks(self):
        plan = plan_for(
            '<o>{for $x in /r/a return if ($x/b = "x") then $x/c else ()}</o>'
        )
        witnesses = [m for m in plan.watermarks if m.kind == "first-witness"]
        assert witnesses, plan.summary()
        assert all(not m.trusted_only for m in witnesses)

    def test_schema_watermarks_are_trusted_only(self):
        query = XMARK_QUERIES["Q13"].adapted
        plan = plan_for(query, schema=xmark_schema())
        schema_marks = [
            m for m in plan.watermarks if m.kind in ("at-most-once", "horizon")
        ]
        assert schema_marks, plan.summary()
        assert all(m.trusted_only for m in schema_marks)
        assert plan.single_match_loops  # Q13's name/description loops

    def test_schema_never_enlarges_the_streamable_set(self):
        """The trust wall: streamability rests only on structural proofs,
        so the streamable sites are identical with and without a schema."""
        for name in sorted(XMARK_QUERIES):
            query = XMARK_QUERIES[name].adapted
            bare = plan_for(query)
            with_schema = plan_for(query, schema=xmark_schema())
            assert bare.streamable_sites == with_schema.streamable_sites, name

    def test_structural_marks_survive_without_schema(self):
        plan = plan_for(XMARK_QUERIES["Q13"].adapted)
        assert plan.single_match_loops == frozenset()
        assert all(
            m.kind in ("open", "signoff", "first-witness")
            for m in plan.watermarks
        )

    def test_summary_mentions_streamable_count(self):
        plan = plan_for("<o>{for $x in /r/a return $x}</o>")
        assert "output site(s) streamable" in plan.summary()


class TestNoRetraction:
    """A schema-violating suffix after a watermark never retracts output."""

    @FAST
    @given(
        document=documents(max_depth=5),
        nested=st.integers(min_value=1, max_value=3),
    )
    def test_spliced_violations_match_the_no_schema_oracle(self, document, nested):
        """Splice guaranteed self-nesting of <a> into the document body:
        the untrusted engine with a schema in hand must still stream the
        streamable site and still agree with the no-schema oracle byte
        for byte — emitted prefixes are never taken back."""
        spliced = "<a>" * nested + "<b>v</b>" + "</a>" * nested
        document = document.replace("<r>", "<r>" + spliced, 1)
        if not document.startswith("<r><a>"):
            document = "<r>" + spliced + "</r>"
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in //a return $x}</o>"
        engine = GCXEngine()
        with_schema = engine.run(query, document, schema=schema)
        oracle = engine.run(query, document)
        assert with_schema.output == oracle.output

    @FAST
    @given(
        document=documents(max_depth=5),
        nested=st.integers(min_value=1, max_value=3),
    )
    def test_earliness_off_agrees_on_violating_documents(self, document, nested):
        """Both sides of the earliness ablation see the same violating
        document and must agree: the watermark proof does not lean on the
        (broken) schema facts."""
        spliced = "<a>" * nested + "<b>v</b>" + "</a>" * nested
        document = document.replace("<r>", "<r>" + spliced, 1)
        if not document.startswith("<r><a>"):
            document = "<r>" + spliced + "</r>"
        schema = Schema.from_dtd_text(RANDOM_DOC_DTD)
        query = "<o>{for $x in //a return $x}</o>"
        on = GCXEngine().run(query, document, schema=schema)
        off = GCXEngine(EngineOptions(earliness=False)).run(
            query, document, schema=schema
        )
        assert on.output == off.output
        assert on.stats.tokens_held_before_emit <= off.stats.tokens_held_before_emit

    def test_single_match_loop_is_ignored_untrusted(self):
        """A document with a duplicate <name> violates the XMark DTD; the
        untrusted engine must output both names even though the schema
        'proves' at most one — the at-most-once watermark stays behind
        the trust wall."""
        document = (
            "<site><regions><namerica><item id=\"i0\">"
            "<name>first</name><name>second</name>"
            "</item></namerica></regions></site>"
        )
        query = (
            "<results>{ for $i in /site/regions/namerica/item "
            "return <item>{ $i/name/text() }</item> }</results>"
        )
        with_schema = GCXEngine().run(query, document, schema=xmark_schema())
        oracle = GCXEngine().run(query, document)
        assert with_schema.output == oracle.output
        assert "firstsecond" in oracle.output
