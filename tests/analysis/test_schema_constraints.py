"""The schema-constraint pass: pruning, signoff facts, zero-buffer proofs.

The pass is FluX's idea (schema-aware static analysis) grafted onto GCX's
pipeline: with a DTD in hand, compilation proves facts the dynamic
analysis alone cannot — a pattern path that can never match in a
conforming document, a variable whose binding occurs at most once under
its parent, and (the headline) queries whose evaluation needs no buffer
at all because matches provably cannot nest.

Everything here is *report by default*: the proofs land on
``CompiledQuery.constraints`` without changing runtime artifacts, except
the zero-buffer certificate (structurally sound — the runtime detects
violations itself) and the trusted mode (``EngineOptions(trust_schema=
True)``), which applies pruning and signoff-stripping under FluX's
conforming-input assumption.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    CompileOptions,
    apply_trusted_constraints,
    compile_query,
)
from repro.analysis.schema import Schema
from repro.xmark.queries import XMARK_QUERIES
from repro.xmark.schema import xmark_schema
from repro.xquery import unparse

BIB_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""


@pytest.fixture(scope="module")
def bib() -> Schema:
    return Schema.from_dtd_text(BIB_DTD)


def constraints_for(query: str, schema: Schema):
    compiled = compile_query(query, schema=schema)
    assert compiled.constraints is not None
    return compiled


class TestOptionality:
    def test_no_schema_means_no_constraints(self):
        compiled = compile_query("<o>{for $b in /bib/book return $b}</o>")
        assert compiled.constraints is None
        assert compiled.schema is None
        assert not compiled.certified_zero_buffer

    def test_schema_recorded_on_compiled(self, bib):
        compiled = constraints_for(
            "<o>{for $b in /bib/book return $b}</o>", bib
        )
        assert compiled.schema is bib
        assert compiled.constraints.schema is bib


class TestPruning:
    def test_impossible_path_is_reported(self, bib):
        # <book> has no <journal> child in the schema.
        compiled = constraints_for(
            "<o>{for $b in /bib/book return $b/journal}</o>", bib
        )
        assert len(compiled.constraints.pruned) == 1
        assert "journal" in str(compiled.constraints.pruned[0].pattern)

    def test_possible_paths_are_not_pruned(self, bib):
        compiled = constraints_for(
            "<o>{for $b in /bib/book return $b/title}</o>", bib
        )
        assert compiled.constraints.pruned == ()

    def test_report_only_by_default(self, bib):
        """Default mode must not touch the projection tree or signoffs."""
        query = "<o>{for $b in /bib/book return $b/journal}</o>"
        with_schema = compile_query(query, schema=bib)
        without = compile_query(query)
        assert (
            with_schema.projection_tree.node_count()
            == without.projection_tree.node_count()
        )
        assert unparse(with_schema.rewritten) == unparse(without.rewritten)

    def test_trusted_mode_prunes_tree_and_signoffs(self, bib):
        query = "<o>{for $b in /bib/book return $b/journal}</o>"
        compiled = compile_query(query, schema=bib)
        trusted = apply_trusted_constraints(compiled)
        assert (
            trusted.projection_tree.node_count()
            < compiled.projection_tree.node_count()
        )
        for role in compiled.constraints.pruned_roles:
            assert role not in trusted.projection_tree.roles
        assert str(trusted.rewritten) != str(compiled.rewritten)

    def test_trusted_mode_is_identity_when_nothing_proved(self, bib):
        compiled = compile_query(
            "<o>{for $b in /bib/book return $b/title}</o>", schema=bib
        )
        trusted = apply_trusted_constraints(compiled)
        assert (
            trusted.projection_tree.node_count()
            == compiled.projection_tree.node_count()
        )


class TestSignoffFacts:
    """Facts attach to *dependencies* — condition paths a variable's
    buffered subtree is kept alive for (output paths normalize into
    their own one-iteration loops and carry no occurrence structure)."""

    def test_at_most_once_fact(self, bib):
        # title occurs at most once under book: $b's buffer for the
        # exists-check is releasable after the first occurrence.
        compiled = constraints_for(
            "<o>{for $b in /bib/book where (exists $b/title) "
            "return $b/author}</o>",
            bib,
        )
        once = [
            fact
            for fact in compiled.constraints.signoff_facts
            if fact.kind == "at-most-once"
        ]
        assert once and once[0].var == "$b"
        assert "title" in once[0].path

    def test_release_horizon_fact(self, bib):
        # Once <author> or <price> opens under $b, no further <title> can
        # occur — the schema's sibling order is the release horizon.
        compiled = constraints_for(
            "<o>{for $b in /bib/book where (exists $b/title) "
            "return $b/author}</o>",
            bib,
        )
        horizons = [
            fact
            for fact in compiled.constraints.signoff_facts
            if fact.kind == "release-horizon"
        ]
        assert horizons
        assert any("author" in fact.detail for fact in horizons)

    def test_unbounded_child_gets_no_at_most_once(self, bib):
        compiled = constraints_for(
            "<o>{for $b in /bib/book where (exists $b/author) "
            "return $b/title}</o>",
            bib,
        )
        assert not any(
            fact.kind == "at-most-once" and "author" in fact.path
            for fact in compiled.constraints.signoff_facts
        )


class TestZeroBufferCertification:
    @pytest.mark.parametrize("name", ["Q6", "Q15"])
    def test_certified_xmark_queries(self, name):
        compiled = compile_query(
            XMARK_QUERIES[name].adapted, schema=xmark_schema()
        )
        assert compiled.certified_zero_buffer
        plan = compiled.constraints.zero_buffer
        assert plan.binding_tags
        assert plan.describe()

    @pytest.mark.parametrize("name", ["Q1", "Q8", "Q13", "Q17", "Q20"])
    def test_uncertified_xmark_queries(self, name):
        compiled = compile_query(
            XMARK_QUERIES[name].adapted, schema=xmark_schema()
        )
        assert not compiled.certified_zero_buffer

    def test_subtree_kind(self, bib):
        compiled = constraints_for(
            "<o>{for $b in /bib/book return $b}</o>", bib
        )
        plan = compiled.constraints.zero_buffer
        assert plan is not None and plan.kind == "subtree"

    def test_nesting_tag_blocks_certification(self):
        # <a> can contain <a>: matches may nest, no zero-buffer proof.
        schema = Schema.from_dtd_text(
            "<!ELEMENT r (a*)>\n<!ELEMENT a (a*, b*)>\n<!ELEMENT b (#PCDATA)>"
        )
        compiled = compile_query(
            "<o>{for $x in /r/a return $x}</o>", schema=schema
        )
        assert compiled.constraints.zero_buffer is None

    def test_where_clause_blocks_certification(self, bib):
        compiled = constraints_for(
            "<o>{for $b in /bib/book where (exists $b/price) "
            "return $b/title}</o>",
            bib,
        )
        assert compiled.constraints.zero_buffer is None

    def test_certification_survives_options(self):
        """The proof works on the normalized query, before early updates."""
        compiled = compile_query(
            XMARK_QUERIES["Q15"].adapted,
            CompileOptions(early_updates=False, eliminate_redundant=False),
            schema=xmark_schema(),
        )
        assert compiled.certified_zero_buffer


class TestSummary:
    def test_summary_mentions_everything(self, bib):
        compiled = constraints_for(
            "<o>{for $b in /bib/book return $b/journal}</o>", bib
        )
        text = compiled.constraints.summary()
        assert "pruned" in text
        assert "zero-buffer" in text
