"""Tests for Definition 2 (variable dependencies)."""

import pytest

from repro.analysis import collect_dependencies
from repro.xquery import normalize, parse_query
from repro.xquery.paths import child, descendant, dos_node

from tests.helpers import INTRO_QUERY


def deps_of(query_text: str, **kwargs):
    return collect_dependencies(normalize(parse_query(query_text)), **kwargs)


class TestDefinition2:
    def test_exists_gets_first_witness(self):
        deps = deps_of(
            "<r>{for $x in /r/i return if (exists $x/price) then <t/> else ()}</r>"
        )
        assert [d.path for d in deps["$x"]] == [(child("price", first=True),)]

    def test_output_path_gets_subtree(self):
        deps = deps_of("<r>{for $b in /bib/book return $b/title}</r>")
        assert [d.path for d in deps["$b"]] == [(child("title"), dos_node())]

    def test_bare_variable_gets_dos(self):
        deps = deps_of("<r>{for $b in /bib/book return $b}</r>")
        assert [d.path for d in deps["$b"]] == [(dos_node(),)]

    def test_comparison_operands_get_subtree(self):
        deps = deps_of(
            '<r>{for $p in /ps/p return if ($p/id = "x") then <t/> else ()}</r>'
        )
        assert [d.path for d in deps["$p"]] == [(child("id"), dos_node())]

    def test_both_comparison_sides_recorded(self):
        deps = deps_of(
            "<r>{for $a in /r/a return for $b in /r/b return "
            "if ($a/k = $b/k) then <m/> else ()}</r>"
        )
        assert (child("k"), dos_node()) in [d.path for d in deps["$a"]]
        assert (child("k"), dos_node()) in [d.path for d in deps["$b"]]

    def test_intro_example_matches_example5(self):
        """dep($x) = {<price[1]>, <dos::node()>}, dep($b) = {<title/dos>}."""
        deps = collect_dependencies(normalize(parse_query(INTRO_QUERY)))
        assert [d.path for d in deps["$x"]] == [
            (child("price", first=True),),
            (dos_node(),),
        ]
        assert [d.path for d in deps["$b"]] == [(child("title"), dos_node())]
        assert "$bib" not in deps  # $bib has no dependencies


class TestOrderingAndDedup:
    def test_syntactic_order(self):
        deps = deps_of(
            "<r>{for $x in /r/i return (if (exists $x/a) then <t/> else (), $x/b)}</r>"
        )
        paths = [d.path for d in deps["$x"]]
        assert paths == [(child("a", first=True),), (child("b"), dos_node())]

    def test_duplicate_conditions_share_one_entry(self):
        deps = deps_of(
            "<r>{for $x in /r/i return "
            "(if (exists $x/a) then <t/> else (), if (exists $x/a) then <u/> else ())}</r>"
        )
        assert len(deps["$x"]) == 1

    def test_descendant_dependency(self):
        deps = deps_of(
            "<r>{for $x in /r/i return if (exists $x//deep) then <t/> else ()}</r>"
        )
        assert [d.path for d in deps["$x"]] == [(descendant("deep", first=True),)]

    def test_first_witness_disabled(self):
        deps = deps_of(
            "<r>{for $x in /r/i return if (exists $x/price) then <t/> else ()}</r>",
            first_witness=False,
        )
        assert [d.path for d in deps["$x"]] == [(child("price"),)]

    def test_multistep_condition_path(self):
        deps = deps_of(
            '<r>{for $p in /ps/p return if ($p/profile/income >= "1") then <t/> else ()}</r>'
        )
        assert [d.path for d in deps["$p"]] == [
            (child("profile"), child("income"), dos_node())
        ]

    def test_signoff_in_input_rejected(self):
        from repro.xquery import parse_query as pq

        query = pq("<r>{(for $x in /r/a return $x, signOff($root/a, r1))}</r>")
        with pytest.raises(ValueError):
            collect_dependencies(query)


class TestWidenedFragment:
    """Dependency behavior of aggregates, positional steps, quantifiers."""

    def test_accumulable_aggregate_contributes_nothing(self):
        # The O(1) accumulator replaces the buffered subtree entirely
        # (docs/JOINS.md), so no dependency — and no roles — are recorded.
        deps = deps_of("<r>{for $x in /r/i return count($x/a)}</r>")
        assert deps.get("$x", []) == []

    def test_positional_aggregate_keeps_the_subtree(self):
        deps = deps_of("<r>{for $x in /r/i return count($x/a[1]/b)}</r>")
        assert [d.path for d in deps["$x"]] == [
            (child("a", first=True), child("b"), dos_node())
        ]

    def test_quantified_witnesses_are_buffered_without_trimming(self):
        # Every witness may need testing, so the binding path gets no
        # first-witness trimming, and the inner condition's paths are
        # rebased onto the binding source.
        deps = deps_of(
            "<r>{for $x in /r/i return "
            "if (some $q in $x/a satisfies exists $q/b) then <t/> else ()}</r>"
        )
        paths = sorted(d.path for d in deps["$x"])
        assert (child("a"),) in paths
        assert (child("a"), child("b", first=True)) in paths
