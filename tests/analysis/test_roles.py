"""Tests for roles and role-set multisets."""

import pytest

from repro.analysis import Role, RoleSet, UndefinedRoleRemoval


@pytest.fixture
def roles():
    return Role(2, "binding", "$bib"), Role(5, "dep", "$x")


class TestRoleSet:
    def test_empty_set_is_falsy(self):
        assert not RoleSet()

    def test_add_and_count(self, roles):
        r2, r5 = roles
        rs = RoleSet()
        rs.add(r2)
        rs.add(r5, 2)
        assert rs.count(r2) == 1
        assert rs.count(r5) == 2
        assert rs.total() == 3
        assert rs

    def test_multiplicity_semantics(self, roles):
        """A role can be assigned several times (Figure 4's multi-role)."""
        _r2, r5 = roles
        rs = RoleSet()
        rs.add(r5)
        rs.add(r5)
        rs.remove(r5)
        assert r5 in rs  # one instance left
        rs.remove(r5)
        assert r5 not in rs
        assert not rs

    def test_removal_below_zero_is_undefined(self, roles):
        r2, _r5 = roles
        rs = RoleSet()
        with pytest.raises(UndefinedRoleRemoval):
            rs.remove(r2)

    def test_partial_removal_below_count_is_undefined(self, roles):
        r2, _r5 = roles
        rs = RoleSet()
        rs.add(r2, 1)
        with pytest.raises(UndefinedRoleRemoval):
            rs.remove(r2, 2)

    def test_nonpositive_add_rejected(self, roles):
        r2, _r5 = roles
        with pytest.raises(ValueError):
            RoleSet().add(r2, 0)

    def test_as_names_sorted_with_multiplicity(self, roles):
        r2, r5 = roles
        rs = RoleSet()
        rs.add(r5, 2)
        rs.add(r2)
        assert rs.as_names() == ["r2", "r5", "r5"]

    def test_roles_compare_by_identity(self):
        a = Role(3, "binding", "$x")
        b = Role(3, "binding", "$x")
        rs = RoleSet()
        rs.add(a)
        assert b not in rs  # distinct objects are distinct roles

    def test_iteration(self, roles):
        r2, r5 = roles
        rs = RoleSet()
        rs.add(r2)
        rs.add(r5, 3)
        assert dict(iter(rs)) == {r2: 1, r5: 3}

    def test_name_property(self):
        assert Role(7, "dep", "$b").name == "r7"
