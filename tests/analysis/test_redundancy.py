"""Tests for redundant-role elimination (Section 6, Figure 12)."""

import pytest

from repro.analysis import CompileOptions, compile_query, pattern_contains
from repro.analysis.redundancy import is_vacuous_body
from repro.xquery import parse_expr
from repro.xquery.paths import child, descendant, dos_node

from tests.helpers import EXAMPLE4_QUERY, INTRO_QUERY


class TestFigure12:
    def test_intro_query_drops_r3_and_r6(self):
        compiled = compile_query(
            INTRO_QUERY, CompileOptions(early_updates=False, eliminate_redundant=True)
        )
        assert sorted(role.name for role in compiled.eliminated_roles) == ["r3", "r6"]

    def test_merged_tree_matches_figure12(self):
        compiled = compile_query(
            INTRO_QUERY, CompileOptions(early_updates=False, eliminate_redundant=True)
        )
        assert compiled.projection_tree.format(merge_roleless=True) == "\n".join(
            [
                "n1: /",
                "  n2: /bib",
                "    n4: /*/price[1]",
                "    n5: /*/dos::node()",
                "    n7: /book/title/dos::node()",
            ]
        )

    def test_signoff_statements_removed(self):
        from repro.xquery import unparse

        compiled = compile_query(
            INTRO_QUERY, CompileOptions(early_updates=False, eliminate_redundant=True)
        )
        rendered = unparse(compiled.rewritten)
        assert "signOff($x, " not in rendered
        assert "signOff($b, " not in rendered
        assert "signOff($x/price[1], r4)" in rendered  # others remain

    def test_example4_keeps_binding_roles(self):
        """Constructors are emitted per binding: roles r1/r2 are NOT redundant."""
        compiled = compile_query(
            EXAMPLE4_QUERY,
            CompileOptions(early_updates=False, eliminate_redundant=True),
        )
        assert compiled.eliminated_roles == []


class TestPatternContainment:
    @pytest.mark.parametrize(
        "container, contained, expected",
        [
            # Figure 12's justification: /bib/*/dos covers /bib/book.
            (
                (child("bib"), child("*"), dos_node()),
                (child("bib"), child("book")),
                True,
            ),
            ((child("a"),), (child("a"),), True),
            ((child("a"),), (child("b"),), False),
            ((child("*"),), (child("a"),), True),
            ((child("a"),), (child("*"),), False),
            ((descendant("a"),), (child("a"),), True),
            ((child("a"),), (descendant("a"),), False),
            ((descendant("b"),), (child("a"), child("b")), True),
            ((descendant("b"),), (child("a"), descendant("b")), True),
            ((child("a"), dos_node()), (child("a"), child("b"), child("c")), True),
            ((child("a"), dos_node()), (child("a"),), True),  # dos self
            ((child("a"), dos_node()), (child("b"),), False),
            # [1] on the container restricts it: not a containment.
            ((child("a", first=True),), (child("a"),), False),
            # [1] on the contained side is fine (conservative).
            ((child("a"),), (child("a", first=True),), True),
            # descendant::* matches any element at any depth.
            ((descendant("*"),), (child("a"), child("b")), True),
            ((descendant("*"), dos_node()), (child("a"), child("b")), True),
        ],
    )
    def test_cases(self, container, contained, expected):
        assert pattern_contains(container, contained) == expected


class TestVacuousBodies:
    def test_output_only_loop_is_vacuous(self):
        body = parse_expr("for $t in $b/title return $t")
        assert is_vacuous_body(body, "$b")

    def test_path_output_is_vacuous(self):
        body = parse_expr("$b/title")
        assert is_vacuous_body(body, "$b")

    def test_constructor_is_not_vacuous(self):
        body = parse_expr("<hit/>")
        assert not is_vacuous_body(body, "$b")

    def test_constructor_inside_derived_loop_is_vacuous(self):
        body = parse_expr("for $t in $b/title return <t>{$t}</t>")
        assert is_vacuous_body(body, "$b")

    def test_positive_condition_is_vacuous(self):
        body = parse_expr("if (exists $b/title) then <hit/> else ()")
        assert is_vacuous_body(body, "$b")

    def test_negated_condition_is_not_vacuous(self):
        body = parse_expr("if (not(exists $b/title)) then <none/> else ()")
        assert not is_vacuous_body(body, "$b")

    def test_unrelated_condition_is_not_vacuous(self):
        body = parse_expr("if (exists $other/x) then <hit/> else ()")
        assert not is_vacuous_body(body, "$b")

    def test_loop_over_unrelated_source_with_vacuous_body(self):
        body = parse_expr("for $u in $other/x return $b/title")
        assert is_vacuous_body(body, "$b")

    def test_loop_over_unrelated_source_emitting(self):
        body = parse_expr("for $u in $other/x return <hit/>")
        assert not is_vacuous_body(body, "$b")

    def test_or_requires_both_sides_positive(self):
        vac = parse_expr("if (exists $b/t or exists $b/u) then <h/> else ()")
        assert is_vacuous_body(vac, "$b")
        not_vac = parse_expr("if (exists $b/t or true()) then <h/> else ()")
        assert not is_vacuous_body(not_vac, "$b")

    def test_and_needs_one_positive_side(self):
        body = parse_expr("if (exists $b/t and true()) then <h/> else ()")
        assert is_vacuous_body(body, "$b")


class TestEliminationSafety:
    """Elimination must never change query results."""

    @pytest.mark.parametrize(
        "doc",
        [
            "<bib/>",
            "<bib><book/></bib>",
            "<bib><book><title>t</title></book></bib>",
            "<bib><book><price>1</price></book><cd><title>c</title></cd></bib>",
            "<bib><book><title>a</title><title>b</title></book><book/></bib>",
        ],
    )
    def test_intro_query_results_stable(self, doc):
        from repro.engine import EngineOptions, GCXEngine

        on = GCXEngine(EngineOptions(eliminate_redundant_roles=True)).run(
            INTRO_QUERY, doc
        )
        off = GCXEngine(EngineOptions(eliminate_redundant_roles=False)).run(
            INTRO_QUERY, doc
        )
        assert on.output == off.output

    def test_elimination_reduces_roles(self):
        from repro.engine import EngineOptions, GCXEngine

        doc = "<bib><book><title>t</title></book><cd/></bib>"
        on = GCXEngine(EngineOptions(eliminate_redundant_roles=True)).run(
            INTRO_QUERY, doc
        )
        off = GCXEngine(EngineOptions(eliminate_redundant_roles=False)).run(
            INTRO_QUERY, doc
        )
        assert on.stats.roles_assigned < off.stats.roles_assigned
