"""The Schema API: DTD parsing, content-model queries, validation.

One :class:`repro.analysis.schema.Schema` object now backs everything
schema-shaped in the codebase — the XMark generator's content tables,
the ``gcx dtd`` output, the CLI's ``--schema`` flag and the serve
protocol's register-frame DTD all funnel into it — so these tests pin
both the DTD round-trip and the derived facts the constraint pass
consumes (occurrence ceilings, closers, reachability).
"""

from __future__ import annotations

import pytest

from repro.analysis.schema import ChildSpec, Schema, SchemaViolation, load_dtd
from repro.xmark.dtd import render_dtd
from repro.xmark.schema import xmark_schema

BIB_DTD = """
<!ELEMENT bib (book*, journal?)>
<!ELEMENT book (title, author*, price?)>
<!ELEMENT journal (title)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""


@pytest.fixture(scope="module")
def bib() -> Schema:
    return Schema.from_dtd_text(BIB_DTD)


class TestDtdParsing:
    def test_tags_and_roots(self, bib):
        assert bib.tags == {"bib", "book", "journal", "title", "author", "price"}
        assert bib.roots == {"bib"}

    def test_leaves_are_pcdata_elements(self, bib):
        assert {"title", "author", "price"} <= bib.leaves

    def test_children_of(self, bib):
        specs = bib.children_of("book")
        assert [spec.tag for spec in specs] == ["title", "author", "price"]

    def test_cardinalities(self, bib):
        assert bib.at_most_once("book", "title")
        assert bib.at_most_once("book", "price")
        assert not bib.at_most_once("book", "author")  # author*
        assert bib.max_occurs("bib", "book") is None  # unbounded

    def test_allows(self, bib):
        assert bib.allows("bib", "book")
        assert not bib.allows("book", "journal")
        assert not bib.allows("title", "book")  # leaf

    def test_rejects_garbage(self):
        with pytest.raises(SchemaViolation):
            Schema.from_dtd_text("not a dtd at all")

    def test_load_dtd_from_path(self, tmp_path, bib):
        path = tmp_path / "bib.dtd"
        path.write_text(BIB_DTD, encoding="utf-8")
        assert load_dtd(path).tags == bib.tags

    def test_roundtrip_through_to_dtd(self, bib):
        again = Schema.from_dtd_text(bib.to_dtd())
        assert again.tags == bib.tags
        for parent in bib.models:
            assert again.children_of(parent) == bib.children_of(parent)


class TestDerivedFacts:
    def test_closers_are_the_following_siblings(self, bib):
        # Once <author> opens under <book>, <title> can no longer occur.
        assert bib.closers("book", "title") == {"author", "price"}
        # Nothing follows price, so nothing closes it early.
        assert bib.closers("book", "price") == frozenset()

    def test_reachable_from(self, bib):
        assert "title" in bib.reachable_from("bib")
        assert "bib" not in bib.reachable_from("book")

    def test_text_bearing(self, bib):
        assert "title" in bib.text_bearing
        assert "bib" not in bib.text_bearing


class TestValidation:
    def test_conforming_document(self, bib):
        checked = bib.validate_document(
            "<bib><book><title>T</title><author>A</author></book></bib>"
        )
        assert checked == 4

    def test_order_violation(self, bib):
        with pytest.raises(SchemaViolation):
            bib.validate_document(
                "<bib><book><author>A</author><title>T</title></book></bib>"
            )

    def test_cardinality_violation(self, bib):
        with pytest.raises(SchemaViolation):
            bib.validate_document(
                "<bib><book><title>a</title><price>1</price>"
                "<price>2</price></book></bib>"
            )

    def test_unknown_element(self, bib):
        with pytest.raises(SchemaViolation):
            bib.validate_document("<bib><movie/></bib>")


class TestXMarkUnification:
    """xmark.dtd and xmark.schema are facades over the one Schema object."""

    def test_xmark_schema_is_a_schema(self):
        schema = xmark_schema()
        assert isinstance(schema, Schema)
        assert schema.roots == {"site"}

    def test_render_dtd_parses_back(self):
        schema = Schema.from_dtd_text(render_dtd())
        assert schema.tags == xmark_schema().tags

    def test_generated_documents_conform(self):
        from repro.xmark import generate_xmark

        document = generate_xmark(0.001, seed=11)
        assert xmark_schema().validate_document(document) > 0

    def test_reference_positions_are_leaves(self):
        schema = xmark_schema()
        # itemref under bidder carries an IDREF, not the item subtree.
        assert schema.is_reference("watch", "open_auction") or any(
            schema.is_reference(parent, spec.tag)
            for parent in schema.models
            for spec in schema.children_of(parent)
        )


class TestChildSpec:
    def test_suffix_rendering(self):
        assert ChildSpec("a", 0, None).suffix == "*"
        assert ChildSpec("a", 1, None).suffix == "+"
        assert ChildSpec("a", 0, 1).suffix == "?"
        assert ChildSpec("a", 1, 1).suffix == ""
