"""Tests for token-stream serialization."""

from repro.xmlio import EndTag, StartTag, StringSink, Text, serialize_tokens, tokenize


class TestSerializeTokens:
    def test_collapses_empty_elements(self):
        assert serialize_tokens([StartTag("a"), EndTag("a")]) == "<a/>"

    def test_nested(self):
        tokens = [StartTag("a"), StartTag("b"), EndTag("b"), EndTag("a")]
        assert serialize_tokens(tokens) == "<a><b/></a>"

    def test_text_is_escaped(self):
        tokens = [StartTag("a"), Text("x < y & z"), EndTag("a")]
        assert serialize_tokens(tokens) == "<a>x &lt; y &amp; z</a>"

    def test_text_prevents_collapse(self):
        tokens = [StartTag("a"), Text("t"), EndTag("a")]
        assert serialize_tokens(tokens) == "<a>t</a>"

    def test_roundtrip_with_tokenizer(self):
        text = "<a><b>one</b><c/>two<d><e/></d></a>"
        assert serialize_tokens(tokenize(text)) == text

    def test_indent_mode_runs(self):
        tokens = [StartTag("a"), StartTag("b"), EndTag("b"), EndTag("a")]
        rendered = serialize_tokens(tokens, indent="  ")
        assert "<a>" in rendered and "<b/>" in rendered


class TestStringSink:
    def test_token_count(self):
        sink = StringSink()
        sink.write_all([StartTag("a"), Text("x"), EndTag("a")])
        assert sink.token_count == 3
        assert sink.getvalue() == "<a>x</a>"

    def test_incremental_getvalue_is_stable(self):
        sink = StringSink()
        sink.write(StartTag("a"))
        sink.write(EndTag("a"))
        assert sink.getvalue() == "<a/>"
        assert sink.getvalue() == "<a/>"
