"""Tests for the DOM tree and Definition 1's projection."""

import pytest

from repro.xmlio import (
    DocumentNode,
    ElementNode,
    TextNode,
    parse_tree,
    project,
    serialize_tree,
)


@pytest.fixture
def small_tree():
    return parse_tree("<a><c/><d><b/></d><a2>txt</a2></a>")


class TestParseTree:
    def test_document_root(self, small_tree):
        assert isinstance(small_tree, DocumentNode)
        assert small_tree.root_element.tag == "a"

    def test_document_order_is_monotone(self, small_tree):
        orders = [node.order for node in small_tree.iter_subtree()]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)

    def test_parents_are_set(self, small_tree):
        for node in small_tree.descendants():
            assert node.parent is not None
            assert node in node.parent.children

    def test_size(self, small_tree):
        # doc + a + c + d + b + a2 + text
        assert small_tree.size == 7

    def test_string_value_concatenates_descendant_text(self):
        tree = parse_tree("<a>x<b>y</b>z</a>")
        assert tree.root_element.string_value() == "xyz"

    def test_ancestors(self, small_tree):
        b = next(
            node
            for node in small_tree.iter_subtree()
            if isinstance(node, ElementNode) and node.tag == "b"
        )
        tags = [
            getattr(ancestor, "tag", "/") for ancestor in b.ancestors()
        ]
        assert tags == ["d", "a", "/"]


class TestSerializeTree:
    def test_roundtrip(self):
        text = "<a><b>hi</b><c/></a>"
        assert serialize_tree(parse_tree(text)) == text

    def test_escaping(self):
        tree = parse_tree("<a>x &amp; y</a>")
        assert serialize_tree(tree) == "<a>x &amp; y</a>"


class TestProjectionDefinition1:
    """The worked example of Figure 3."""

    @pytest.fixture
    def figure3_tree(self):
        # T: a(n1) with children c(n2), d(n3); d has child b(n4); a child a(n5)
        return parse_tree("<a><c/><d><b/></d><a/></a>")

    def _nodes_by_path(self, tree):
        n1 = tree.root_element
        n2, n3, n5 = n1.children
        (n4,) = n3.children
        return n1, n2, n3, n4, n5

    def test_projection_keeps_selected_nodes_and_promotes(self, figure3_tree):
        n1, n2, n3, n4, n5 = self._nodes_by_path(figure3_tree)
        projected = project(figure3_tree, {n1, n4, n5})
        # Pi_{n1,n4,n5}(T): a with children b (promoted) and a.
        assert serialize_tree(projected) == "<a><b/><a/></a>"

    def test_projection_preserves_ancestor_descendant(self, figure3_tree):
        n1, n2, n3, n4, n5 = self._nodes_by_path(figure3_tree)
        projected = project(figure3_tree, {n1, n3, n4})
        assert serialize_tree(projected) == "<a><d><b/></d></a>"

    def test_projection_with_predicate(self, figure3_tree):
        projected = project(
            figure3_tree,
            lambda node: isinstance(node, ElementNode) and node.tag in ("a", "b"),
        )
        assert serialize_tree(projected) == "<a><b/><a/></a>"

    def test_projection_preserves_following_order(self):
        tree = parse_tree("<r><x><k1/></x><k2/></r>")
        projected = project(
            tree,
            lambda node: isinstance(node, ElementNode) and node.tag.startswith("k"),
        )
        assert serialize_tree(projected) == "<k1/><k2/>"

    def test_projection_keeps_original_orders(self, figure3_tree):
        n1, n2, n3, n4, n5 = self._nodes_by_path(figure3_tree)
        projected = project(figure3_tree, {n1, n4, n5})
        orders = sorted(node.order for node in projected.descendants())
        assert orders == sorted([n1.order, n4.order, n5.order])

    def test_projection_does_not_mutate_original(self, figure3_tree):
        before = serialize_tree(figure3_tree)
        project(figure3_tree, lambda node: False)
        assert serialize_tree(figure3_tree) == before

    def test_text_nodes_projectable(self):
        tree = parse_tree("<a><b>keep</b></a>")
        projected = project(tree, lambda node: isinstance(node, TextNode))
        assert serialize_tree(projected) == "keep"
