"""Sharded parallel scan: equality with the sequential lexer, safe fallback.

``GCX_LEX_SHARDS=N`` splits a large document at tag boundaries, lexes the
shards in a process pool, and merges the per-shard event streams after
re-validating the full document grammar.  The safety contract under test:

* a successful sharded scan yields a token stream *identical* to the
  frozen reference lexer, whatever markup straddles the split points;
* any doubt — malformed document, no safe split, tiny input — returns
  the scan to the sequential path, which stays authoritative for error
  messages and offsets (so errors are byte-identical with sharding on).

``GCX_LEX_SHARD_MIN_BYTES=0`` removes the size gate so small test
documents exercise the real multi-process machinery.
"""

from __future__ import annotations

import pytest

from repro.xmark import generate_xmark
from repro.xmlio import shard
from repro.xmlio._reference_lexer import reference_tokenize
from repro.xmlio.filelexer import tokenize_file
from repro.xmlio.lexer import XMLSyntaxError, tokenize


@pytest.fixture
def two_shards(monkeypatch):
    monkeypatch.setenv("GCX_LEX_SHARDS", "2")
    monkeypatch.setenv("GCX_LEX_SHARD_MIN_BYTES", "0")


@pytest.fixture
def four_shards(monkeypatch):
    monkeypatch.setenv("GCX_LEX_SHARDS", "4")
    monkeypatch.setenv("GCX_LEX_SHARD_MIN_BYTES", "0")


# Big enough that _plan_splits finds interior split points for 2 and 4
# shards; small enough to keep the suite fast.
STRADDLE_DOCUMENTS = [
    # Plain elements and text around every split candidate.
    "<r>" + "<a>text node</a>" * 40 + "</r>",
    # Comments and CDATA long enough to cover a naive midpoint split.
    "<r><a>head</a><!-- " + "never <split> me " * 30 + " --><b>tail</b></r>",
    "<r><a>head</a><![CDATA[" + "looks </like> markup " * 30 + "]]><b>tail</b></r>",
    # Processing instructions and multi-byte text at scale.
    "<r>" + "<?pi some data?><a>é日😀</a>" * 30 + "</r>",
    # Attribute-heavy markup.
    "<r>" + '<item id="i7" cat="a b">v</item>' * 30 + "</r>",
]


class TestShardedEquality:
    @pytest.mark.parametrize("document", STRADDLE_DOCUMENTS)
    def test_in_memory_matches_reference(self, two_shards, document):
        assert list(tokenize(document)) == list(reference_tokenize(document))

    @pytest.mark.parametrize("document", STRADDLE_DOCUMENTS)
    def test_file_mode_matches_reference(self, two_shards, tmp_path, document):
        path = tmp_path / "doc.xml"
        path.write_text(document, encoding="utf-8")
        assert list(tokenize_file(path)) == list(reference_tokenize(document))

    def test_xmark_in_memory_four_shards(self, four_shards, xmark_doc_small):
        assert list(tokenize(xmark_doc_small)) == list(
            reference_tokenize(xmark_doc_small)
        )

    def test_xmark_file_mode(self, two_shards, tmp_path):
        document = generate_xmark(0.0005, seed=11)
        path = tmp_path / "xmark.xml"
        path.write_text(document, encoding="utf-8")
        assert list(tokenize_file(path)) == list(reference_tokenize(document))

    def test_unstripped_flags_propagate_to_workers(self, two_shards):
        document = "<r>  " + "<a> padded </a>" * 40 + "  </r>"
        flags = {"strip_whitespace": False, "convert_attributes": False}
        assert list(tokenize(document, **flags)) == list(
            reference_tokenize(document, **flags)
        )


class TestShardedErrors:
    """Malformed input falls back; errors are byte-identical to sequential."""

    ERROR_CASES = [
        "<r>" + "<a>x</a>" * 30 + "</r><extra/>",  # second root
        "<r>" + "<a>x</a>" * 30,  # never closed
        "<r>" + "<a>x</a>" * 15 + "</b>" + "<a>x</a>" * 15 + "</r>",
        "<r>" + "<a>x</a>" * 30 + "</r>trailing text",
        "<r>" + "<a>x</a>" * 15 + "<![CDATA[never terminated",
    ]

    @pytest.mark.parametrize("bad", ERROR_CASES)
    def test_same_error_as_sequential(self, two_shards, monkeypatch, bad):
        with pytest.raises(XMLSyntaxError) as sharded_error:
            list(tokenize(bad))
        monkeypatch.setenv("GCX_LEX_SHARDS", "1")
        with pytest.raises(XMLSyntaxError) as sequential_error:
            list(tokenize(bad))
        assert str(sharded_error.value) == str(sequential_error.value)
        assert sharded_error.value.position == sequential_error.value.position

    @pytest.mark.parametrize("bad", ERROR_CASES)
    def test_same_error_in_file_mode(self, two_shards, tmp_path, bad):
        path = tmp_path / "bad.xml"
        path.write_text(bad, encoding="utf-8")
        with pytest.raises(XMLSyntaxError) as file_error:
            list(tokenize_file(path))
        with pytest.raises(XMLSyntaxError) as reference_error:
            list(reference_tokenize(bad))
        assert str(file_error.value) == str(reference_error.value)


class TestFallbackGates:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("GCX_LEX_SHARDS", raising=False)
        assert shard.maybe_tokenize_sharded("<r><a/></r>" * 10) is None

    def test_small_documents_stay_sequential(self, monkeypatch):
        monkeypatch.setenv("GCX_LEX_SHARDS", "2")
        monkeypatch.delenv("GCX_LEX_SHARD_MIN_BYTES", raising=False)
        # Under the 4 MiB default gate: not worth a process round-trip.
        assert shard.maybe_tokenize_sharded("<r><a>x</a></r>") is None

    def test_cdata_dominant_document_never_splits_inside(self, two_shards):
        # A CDATA section covering the naive midpoint, stuffed with
        # markup-looking bytes: the claim-scan must push the split past
        # the terminator (or give up), never land inside the section.
        document = "<r><![CDATA[" + "</r><a>" * 60 + "]]><b/></r>"
        tokens = shard.maybe_tokenize_sharded(document)
        expected = list(reference_tokenize(document))
        if tokens is not None:
            assert list(tokens) == expected
        # Either way the public entry point agrees with the reference.
        assert list(tokenize(document)) == expected

    def test_missing_file_returns_none(self, two_shards, tmp_path):
        assert shard.maybe_tokenize_file_sharded(tmp_path / "missing.xml") is None

    def test_concurrent_callers_from_threads(self, two_shards):
        """Sharding must be safe from arbitrary caller threads.

        SessionPool and the serve layer tokenize on worker threads; the
        shard executor uses the spawn start method precisely because a
        fork taken while a sibling thread holds a lock would deadlock
        the child.  Eight threads hammering the shared executor must
        all finish with the exact sequential stream.
        """
        from concurrent.futures import ThreadPoolExecutor

        document = "<r>" + "<a>text node é</a>" * 50 + "</r>"
        expected = list(reference_tokenize(document))

        def scan(_):
            return list(tokenize(document))

        with ThreadPoolExecutor(max_workers=8) as threads:
            results = list(threads.map(scan, range(16)))
        assert all(tokens == expected for tokens in results)

    def test_accepts_bytes_like_inputs(self, two_shards):
        document = "<r>" + "<a>é日😀</a>" * 40 + "</r>"
        expected = list(reference_tokenize(document))
        raw = document.encode("utf-8")
        for source in (document, raw, bytearray(raw), memoryview(raw)):
            tokens = shard.maybe_tokenize_sharded(source)
            assert tokens is not None, type(source).__name__
            assert list(tokens) == expected
