"""Tests for the xmlio layer."""
