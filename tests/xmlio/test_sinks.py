"""The TokenSink protocol: incremental serialization and bridging sinks."""

import io

import pytest

from repro.xmlio.serialize import (
    GeneratorSink,
    IncrementalSerializer,
    StringSink,
    WriterSink,
    serialize_stream,
    serialize_tokens,
)
from repro.xmlio.tokens import EndTag, StartTag, Text

STREAMS = {
    "flat": [StartTag("a"), Text("x"), EndTag("a")],
    "bachelor": [StartTag("a"), EndTag("a")],
    "nested-bachelors": [
        StartTag("r"),
        StartTag("a"),
        EndTag("a"),
        StartTag("b"),
        StartTag("c"),
        EndTag("c"),
        EndTag("b"),
        EndTag("r"),
    ],
    "text-escaping": [StartTag("t"), Text("a<b&c>d"), EndTag("t")],
    "mixed": [
        StartTag("r"),
        Text("pre"),
        StartTag("e"),
        EndTag("e"),
        Text("post"),
        EndTag("r"),
    ],
    "empty": [],
}


@pytest.fixture(params=sorted(STREAMS), name="stream_name")
def _stream_name(request):
    return request.param


class TestIncrementalSerializer:
    def test_start_tag_is_withheld_until_decided(self):
        serializer = IncrementalSerializer()
        assert serializer.feed(StartTag("a")) == ""
        assert serializer.feed(EndTag("a")) == "<a/>"

    def test_start_tag_released_by_content(self):
        serializer = IncrementalSerializer()
        assert serializer.feed(StartTag("a")) == ""
        assert serializer.feed(Text("x")) == "<a>x"
        assert serializer.feed(EndTag("a")) == "</a>"

    def test_flush_releases_trailing_start(self):
        serializer = IncrementalSerializer()
        serializer.feed(StartTag("a"))
        assert serializer.flush() == "<a>"
        assert serializer.flush() == ""  # idempotent

    def test_fragments_join_to_buffered_serialization(self, stream_name):
        tokens = STREAMS[stream_name]
        assert "".join(serialize_stream(tokens)) == serialize_tokens(tokens)

    def test_indented_fragments_match_buffered(self, stream_name):
        tokens = STREAMS[stream_name]
        lazy = "".join(serialize_stream(tokens, indent="  "))
        assert lazy == serialize_tokens(tokens, indent="  ")

    def test_prefix_of_fragments_is_prefix_of_result(self):
        tokens = STREAMS["nested-bachelors"]
        fragments = list(serialize_stream(tokens))
        full = serialize_tokens(tokens)
        for cut in range(len(fragments)):
            assert full.startswith("".join(fragments[:cut]))


class TestStringSink:
    def test_counts_tokens(self):
        sink = StringSink()
        sink.write_all(STREAMS["flat"])
        assert sink.token_count == 3
        assert sink.getvalue() == "<a>x</a>"

    def test_bachelor_collapse(self):
        sink = StringSink()
        sink.write_all(STREAMS["bachelor"])
        assert sink.getvalue() == "<a/>"


class TestWriterSink:
    def test_matches_string_sink(self, stream_name):
        tokens = STREAMS[stream_name]
        target = io.StringIO()
        sink = WriterSink(target)
        sink.write_all(tokens)
        sink.close()
        assert target.getvalue() == serialize_tokens(tokens)
        assert sink.chars_written == len(target.getvalue())

    def test_writes_incrementally(self):
        """Decided fragments reach the writable before the stream ends."""
        target = io.StringIO()
        sink = WriterSink(target)
        sink.write(StartTag("r"))
        sink.write(Text("x"))
        assert target.getvalue() == "<r>x"  # already visible, no close needed

    def test_close_flushes_pending_start(self):
        target = io.StringIO()
        sink = WriterSink(target)
        sink.write(StartTag("r"))
        assert target.getvalue() == ""
        sink.close()
        assert target.getvalue() == "<r>"


class TestGeneratorSink:
    def test_drain_yields_written_tokens(self):
        sink = GeneratorSink()
        sink.write_all(STREAMS["flat"])
        assert list(sink) == STREAMS["flat"]
        assert list(sink) == []  # drained

    def test_interleaved_write_and_drain(self):
        sink = GeneratorSink()
        sink.write(StartTag("a"))
        assert list(sink.drain()) == [StartTag("a")]
        sink.write(EndTag("a"))
        assert list(sink.drain()) == [EndTag("a")]

    def test_len_reflects_pending(self):
        sink = GeneratorSink()
        assert len(sink) == 0
        sink.write(Text("x"))
        assert len(sink) == 1

    def test_closed_sink_rejects_writes(self):
        sink = GeneratorSink()
        sink.close()
        with pytest.raises(ValueError):
            sink.write(Text("x"))
