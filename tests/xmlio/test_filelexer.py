"""Tests for the file-backed streaming tokenizer."""

import io

import pytest

from repro.xmlio import tokenize
from repro.xmlio.filelexer import FileTokenizer, tokenize_file
from repro.xmlio.lexer import XMLSyntaxError


def file_tokens(text: str, chunk_size: int = 16):
    return list(
        FileTokenizer(io.StringIO(text), chunk_size=chunk_size)
    )


class TestEquivalenceWithStringTokenizer:
    CASES = [
        "<a/>",
        "<a><b>text</b><c/></a>",
        "<a>long text content that spans several chunks for sure</a>",
        '<a x="1" y="2"><b/></a>',
        "<a><!-- comment spanning -->x</a>",
        "<a><![CDATA[raw <markup> here]]></a>",
        "<?xml version='1.0'?><a>t</a>",
    ]

    @pytest.mark.parametrize("text", CASES)
    @pytest.mark.parametrize("chunk_size", [16, 17, 31, 1024])
    def test_same_tokens(self, text, chunk_size):
        assert file_tokens(text, chunk_size) == list(tokenize(text))

    def test_chunk_boundary_inside_tag_name(self):
        # Force boundaries at every offset of a small document.
        text = "<root><element-with-a-long-name attr='v'>x</element-with-a-long-name></root>"
        expected = list(tokenize(text))
        for chunk_size in range(16, 40):
            assert file_tokens(text, chunk_size) == expected


class TestBoundedMemory:
    def test_window_stays_small(self):
        body = "".join(f"<item><id>{i}</id></item>" for i in range(2000))
        text = f"<list>{body}</list>"
        tokenizer = FileTokenizer(io.StringIO(text), chunk_size=512)
        peak = 0
        for _token in tokenizer:
            peak = max(peak, tokenizer.window_size)
        assert peak < 4 * 512  # window ~ chunk size, not document size

    def test_error_positions_account_for_compaction(self):
        text = "<list>" + "<i/>" * 500 + "<broken"
        tokenizer = FileTokenizer(io.StringIO(text), chunk_size=64)
        with pytest.raises(XMLSyntaxError) as info:
            list(tokenizer)
        assert info.value.position > 1000  # absolute, not window-relative


class TestTokenizeFile:
    def test_from_path(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text("<a><b>hi</b></a>", encoding="utf-8")
        assert list(tokenize_file(target)) == list(tokenize("<a><b>hi</b></a>"))

    def test_from_file_object(self):
        handle = io.StringIO("<a><b/></a>")
        assert list(tokenize_file(handle)) == list(tokenize("<a><b/></a>"))

    def test_engine_runs_from_file(self, tmp_path):
        from repro.engine import GCXEngine

        target = tmp_path / "doc.xml"
        target.write_text(
            "<bib><book><title>T</title></book></bib>", encoding="utf-8"
        )
        result = GCXEngine().run(
            "<o>{for $b in /bib/book return $b/title}</o>",
            tokenize_file(target, chunk_size=8),
        )
        assert result.output == "<o><title>T</title></o>"

    def test_xmark_document_roundtrip(self, tmp_path, xmark_doc_small):
        target = tmp_path / "xmark.xml"
        target.write_text(xmark_doc_small, encoding="utf-8")
        streamed = list(tokenize_file(target, chunk_size=1000))
        in_memory = list(tokenize(xmark_doc_small))
        assert streamed == in_memory
