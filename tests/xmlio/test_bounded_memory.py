"""Peak-memory bounds for the chunked file lexer on large XMark documents.

The satellite requirement of PR 3: the file lexer must feed chunks through
the scanner without ever concatenating the full document, so tokenizing an
arbitrarily large file keeps peak memory proportional to the chunk size
(plus one construct), not to the document size.
"""

from __future__ import annotations

import io
import tracemalloc

import pytest

from repro.xmark import generate_xmark
from repro.xmlio.filelexer import FileTokenizer


@pytest.fixture(scope="module")
def xmark_doc_large() -> str:
    """A few-hundred-KB XMark document (big enough to dwarf any window)."""
    return generate_xmark(0.004, seed=11)


class TestWindowBound:
    def test_window_never_approaches_document_size(self, xmark_doc_large):
        chunk_size = 4096
        tokenizer = FileTokenizer(io.StringIO(xmark_doc_large), chunk_size=chunk_size)
        peak = 0
        for _token in tokenizer:
            if tokenizer.window_size > peak:
                peak = tokenizer.window_size
        assert len(xmark_doc_large) > 20 * chunk_size  # the bound is meaningful
        # One batch span + one in-flight construct + one read-ahead chunk.
        assert peak <= 4 * chunk_size

    def test_window_bound_scales_with_chunk_size_not_document(self, xmark_doc_large):
        peaks = {}
        for chunk_size in (1024, 8192):
            tokenizer = FileTokenizer(
                io.StringIO(xmark_doc_large), chunk_size=chunk_size
            )
            peak = 0
            for _token in tokenizer:
                peak = max(peak, tokenizer.window_size)
            peaks[chunk_size] = peak
        assert peaks[1024] <= 4 * 1024
        assert peaks[8192] <= 4 * 8192

    def test_tracemalloc_peak_stays_bounded(self, xmark_doc_large):
        """Allocator-level check: tokenizing from a file-like object must not
        materialize anything close to the document (tag interning and the
        batch buffer are the only per-run state)."""
        source = io.StringIO(xmark_doc_large)
        chunk_size = 8192
        tracemalloc.start()
        tokenizer = FileTokenizer(source, chunk_size=chunk_size)
        for _token in tokenizer:
            pass
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The StringIO source itself is excluded (created before start()
        # would still be counted, so create generously: assert against half
        # the document).  Peak covers window + batch + interned tags.
        assert peak < max(len(xmark_doc_large) // 2, 20 * chunk_size)

    def test_compaction_discards_consumed_prefix(self):
        body = "".join(f"<i><n>{k}</n></i>" for k in range(5000))
        document = f"<list>{body}</list>"
        tokenizer = FileTokenizer(io.StringIO(document), chunk_size=256)
        count = 0
        for _token in tokenizer:
            count += 1
            assert tokenizer.window_size < 8 * 256
        # 5 tokens per item (<i>, <n>, text, </n>, </i>) plus the root pair.
        assert count == 5000 * 5 + 2
