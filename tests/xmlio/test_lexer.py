"""Tests for the streaming XML tokenizer."""

import pytest

from repro.xmlio import EndTag, StartTag, Text, XMLSyntaxError, tokenize


def toks(text, **kwargs):
    return list(tokenize(text, **kwargs))


class TestBasicTokens:
    def test_single_element(self):
        assert toks("<a></a>") == [StartTag("a"), EndTag("a")]

    def test_bachelor_tag(self):
        assert toks("<a/>") == [StartTag("a"), EndTag("a")]

    def test_nested_elements(self):
        assert toks("<a><b/></a>") == [
            StartTag("a"),
            StartTag("b"),
            EndTag("b"),
            EndTag("a"),
        ]

    def test_text_content(self):
        assert toks("<a>hello</a>") == [StartTag("a"), Text("hello"), EndTag("a")]

    def test_whitespace_only_text_stripped_by_default(self):
        assert toks("<a>  <b/>  </a>") == [
            StartTag("a"),
            StartTag("b"),
            EndTag("b"),
            EndTag("a"),
        ]

    def test_whitespace_kept_on_request(self):
        tokens = toks("<a> <b/></a>", strip_whitespace=False)
        assert Text(" ") in tokens

    def test_tag_names_with_underscore_and_digits(self):
        assert toks("<open_auction1/>")[0] == StartTag("open_auction1")


class TestEntitiesAndEscapes:
    def test_predefined_entities_resolved(self):
        assert toks("<a>a &amp; b &lt; c &gt; d</a>")[1] == Text("a & b < c > d")

    def test_quote_entities(self):
        assert toks("<a>&quot;x&apos;</a>")[1] == Text("\"x'")

    def test_cdata_becomes_text(self):
        assert toks("<a><![CDATA[<raw> & stuff]]></a>")[1] == Text("<raw> & stuff")


class TestAttributeConversion:
    def test_attribute_becomes_leading_subelement(self):
        assert toks('<person id="p0"><name/></person>') == [
            StartTag("person"),
            StartTag("id"),
            Text("p0"),
            EndTag("id"),
            StartTag("person"[:0] + "name"),
            EndTag("name"),
            EndTag("person"),
        ]

    def test_multiple_attributes_keep_order(self):
        tokens = toks('<e a="1" b="2"/>')
        assert tokens == [
            StartTag("e"),
            StartTag("a"),
            Text("1"),
            EndTag("a"),
            StartTag("b"),
            Text("2"),
            EndTag("b"),
            EndTag("e"),
        ]

    def test_empty_attribute_value(self):
        tokens = toks('<e a=""/>')
        assert tokens == [StartTag("e"), StartTag("a"), EndTag("a"), EndTag("e")]

    def test_attribute_entities(self):
        tokens = toks('<e a="x &amp; y"/>')
        assert Text("x & y") in tokens

    def test_conversion_can_be_disabled(self):
        tokens = toks('<e a="1"/>', convert_attributes=False)
        assert tokens == [StartTag("e"), EndTag("e")]

    def test_single_quoted_attribute(self):
        tokens = toks("<e a='v'/>")
        assert Text("v") in tokens


class TestSkippedConstructs:
    def test_comments_skipped(self):
        assert toks("<a><!-- not <b/> here --></a>") == [StartTag("a"), EndTag("a")]

    def test_processing_instruction_skipped(self):
        assert toks("<?xml version='1.0'?><a/>") == [StartTag("a"), EndTag("a")]

    def test_doctype_skipped(self):
        text = "<!DOCTYPE site SYSTEM 'auction.dtd'><a/>"
        assert toks(text) == [StartTag("a"), EndTag("a")]

    def test_doctype_with_internal_subset(self):
        text = "<!DOCTYPE r [<!ELEMENT r (a)*>]><r/>"
        assert toks(text) == [StartTag("r"), EndTag("r")]


class TestWellFormednessErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "<a><b></a></b>",  # mismatched nesting
            "<a>",  # unclosed
            "</a>",  # close without open
            "<a></a><b/>",  # two roots
            "text only",  # no root
            "",  # empty input
            "<a",  # unterminated tag
            "<a b></a>",  # malformed attribute
            "<a b='x></a>",  # unterminated attribute
            "<a>&amp;</a><a/>",  # second root after valid one
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(XMLSyntaxError):
            toks(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            toks("<a><b></a>")
        assert info.value.position >= 0

    def test_text_outside_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            toks("<a/>trailing")


class TestStreamingBehaviour:
    def test_tokenizer_is_lazy(self):
        """Tokens come out one at a time without scanning the tail."""
        from repro.xmlio import XMLTokenizer

        lexer = XMLTokenizer("<a><b/><c/></a>")
        assert lexer.next_token() == StartTag("a")
        assert lexer.next_token() == StartTag("b")
        # The rest of the document is untouched so far; consume it now.
        rest = []
        while (token := lexer.next_token()) is not None:
            rest.append(token)
        assert rest == [EndTag("b"), StartTag("c"), EndTag("c"), EndTag("a")]

    def test_iterator_protocol(self):
        assert list(iter(tokenize("<a/>"))) == [StartTag("a"), EndTag("a")]
