"""Differential tests: chunk-scanning tokenizer vs. the frozen reference.

The optimized tokenizer (:mod:`repro.xmlio.lexer`) must emit a token stream
byte-identical to the pre-optimization implementation preserved in
:mod:`repro.xmlio._reference_lexer`, over the XMark corpus, adversarial
constructs (CDATA spanning chunk boundaries, entities, bachelor tags), and
hypothesis-generated documents — in every flag combination and for the
file-backed chunked variant at many chunk sizes.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmark import generate_xmark
from repro.xmlio._reference_lexer import ReferenceTokenizer, reference_tokenize
from repro.xmlio.filelexer import FileTokenizer
from repro.xmlio.lexer import XMLSyntaxError, tokenize

from tests.properties.strategies import documents

ADVERSARIAL_DOCUMENTS = [
    # CDATA with markup-looking payload (and split by any chunk boundary).
    "<a><![CDATA[<raw> & </stuff> ]]> tail]]></a>",
    "<a><![CDATA[]]></a>",
    "<a>t<![CDATA[   ]]>t</a>",
    # Entities, adjacent and at run edges.
    "<a>&amp;&lt;&gt;&quot;&apos;</a>",
    "<a>x&amp;y</a><!---->",
    "<a b='&amp;&lt;'>&gt;</a>",
    # Bachelor tags, nested and with attributes.
    "<a/>",
    "<a><b/><c/><b/></a>",
    '<a><b x="1"/><b x="2" y="3"/></a>',
    # Attribute conversion order and empty values.
    '<person id="p0" name="n"><child/></person>',
    '<e a=""/>',
    "<e a='v'>text</e>",
    # Skipped constructs interleaved with content.
    "<?xml version='1.0'?><!DOCTYPE r [<!ELEMENT r (a)*>]><r><!-- c --><a/></r>",
    "<a><!-- <not> a <tag> --><b>t</b><?pi data?></a>",
    # Whitespace-only text in every position.
    "<a>  <b> x </b>  </a>",
    # Deep nesting and long tag names.
    "<aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa><b>"
    + "x" * 100
    + "</b></aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa>",
]

FLAG_COMBINATIONS = [
    {"strip_whitespace": True, "convert_attributes": True},
    {"strip_whitespace": False, "convert_attributes": True},
    {"strip_whitespace": True, "convert_attributes": False},
    {"strip_whitespace": False, "convert_attributes": False},
]


class TestAdversarialDifferential:
    @pytest.mark.parametrize("document", ADVERSARIAL_DOCUMENTS)
    @pytest.mark.parametrize(
        "flags",
        FLAG_COMBINATIONS,
        ids=lambda f: f"strip={f['strip_whitespace']},attrs={f['convert_attributes']}",
    )
    def test_identical_streams(self, document, flags):
        assert list(tokenize(document, **flags)) == list(
            reference_tokenize(document, **flags)
        )

    @pytest.mark.parametrize("document", ADVERSARIAL_DOCUMENTS)
    @pytest.mark.parametrize("chunk_size", [16, 17, 23, 64, 1024])
    def test_chunked_identical_streams(self, document, chunk_size):
        chunked = list(FileTokenizer(io.StringIO(document), chunk_size=chunk_size))
        assert chunked == list(reference_tokenize(document))

    def test_cdata_split_at_every_chunk_boundary(self):
        """The CDATA prefix/terminator must survive any chunk split."""
        document = "<a>pre<![CDATA[mid <x> &amp; ]] ]]>post</a>"
        expected = list(reference_tokenize(document))
        for chunk_size in range(16, len(document) + 1):
            streamed = list(
                FileTokenizer(io.StringIO(document), chunk_size=chunk_size)
            )
            assert streamed == expected, f"chunk_size={chunk_size}"


class TestXMarkDifferential:
    def test_xmark_corpus_identical(self, xmark_doc_small):
        assert list(tokenize(xmark_doc_small)) == list(
            reference_tokenize(xmark_doc_small)
        )

    def test_xmark_corpus_identical_unstripped(self, xmark_doc_small):
        flags = {"strip_whitespace": False, "convert_attributes": False}
        assert list(tokenize(xmark_doc_small, **flags)) == list(
            reference_tokenize(xmark_doc_small, **flags)
        )

    def test_larger_xmark_seeds(self):
        for seed in (1, 2, 3):
            document = generate_xmark(0.0005, seed=seed)
            assert list(tokenize(document)) == list(reference_tokenize(document))


class TestErrorDifferential:
    """Both tokenizers agree on what is an error, and where."""

    ERROR_CASES = [
        "<a><b></a></b>",
        "<a>",
        "</a>",
        "<a></a><b></b>",
        "text only",
        "<a></a>trailing",
        "<a><b x=1/></a>",
        "<a><b x='v></b></a>",
        "<>empty</>",
        "<a><![CDATA[unterminated</a>",
        "<a><!-- unterminated</a>",
    ]

    @pytest.mark.parametrize("bad", ERROR_CASES)
    def test_same_error_and_position(self, bad):
        with pytest.raises(XMLSyntaxError) as new_error:
            list(tokenize(bad))
        with pytest.raises(XMLSyntaxError) as reference_error:
            list(reference_tokenize(bad))
        assert str(new_error.value) == str(reference_error.value)

    @pytest.mark.parametrize("bad", ERROR_CASES)
    def test_tokens_before_the_error_match(self, bad):
        def drain(tokenizer):
            tokens = []
            try:
                for token in tokenizer:
                    tokens.append(token)
            except XMLSyntaxError:
                pass
            return tokens

        assert drain(tokenize(bad)) == drain(reference_tokenize(bad))

    @pytest.mark.parametrize("bad", ERROR_CASES)
    @pytest.mark.parametrize("chunk_size", [16, 64])
    def test_file_mode_same_error_and_position(self, bad, chunk_size):
        """Window compaction must not shift reported error offsets."""
        with pytest.raises(XMLSyntaxError) as file_error:
            list(FileTokenizer(io.StringIO(bad), chunk_size=chunk_size))
        with pytest.raises(XMLSyntaxError) as reference_error:
            list(reference_tokenize(bad))
        assert str(file_error.value) == str(reference_error.value)

    def test_file_mode_unclosed_element_offset_after_compaction(self):
        # Large enough that the consumed prefix is compacted away before
        # EOF: the error offset must still be document-absolute.
        bad = "<a>" + "<b>x</b>" * 40  # never closes <a>
        with pytest.raises(XMLSyntaxError) as file_error:
            list(FileTokenizer(io.StringIO(bad), chunk_size=16))
        with pytest.raises(XMLSyntaxError) as reference_error:
            list(reference_tokenize(bad))
        assert str(file_error.value) == str(reference_error.value)
        assert f"offset {len(bad)}" in str(file_error.value)


class TestHypothesisDifferential:
    @settings(max_examples=150, deadline=None)
    @given(document=documents(max_depth=4))
    def test_random_documents_identical(self, document):
        assert list(tokenize(document)) == list(reference_tokenize(document))

    @settings(max_examples=60, deadline=None)
    @given(document=documents(max_depth=3), chunk_size=st.integers(16, 48))
    def test_random_documents_chunked_identical(self, document, chunk_size):
        streamed = list(FileTokenizer(io.StringIO(document), chunk_size=chunk_size))
        assert streamed == list(reference_tokenize(document))

    @settings(max_examples=60, deadline=None)
    @given(
        texts=st.lists(
            st.text(
                alphabet=st.sampled_from(" \t\nxy&<>'\""), min_size=0, max_size=8
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_escaped_text_runs_identical(self, texts):
        from repro.xmlio.tokens import escape_text

        body = "</b><b>".join(escape_text(t) for t in texts)
        document = f"<a><b>{body}</b></a>"
        assert list(tokenize(document)) == list(reference_tokenize(document))


class TestReferenceIsFrozen:
    def test_reference_still_steps_one_token_at_a_time(self):
        """Guard against 'optimizing' the oracle: it must not batch."""
        tokenizer = ReferenceTokenizer("<a><b/></a>")
        assert not hasattr(tokenizer, "_out")
        first = tokenizer.next_token()
        assert str(first) == "<a>"
