"""Bytes-domain lexer guarantees: UTF-8 boundaries, inputs, lazy decode.

The rewrite moved the scan loop from ``str`` to ``bytes``, which creates
three new ways to be wrong that the str lexer could not exhibit:

* a multi-byte code point can straddle a *chunk* boundary (file mode) or
  a *batch* boundary (the byte-budget scan window) and must never be
  split mid-sequence;
* the public entry points must keep accepting ``str`` (and now also
  ``bytes``/``bytearray``/``memoryview``) with identical token streams;
* text decoding is deferred until ``.content`` is read, so skipped
  subtrees must provably never pay for a UTF-8 decode or entity
  unescape (:func:`repro.xmlio.tokens.text_decode_count`).

Every differential assertion here compares against the frozen
char-stepping oracle in :mod:`repro.xmlio._reference_lexer`.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import GCXEngine
from repro.xmlio import text_decode_count
from repro.xmlio._reference_lexer import reference_tokenize
from repro.xmlio.filelexer import FileTokenizer
from repro.xmlio.lexer import XMLSyntaxError, XMLTokenizer, tokenize
from repro.xmlio.tokens import Text

# Code points of every UTF-8 sequence length: 1 (ASCII), 2 (é), 3 (日,
# and the em-dash that lives inside attribute values), 4 (😀).
MULTIBYTE_DOCUMENTS = [
    "<a>héllo wörld</a>",
    "<a>日本語のテキスト</a>",
    "<a>mixed é 日 😀 tail</a>",
    "<a käse='blå'>smörgåsbord</a>",
    "<a><b>😀😀😀</b><c>—dash—</c></a>",
    "<é>中身</é>",
    "<a>&amp;é&lt;日&gt;😀</a>",
    "<a><![CDATA[é & 日 <raw> 😀]]></a>",
    "<a><!-- é日😀 --><b x='日'/></a>",
]


def multibyte_chunk_sizes(document: str) -> range:
    """Every chunk size small enough to split some multi-byte sequence."""
    return range(1, min(len(document.encode("utf-8")), 40))


class TestMultiByteDifferential:
    @pytest.mark.parametrize("document", MULTIBYTE_DOCUMENTS)
    def test_in_memory_identical(self, document):
        assert list(tokenize(document)) == list(reference_tokenize(document))

    @pytest.mark.parametrize("document", MULTIBYTE_DOCUMENTS)
    def test_every_chunk_boundary(self, document):
        """File mode must reassemble code points split across reads.

        ``io.BytesIO`` feeds raw UTF-8, so a 1-byte chunk size places a
        boundary inside *every* multi-byte sequence in the document.
        """
        expected = list(reference_tokenize(document))
        raw = document.encode("utf-8")
        for chunk_size in multibyte_chunk_sizes(document):
            streamed = list(FileTokenizer(io.BytesIO(raw), chunk_size=chunk_size))
            assert streamed == expected, f"chunk_size={chunk_size}"

    @pytest.mark.parametrize("document", MULTIBYTE_DOCUMENTS)
    def test_every_batch_boundary(self, document):
        """The byte-budget batch window must not truncate a code point.

        Shrinking ``_batch_bytes`` to 1 forces the scan to stop and
        resume between every pair of bytes, the worst case the 64 KiB
        production budget can only hit at multiples of the window.
        """
        expected = list(reference_tokenize(document))
        for budget in (1, 2, 3, 7):
            tokenizer = XMLTokenizer(document)
            tokenizer._batch_bytes = budget
            assert list(tokenizer) == expected, f"batch_bytes={budget}"

    def test_str_chunks_re_encode_safely(self):
        """A text-mode file yields str chunks; per-chunk encode must
        concatenate to the same byte stream as a whole-document encode."""
        document = "<a>" + "é日😀" * 50 + "</a>"
        for chunk_size in (1, 3, 5, 16):
            streamed = list(
                FileTokenizer(io.StringIO(document), chunk_size=chunk_size)
            )
            assert streamed == list(reference_tokenize(document))


class TestInputTypes:
    """``tokenize`` accepts str and every bytes-like spelling identically."""

    DOCUMENT = "<a x='é'>日本 &amp; 😀<b/></a>"

    def test_all_spellings_agree(self):
        expected = list(reference_tokenize(self.DOCUMENT))
        raw = self.DOCUMENT.encode("utf-8")
        for source in (self.DOCUMENT, raw, bytearray(raw), memoryview(raw)):
            assert list(tokenize(source)) == expected, type(source).__name__

    def test_engine_accepts_bytes_documents(self):
        engine = GCXEngine()
        query = "<out>{ for $b in /a/b return $b }</out>"
        document = "<a><b>é日😀</b></a>"
        from_str = engine.run(query, document).output
        from_bytes = engine.run(query, document.encode("utf-8")).output
        assert from_str == from_bytes == "<out><b>é日😀</b></out>"


class TestHypothesisMultiByte:
    @settings(max_examples=100, deadline=None)
    @given(
        text=st.text(
            alphabet=st.sampled_from("aé日😀 ßԱ中"),
            min_size=0,
            max_size=12,
        ),
        chunk_size=st.integers(1, 24),
    )
    def test_random_multibyte_text_chunked(self, text, chunk_size):
        from repro.xmlio.tokens import escape_text

        document = f"<a><b>{escape_text(text)}</b></a>"
        expected = list(reference_tokenize(document))
        raw = document.encode("utf-8")
        assert list(tokenize(raw)) == expected
        streamed = list(FileTokenizer(io.BytesIO(raw), chunk_size=chunk_size))
        assert streamed == expected

    @settings(max_examples=60, deadline=None)
    @given(
        value=st.text(alphabet=st.sampled_from("xé日😀"), min_size=0, max_size=8),
        budget=st.integers(1, 16),
    )
    def test_random_multibyte_attributes_batched(self, value, budget):
        # The alphabet has no quotes or markup, so no escaping needed.
        document = f'<a k="{value}"><c/></a>'
        tokenizer = XMLTokenizer(document)
        tokenizer._batch_bytes = budget
        assert list(tokenizer) == list(reference_tokenize(document))


class TestErrorLocations:
    """Byte-absolute offsets plus lazily computed 1-based line/column."""

    def test_offset_counts_bytes_not_characters(self):
        # "é日😀" is 4 characters but 9 UTF-8 bytes; the unclosed-tag
        # error must report the *byte* offset (documented contract).
        bad = "<a>é日😀"
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(tokenize(bad))
        assert excinfo.value.position == len(bad.encode("utf-8"))

    def test_line_and_column_in_memory(self):
        bad = "<a>\n  <b>\n</a>"
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(tokenize(bad))
        error = excinfo.value
        # The mismatched </a> starts on line 3, column 1.
        assert error.position == bad.index("</a>")
        assert error.line == 3
        assert error.column == 1

    def test_column_counts_bytes_on_the_error_line(self):
        bad = "<a>\né<b></a></b>"
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(tokenize(bad))
        error = excinfo.value
        assert error.line == 2
        # "é" is 2 bytes, so the </a> at character column 5 reports
        # byte column 6 — consistent with the byte-offset contract.
        assert error.column == bad.encode("utf-8").index(b"</a>") - bad.index("\n")

    def test_location_survives_window_compaction(self):
        """File mode discards consumed prefixes; line numbers must not."""
        bad = "<a>\n" + "<b>x</b>\n" * 40 + "</wrong>"
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(FileTokenizer(io.StringIO(bad), chunk_size=16))
        error = excinfo.value
        assert error.position == bad.index("</wrong>")
        assert error.line == 42
        assert error.column == 1

    def test_first_line_column_is_one_based(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(tokenize("</a>"))
        error = excinfo.value
        assert (error.line, error.column) == (1, 1)

    def test_reference_errors_have_no_location_window(self):
        """The frozen oracle never attaches a window: location is None,
        not a crash — the lazy computation must tolerate its absence."""
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(reference_tokenize("</a>"))
        assert excinfo.value.line is None
        assert excinfo.value.column is None

    def test_errors_pickle_round_trip(self):
        import pickle

        with pytest.raises(XMLSyntaxError) as excinfo:
            list(tokenize("<a>\n</b>"))
        excinfo.value.ensure_location()
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.position == excinfo.value.position
        assert str(clone) == str(excinfo.value)


class TestDecodeOnDemand:
    """Skipped-subtree text is provably never decoded (acceptance
    criterion: the decode-path counter stays flat for a document whose
    projection prunes a large subtree)."""

    def test_pruned_subtree_never_decodes(self):
        # /site/keep matches only childless elements; everything under
        # <skip> — thousands of text nodes and attribute values — is
        # pruned by the preprojector and must never reach ``.content``.
        document = (
            "<site><keep/><keep/><skip>"
            + "<item id='é日'>päyload tëxt 😀</item>" * 500
            + "</skip></site>"
        ).encode("utf-8")
        engine = GCXEngine()
        before = text_decode_count()
        result = engine.run("<out>{ for $k in /site/keep return $k }</out>", document)
        assert result.output == "<out><keep/><keep/></out>"
        assert text_decode_count() == before, (
            "projection pruned every text node, yet the lexer decoded some"
        )

    def test_kept_text_decodes_exactly_once(self):
        document = "<site><keep>é😀</keep><skip>dropped</skip></site>".encode()
        engine = GCXEngine()
        before = text_decode_count()
        result = engine.run("<out>{ for $k in /site/keep return $k }</out>", document)
        assert result.output == "<out><keep>é😀</keep></out>"
        # One decode for the kept text node; the skipped one stays raw.
        assert text_decode_count() == before + 1

    def test_lazy_text_equality_defers_until_compared(self):
        tokens = [t for t in tokenize("<a>x&amp;y</a>") if isinstance(t, Text)]
        assert tokens == [Text("x&y")]
