"""Per-standing-query schemas over the wire: the register frame's DTD.

A ``register`` frame may carry a ``schema`` field (DTD text); the server
compiles that standing query with the schema-constraint pass.  The cache
key includes a schema fingerprint — the same query with and without a
schema is two distinct pools — and a bad DTD is a non-fatal
``query-error``, exactly like a query that does not compile.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.serve.testing import ServerFixture
from repro.xmark.dtd import render_dtd
from repro.xmark.queries import XMARK_QUERIES

GOLDENS = Path(__file__).parent.parent / "engine" / "goldens"


@pytest.fixture(scope="module")
def document() -> str:
    return (GOLDENS / "document.xml").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def fixture():
    with ServerFixture(eval_workers=2, request_timeout=60.0) as fixture:
        yield fixture


class TestRegisterWithSchema:
    def test_output_is_byte_identical_to_schema_off(self, fixture, document):
        query = XMARK_QUERIES["Q15"].adapted
        with fixture.client(timeout=60.0) as client:
            assert client.register("plain", query)["type"] == "registered"
            assert (
                client.register("typed", query, schema=render_dtd())["type"]
                == "registered"
            )
            plain_frags, plain_done = client.eval_collect("plain", document)
            typed_frags, typed_done = client.eval_collect("typed", document)
            assert plain_done["type"] == "done"
            assert typed_done["type"] == "done"
            assert "".join(typed_frags) == "".join(plain_frags)
            expected = (GOLDENS / "Q15.expected").read_text(encoding="utf-8")
            assert "".join(typed_frags) == expected
            # The certified pool reports a zero high watermark.
            assert typed_done["hwm_bytes"] == 0
            assert plain_done["hwm_bytes"] > 0
        fixture.assert_clean()

    def test_schema_gets_its_own_pool(self, fixture):
        query = XMARK_QUERIES["Q1"].adapted
        with fixture.client() as client:
            before = fixture.server.standing_queries
            first = client.register("a", query)
            second = client.register("b", query, schema=render_dtd())
            third = client.register("c", query, schema=render_dtd())
            assert fixture.server.standing_queries >= before + 1
            # Same query + same schema hits the cache; differing schema
            # presence does not.
            assert third["cached"] is True
            assert not (first["cached"] and second["cached"])

    def test_bad_dtd_is_a_nonfatal_query_error(self, fixture):
        with fixture.client() as client:
            reply = client.register(
                "bad", XMARK_QUERIES["Q1"].adapted, schema="<!ELEMENT oops"
            )
            assert reply["type"] == "error"
            assert reply["code"] == "query-error"
            assert reply["fatal"] is False
            # The connection survives: a good register still works.
            good = client.register("ok", XMARK_QUERIES["Q1"].adapted)
            assert good["type"] == "registered"

    def test_nonstring_schema_is_a_bad_field(self, fixture):
        with fixture.client() as client:
            client.send_frame(
                {
                    "op": "register",
                    "id": "x",
                    "query": XMARK_QUERIES["Q1"].adapted,
                    "schema": 7,
                }
            )
            reply = client.recv_frame()
            assert reply["type"] == "error"
            assert reply["code"] == "bad-field"
            assert reply["fatal"] is False
