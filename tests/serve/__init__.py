"""Tests for the serve layer."""
