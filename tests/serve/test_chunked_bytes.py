"""Conformance: chunked uploads equal inline evaluation byte-for-byte.

The server UTF-8-encodes each ``chunk`` payload once at receipt and joins
the byte parts at ``end`` — it never concatenates in the str domain.  A
JSON string boundary can never split a code point, so any client-side
chunking of the document (including splits adjacent to multi-byte
characters) must produce exactly the fragments and statistics of a
one-shot inline ``eval`` of the same document.
"""

from __future__ import annotations

import pytest

from repro.serve.testing import ServerFixture

QUERY = "<out>{ for $x in /a/b return <hit>{ $x/c }</hit> }</out>"

# Multi-byte text (2-, 3-, and 4-byte sequences) in both element content
# and attribute values, so chunk splits land next to them.
DOCUMENT = (
    "<a>"
    + "".join(f"<b id='é{i}'><c>日本語 😀 value-{i}</c></b>" for i in range(12))
    + "</a>"
)


def split_every(text: str, size: int) -> list[str]:
    return [text[start : start + size] for start in range(0, len(text), size)]


@pytest.fixture(scope="module")
def fixture():
    with ServerFixture(eval_workers=2) as fixture:
        yield fixture


@pytest.fixture(scope="module")
def inline_pass(fixture):
    """The reference transcript: one inline eval of DOCUMENT."""
    with fixture.client() as client:
        assert client.register("q", QUERY)["type"] == "registered"
        fragments, done = client.eval_collect("q", DOCUMENT)
    assert done["type"] == "done", done
    return fragments, done


class TestChunkedEqualsInline:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64])
    def test_every_split_granularity(self, fixture, inline_pass, chunk_size):
        """``chunk_size`` in *characters*: size 1 places a frame boundary
        between every pair of code points, the densest split a JSON
        transport can express."""
        inline_fragments, inline_done = inline_pass
        with fixture.client() as client:
            client.register("q", QUERY)
            client.upload("q", split_every(DOCUMENT, chunk_size))
            fragments, done = client.collect_pass()
        assert done["type"] == "done", done
        assert fragments == inline_fragments
        # Every deterministic statistic matches too (elapsed_ms varies):
        # the pass read the same bytes through the same buffers.
        for field in ("fragments", "hwm_nodes", "hwm_bytes", "tokens_read"):
            assert done[field] == inline_done[field], field

    def test_single_chunk_equals_inline(self, fixture, inline_pass):
        inline_fragments, _ = inline_pass
        with fixture.client() as client:
            client.register("q", QUERY)
            client.upload("q", [DOCUMENT])
            fragments, done = client.collect_pass()
        assert done["type"] == "done", done
        assert fragments == inline_fragments

    def test_empty_chunks_are_harmless(self, fixture, inline_pass):
        inline_fragments, _ = inline_pass
        parts = split_every(DOCUMENT, 16)
        padded = [""] + [p for part in parts for p in (part, "")]
        with fixture.client() as client:
            client.register("q", QUERY)
            client.upload("q", padded)
            fragments, done = client.collect_pass()
        assert done["type"] == "done", done
        assert fragments == inline_fragments

    def test_document_size_limit_counts_encoded_bytes(self):
        """The chunked limit is measured on UTF-8 bytes, exactly like the
        inline limit — '😀' * 100 is 100 characters but 400 bytes."""
        payload = "😀" * 100
        with ServerFixture(max_document_bytes=300) as fixture:
            with fixture.client() as client:
                client.register("q", QUERY)
                client.send_frame({"op": "begin", "id": "q"})
                client.send_frame({"op": "chunk", "data": payload})
                reply = client.recv_frame()
            assert reply["type"] == "error"
            assert reply["code"] == "too-large"
            fixture.assert_clean()
