"""Fault injection: every abort path releases its checkout exactly once.

Each test injects one fault from the inventory — hard disconnects (RST)
mid-stream and mid-upload, malformed XML mid-document, a query that does
not compile, oversized documents (inline and chunked), truncated and
over-limit frames, a slow-loris writer, a request timeout, and a drain
with a pass in flight — and then asserts the same postcondition through
:meth:`ServerFixture.assert_clean`: the standing queries' pools report
zero outstanding checkouts and zero active runs (the RunOwner invariant),
and wherever the fault is non-fatal, the connection is still serving.
"""

from __future__ import annotations

import time

import pytest

from repro.serve.testing import ServerFixture

QUERY = "<out>{ for $x in /a/b return <hit>{ $x/c }</hit> }</out>"


def make_document(matches: int) -> str:
    """A document with ``matches`` hits -> ~4x that many result frames."""
    body = "".join(f"<b><c>v{i}</c></b>" for i in range(matches))
    return f"<a>{body}</a>"


@pytest.fixture(scope="module")
def fixture():
    with ServerFixture(eval_workers=2, bridge_depth=4) as fixture:
        yield fixture


class TestDisconnectFaults:
    def test_client_disconnect_mid_result_stream(self, fixture):
        """An RST while fragments are in flight kills the pass, not the
        server; the abandoned run's checkout is discarded, not leaked."""
        with fixture.client() as client:
            client.register("q", QUERY)
            client.send_frame(
                {"op": "eval", "id": "q", "doc": make_document(2_000)}
            )
            first = client.recv_frame()
            assert first["type"] == "result"  # the pass is mid-stream
            client.faults.abort()
        fixture.assert_clean()
        with fixture.client() as client:  # the server took no damage
            assert client.ping() == {"type": "pong"}

    def test_client_disconnect_mid_chunked_upload(self, fixture):
        with fixture.client() as client:
            client.register("q", QUERY)
            client.send_frame({"op": "begin", "id": "q"})
            client.send_frame({"op": "chunk", "data": "<a><b><c>1"})
            client.faults.abort()
        fixture.assert_clean()

    def test_truncated_frame_then_eof(self, fixture):
        """A frame cut off mid-line (EOF, no newline) closes quietly."""
        with fixture.client() as client:
            client.register("q", QUERY)
            client.faults.send_truncated(
                b'{"op": "eval", "id": "q", "doc": "<a>', keep=20
            )
            assert client.recv_frame() is None  # server closed, no reply
        fixture.assert_clean()


class TestBadInputFaults:
    def test_malformed_xml_mid_document_is_survivable(self, fixture):
        with fixture.client() as client:
            client.register("q", QUERY)
            fragments, final = client.eval_collect(
                "q", "<a><b><c>1</c></b><b><c>2</c>"
            )
            assert final["type"] == "error"
            assert final["code"] == "document-error"
            assert final["fatal"] is False
            # The connection survives and the next pass is correct.
            assert client.ping() == {"type": "pong"}
            fragments, final = client.eval_collect("q", make_document(2))
            assert final["type"] == "done"
            assert "".join(fragments) == (
                "<out><hit><c>v0</c></hit><hit><c>v1</c></hit></out>"
            )
        fixture.assert_clean()

    def test_query_compile_error_is_survivable(self, fixture):
        with fixture.client() as client:
            client.send_frame(
                {"op": "register", "id": "bad", "query": "for $x in ((("}
            )
            reply = client.recv_frame()
            assert reply["type"] == "error"
            assert reply["code"] == "query-error"
            assert reply["fatal"] is False
            # A failed registration leaves no standing query behind.
            client.send_frame({"op": "eval", "id": "bad", "doc": "<a/>"})
            assert client.recv_frame()["code"] == "unknown-query"
            assert client.register("good", QUERY)["type"] == "registered"
        fixture.assert_clean()

    def test_garbage_frame_is_survivable(self, fixture):
        with fixture.client() as client:
            client.send_raw(b"this is not json\n")
            reply = client.recv_frame()
            assert reply["type"] == "error"
            assert reply["code"] == "bad-frame"
            assert client.ping() == {"type": "pong"}
        fixture.assert_clean()


class TestSizeLimits:
    def test_oversized_inline_document_rejected(self):
        with ServerFixture(max_document_bytes=2_000) as fixture:
            with fixture.client() as client:
                client.register("q", QUERY)
                client.send_frame(
                    {"op": "eval", "id": "q", "doc": make_document(500)}
                )
                reply = client.recv_frame()
                assert reply["type"] == "error"
                assert reply["code"] == "too-large"
                assert reply["fatal"] is False
                # Small documents still go through afterwards.
                _fragments, final = client.eval_collect("q", make_document(1))
                assert final["type"] == "done"
            fixture.assert_clean()

    def test_oversized_chunked_upload_rejected_mid_stream(self):
        """The limit trips at the chunk that crosses it, not at end."""
        with ServerFixture(max_document_bytes=200) as fixture:
            with fixture.client() as client:
                client.register("q", QUERY)
                client.send_frame({"op": "begin", "id": "q"})
                chunk = "<b><c>x</c></b>" * 10  # 150 B
                client.send_frame({"op": "chunk", "data": chunk})
                client.send_frame({"op": "chunk", "data": chunk})  # crosses
                reply = client.recv_frame()
                assert reply["code"] == "too-large"
                # The upload state was reset: 'end' is now out of place.
                client.send_frame({"op": "end"})
                assert client.recv_frame()["code"] == "protocol-state"
                assert client.ping() == {"type": "pong"}
            fixture.assert_clean()

    def test_over_limit_frame_is_fatal(self):
        """Blowing the line limit loses framing for good: error + close."""
        with ServerFixture(max_frame_bytes=1_024) as fixture:
            with fixture.client() as client:
                client.send_raw(b'{"op": "ping", "pad": "' + b"x" * 4_096)
                reply = client.recv_frame()
                assert reply["type"] == "error"
                assert reply["code"] == "frame-too-large"
                assert reply["fatal"] is True
                assert client.recv_frame() is None  # server closed
            fixture.assert_clean()


class TestSlowClients:
    def test_slow_loris_completes_without_idle_timeout(self, fixture):
        with fixture.client() as client:
            client.faults.send_slow(b'{"op": "ping"}\n', delay=0.01)
            assert client.recv_frame() == {"type": "pong"}
        fixture.assert_clean()

    def test_idle_timeout_cuts_the_dribbler_not_the_neighbour(self):
        with ServerFixture(idle_timeout=0.3) as fixture:
            with fixture.client() as loris, fixture.client() as honest:
                honest.register("q", QUERY)
                # > 0.3 s to finish the line at 1 B / 25 ms.
                loris.faults.send_slow(
                    b'{"op": "ping"}\n'[:14], chunk_size=1, delay=0.025
                )
                reply = loris.recv_frame()
                assert reply["type"] == "error"
                assert reply["code"] == "idle-timeout"
                assert loris.recv_frame() is None
                # The honest neighbour was never disturbed.
                _fragments, final = honest.eval_collect("q", make_document(2))
                assert final["type"] == "done"
            fixture.assert_clean()

    def test_request_timeout_aborts_the_pass_and_survives(self):
        """A zero budget times out deterministically before any output;
        the cancelled pass discards its checkout through the guard."""
        with ServerFixture(request_timeout=0.0) as fixture:
            with fixture.client() as client:
                client.register("q", QUERY)
                client.send_frame(
                    {"op": "eval", "id": "q", "doc": make_document(50)}
                )
                reply = client.recv_frame()
                assert reply["type"] == "error"
                assert reply["code"] == "timeout"
                assert reply["fatal"] is False
                assert client.ping() == {"type": "pong"}
            fixture.assert_clean()


class TestDrain:
    def test_drain_with_pass_in_flight_finishes_it(self):
        fixture = ServerFixture(eval_workers=2, bridge_depth=4)
        fixture.start()
        try:
            with fixture.client() as client:
                client.register("q", QUERY)
                client.send_frame(
                    {"op": "eval", "id": "q", "doc": make_document(2_000)}
                )
                assert client.recv_frame()["type"] == "result"  # in flight
                shutdown = fixture.submit(fixture.server.shutdown())
                fragments, final = client.collect_pass()
                assert final["type"] == "done"  # the pass was NOT cut off
                # +1: the first result frame was read before collect_pass.
                assert len(fragments) + 1 == final["fragments"]
                # After the pass, the drain says goodbye instead of
                # reading further frames.
                assert client.recv_frame() == {
                    "type": "bye",
                    "reason": "draining",
                }
                assert client.recv_frame() is None
                shutdown.result(timeout=20.0)
            assert fixture.outstanding_checkouts() == 0
            assert fixture.active_runs() == 0
            # Every standing pool was closed with SessionPool.close().
            for pool in fixture.server.pools():
                assert pool._closed
        finally:
            fixture.stop()

    def test_drain_wakes_idle_connections(self):
        fixture = ServerFixture()
        fixture.start()
        try:
            with fixture.client() as client:
                assert client.ping() == {"type": "pong"}
                shutdown = fixture.submit(fixture.server.shutdown())
                # No frame sent: the drain event alone must wake the
                # blocked read and say goodbye.
                assert client.recv_frame() == {
                    "type": "bye",
                    "reason": "draining",
                }
                assert client.recv_frame() is None
                shutdown.result(timeout=20.0)
        finally:
            fixture.stop()


class TestCheckoutAccountingUnderFaultStorm:
    def test_repeated_mixed_faults_never_accumulate_checkouts(self, fixture):
        """A storm of interleaved good passes and faults ends clean."""
        for round_number in range(5):
            with fixture.client() as client:
                client.register("q", QUERY)
                _fragments, final = client.eval_collect("q", make_document(3))
                assert final["type"] == "done"
                _fragments, final = client.eval_collect("q", "<a><b><c>")
                assert final["code"] == "document-error"
                client.send_frame(
                    {"op": "eval", "id": "q", "doc": make_document(500)}
                )
                assert client.recv_frame()["type"] == "result"
                client.faults.abort()
            fixture.assert_clean()
        stats = fixture.server.stats
        assert stats.docs_failed >= 5
