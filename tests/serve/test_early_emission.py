"""The serving face of earliness: first bytes leave before end-of-document.

Every ``result`` frame carries an ``at`` field — the input tokens the
run had consumed when the fragment was emitted (the emission-order
oracle; see :meth:`repro.serve.testing.ScriptClient.collect_pass`).  For
a standing query with a streamable output site, the first frame's offset
must be strictly below the pass's final ``tokens_read``: output left the
server while the document was still arriving.
"""

from __future__ import annotations

from repro.serve.testing import ServerFixture

#: A streamable query (open watermark on the bare ``$x`` output site).
QUERY = "<out>{ for $x in /r/a return $x }</out>"


def wide_document(items: int = 200) -> str:
    return "<r>" + "<a><b>t</b></a>" * items + "</r>"


class TestEarlyEmission:
    def test_first_frame_arrives_before_end_of_document(self):
        with ServerFixture() as fixture:
            with fixture.client() as client:
                assert client.register("q", QUERY)["type"] == "registered"
                fragments, done = client.eval_collect("q", wide_document())
                assert done["type"] == "done", done
                assert fragments
                offsets = client.frame_offsets
                assert len(offsets) == len(fragments)
                assert all(isinstance(at, int) for at in offsets)
                # The oracle: the first byte left strictly before EOF.
                assert offsets[0] < done["tokens_read"]
                # Offsets ride the input clock, so they never decrease.
                assert offsets == sorted(offsets)
                client.quit()
            fixture.assert_clean()

    def test_matched_content_arrives_before_end_of_document(self):
        """Stronger than first-byte: a frame containing actual matched
        subtree content (not just the constructor's open tag) left before
        the document finished."""
        with ServerFixture() as fixture:
            with fixture.client() as client:
                client.register("q", QUERY)
                fragments, done = client.eval_collect("q", wide_document())
                assert done["type"] == "done", done
                content_offsets = [
                    at
                    for fragment, at in zip(fragments, client.frame_offsets)
                    if "<b>" in fragment
                ]
                assert content_offsets
                assert content_offsets[0] < done["tokens_read"]
                client.quit()
            fixture.assert_clean()

    def test_chunked_upload_emits_between_chunks(self):
        """The same oracle over the begin/chunk*/end path: fragments for
        early items are emitted while later chunks are still uploading."""
        document = wide_document()
        step = 64
        chunks = [
            document[start : start + step]
            for start in range(0, len(document), step)
        ]
        with ServerFixture() as fixture:
            with fixture.client() as client:
                client.register("q", QUERY)
                client.upload("q", chunks)
                fragments, done = client.collect_pass()
                assert done["type"] == "done", done
                assert fragments
                assert client.frame_offsets[0] < done["tokens_read"]
                client.quit()
            fixture.assert_clean()
