"""Unit level: frame grammar, error vocabulary, histogram, server stats."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    CLIENT_OPS,
    E_BAD_FIELD,
    E_BAD_FRAME,
    E_UNKNOWN_OP,
    ERROR_CODES,
    ProtocolError,
    decode_client_frame,
    encode_frame,
)
from repro.serve.server import normalize_query_key
from repro.serve.stats import LatencyHistogram, ServerStats


class TestEncodeFrame:
    def test_one_line_of_compact_json(self):
        data = encode_frame({"type": "result", "fragment": "<a>x</a>"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data) == {"type": "result", "fragment": "<a>x</a>"}

    def test_newlines_in_payload_stay_escaped(self):
        """Line framing survives any fragment content: JSON escapes \\n."""
        data = encode_frame({"fragment": "line1\nline2"})
        assert data.count(b"\n") == 1  # only the terminator
        assert json.loads(data)["fragment"] == "line1\nline2"

    def test_non_ascii_payload_is_ascii_on_the_wire(self):
        data = encode_frame({"fragment": "privée"})
        assert max(data) < 0x80
        assert json.loads(data)["fragment"] == "privée"


class TestDecodeClientFrame:
    def test_valid_ops_round_trip(self):
        for op, required in CLIENT_OPS.items():
            frame = {"op": op, **{field: "x" for field in required}}
            assert decode_client_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize(
        "line,code",
        [
            (b"not json\n", E_BAD_FRAME),
            (b"[1,2]\n", E_BAD_FRAME),
            (b'"just a string"\n', E_BAD_FRAME),
            (b"{}\n", E_BAD_FIELD),
            (b'{"op": 7}\n', E_BAD_FIELD),
            (b'{"op": "warp"}\n', E_UNKNOWN_OP),
            (b'{"op": "register", "id": "q"}\n', E_BAD_FIELD),
            (b'{"op": "eval", "id": "q", "doc": 42}\n', E_BAD_FIELD),
        ],
    )
    def test_violations_raise_nonfatal_protocol_errors(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            decode_client_frame(line)
        assert excinfo.value.code == code
        assert not excinfo.value.fatal  # line framing intact -> recoverable

    def test_error_frame_shape(self):
        error = ProtocolError(E_BAD_FRAME, "boom", fatal=True)
        frame = error.frame()
        assert frame == {
            "type": "error",
            "code": E_BAD_FRAME,
            "message": "boom",
            "fatal": True,
        }
        assert frame["code"] in ERROR_CODES


class TestNormalizeQueryKey:
    def test_layout_insensitive(self):
        a = "<r>{ for $x in /a/b\n  return $x }</r>"
        b = "<r>{ for $x in /a/b return $x }</r>"
        assert normalize_query_key(a) == normalize_query_key(b)

    def test_semantics_sensitive(self):
        assert normalize_query_key("<r>{/a/b}</r>") != normalize_query_key(
            "<r>{/a/c}</r>"
        )


class TestLatencyHistogram:
    def test_empty_histogram_answers_zero(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.99) == 0.0
        assert histogram.mean_ms == 0.0

    def test_percentiles_are_bucket_upper_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe_ms(0.9)  # -> the 1.0 ms bucket
        histogram.observe_ms(400.0)  # -> the 500 ms bucket
        assert histogram.percentile(0.50) == 1.0
        assert histogram.percentile(1.0) == 500.0
        assert histogram.count == 100

    def test_overflow_bucket_reports_the_observed_max(self):
        histogram = LatencyHistogram()
        histogram.observe_ms(123_456.0)
        assert histogram.percentile(0.99) == 123_456.0
        assert histogram.max_ms == 123_456.0

    def test_fraction_validation(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_snapshot_fields(self):
        histogram = LatencyHistogram()
        histogram.observe_ms(3.0)
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "mean_ms", "p50_ms", "p99_ms", "max_ms"}
        assert snapshot["count"] == 1.0
        assert snapshot["mean_ms"] == 3.0


class TestServerStats:
    def test_connection_peak_tracking(self):
        stats = ServerStats()
        for _ in range(3):
            stats.connection_opened()
        stats.connection_closed()
        stats.connection_opened()
        assert stats.connections_active == 3
        assert stats.connections_total == 4
        assert stats.connections_peak == 3

    def test_snapshot_is_json_serializable_and_complete(self):
        stats = ServerStats()
        stats.frame_in(10)
        stats.frame_out(20)
        stats.pass_finished(ok=True)
        stats.pass_finished(ok=False)
        stats.query_registered(cached=False)
        stats.query_registered(cached=True)
        stats.observe_ttfb(0.004)
        snapshot = json.loads(json.dumps(stats.snapshot()))
        assert snapshot["frames"] == {"in": 1, "out": 1}
        assert snapshot["bytes"] == {"in": 10, "out": 20}
        assert snapshot["docs"] == {"ok": 1, "failed": 1}
        assert snapshot["queries"] == {"compiled": 1, "cache_hits": 1}
        assert snapshot["ttfb"]["count"] == 1.0

    def test_summary_mentions_the_load_bearing_numbers(self):
        stats = ServerStats()
        stats.connection_opened()
        stats.pass_finished(ok=True)
        summary = stats.summary()
        assert "1 docs served" in summary
        assert "p99" in summary
