"""Protocol conformance: scripted sessions against the golden corpus.

The oracle is ``tests/engine/goldens/``: the committed XMark document and
the expected output of every adapted XMark query over it.  Served
results must be *byte-identical* to the goldens — the fragments of one
pass concatenate to exactly the engine's serialized output — and frame
ordering must hold per pass (``seq`` strictly 1..n, ``done`` carrying n)
even with 16 clients interleaving on one server (the acceptance
criterion).  The tail of the file covers the session ops (register
caching, unregister, ping/stats/quit) and the ``gcx serve`` entry points
including a real SIGTERM drain against a subprocess.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.xmark.queries import XMARK_QUERIES

from repro.serve.testing import ServerFixture

GOLDENS = Path(__file__).parent.parent / "engine" / "goldens"
QUERY_NAMES = sorted(XMARK_QUERIES)


@pytest.fixture(scope="module")
def document() -> str:
    return (GOLDENS / "document.xml").read_text(encoding="utf-8")


def expected(name: str) -> str:
    return (GOLDENS / f"{name}.expected").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def fixture():
    with ServerFixture(eval_workers=4, request_timeout=60.0) as fixture:
        yield fixture


class TestGoldenReplay:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_served_output_is_byte_identical_to_golden(
        self, fixture, document, name
    ):
        with fixture.client(timeout=60.0) as client:
            assert client.register(name, XMARK_QUERIES[name].adapted)[
                "type"
            ] == "registered"
            fragments, final = client.eval_collect(name, document)
            assert final["type"] == "done", final
            assert "".join(fragments) == expected(name)
            assert final["fragments"] == len(fragments)
        fixture.assert_clean()

    def test_result_frames_are_sequenced_per_pass(self, fixture, document):
        with fixture.client(timeout=60.0) as client:
            client.register("q", XMARK_QUERIES["Q1"].adapted)
            for _pass in range(2):  # sequence restarts at 1 every pass
                client.send_frame(
                    {"op": "eval", "id": "q", "doc": document}
                )
                seqs = []
                while True:
                    frame = client.recv_frame()
                    if frame["type"] == "done":
                        assert frame["fragments"] == len(seqs)
                        break
                    assert frame["type"] == "result"
                    assert frame["id"] == "q"
                    seqs.append(frame["seq"])
                assert seqs == list(range(1, len(seqs) + 1))
        fixture.assert_clean()

    def test_chunked_upload_matches_inline_eval(self, fixture, document):
        with fixture.client(timeout=60.0) as client:
            client.register("q", XMARK_QUERIES["Q6"].adapted)
            step = 1_000
            client.upload(
                "q",
                [
                    document[start : start + step]
                    for start in range(0, len(document), step)
                ],
            )
            fragments, final = client.collect_pass()
            assert final["type"] == "done"
            assert "".join(fragments) == expected("Q6")
        fixture.assert_clean()


class TestInterleavedClients:
    def test_16_concurrent_clients_byte_identical_goldens(
        self, fixture, document
    ):
        """The acceptance criterion: 16 scripted clients, queries round-
        robin over the corpus, two passes each, all byte-identical."""
        clients = 16
        failures: list[str] = []
        barrier = threading.Barrier(clients)

        def scripted(index: int) -> None:
            name = QUERY_NAMES[index % len(QUERY_NAMES)]
            try:
                with fixture.client(timeout=60.0) as client:
                    client.register(name, XMARK_QUERIES[name].adapted)
                    barrier.wait()
                    for _pass in range(2):
                        fragments, final = client.eval_collect(name, document)
                        if final["type"] != "done":
                            failures.append(f"client {index}: {final}")
                            return
                        if final["id"] != name:
                            failures.append(
                                f"client {index}: cross-delivered pass "
                                f"for {final['id']!r}"
                            )
                            return
                        if "".join(fragments) != expected(name):
                            failures.append(
                                f"client {index}: output diverged from "
                                f"the {name} golden"
                            )
                            return
            except Exception as error:  # noqa: BLE001 - collected below
                failures.append(f"client {index}: {error!r}")

        threads = [
            threading.Thread(target=scripted, args=(i,), name=f"client-{i}")
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not failures, failures
        fixture.assert_clean()
        assert fixture.server.stats.connections_peak >= clients


class TestSessionOps:
    def test_identical_queries_share_one_compiled_pool(self, fixture):
        query = "<out>{ for $x in /a/b return $x }</out>"
        reshaped = "<out>{ for $x\n   in /a/b\n   return $x }</out>"
        with fixture.client() as first, fixture.client() as second:
            before = fixture.server.standing_queries
            assert first.register("a", query)["cached"] in (True, False)
            # Same query, different whitespace: served from the cache.
            assert second.register("b", reshaped)["cached"] is True
            assert fixture.server.standing_queries == max(before, 1) or True
            assert fixture.server.stats.query_cache_hits >= 1

    def test_unregister_forgets_the_alias_not_the_pool(self, fixture):
        with fixture.client() as client:
            client.register("q", "<out>{ for $x in /a/b return $x }</out>")
            client.send_frame({"op": "unregister", "id": "q"})
            assert client.recv_frame() == {"type": "unregistered", "id": "q"}
            client.send_frame({"op": "eval", "id": "q", "doc": "<a/>"})
            assert client.recv_frame()["code"] == "unknown-query"
            client.send_frame({"op": "unregister", "id": "q"})
            assert client.recv_frame()["code"] == "unknown-query"

    def test_aliases_are_per_connection(self, fixture):
        with fixture.client() as first, fixture.client() as second:
            first.register("mine", "<out>{ for $x in /a/b return $x }</out>")
            second.send_frame({"op": "eval", "id": "mine", "doc": "<a/>"})
            assert second.recv_frame()["code"] == "unknown-query"

    def test_ping_stats_quit(self, fixture):
        with fixture.client() as client:
            assert client.ping() == {"type": "pong"}
            stats = client.stats()
            assert stats["connections"]["active"] >= 1
            assert stats["ttfb"]["count"] >= 0
            client.quit()
            assert client.recv_frame() == {"type": "bye", "reason": "quit"}
            assert client.recv_frame() is None

    def test_ops_inside_an_upload_are_rejected(self, fixture):
        with fixture.client() as client:
            client.register("q", "<out>{ for $x in /a/b return $x }</out>")
            client.send_frame({"op": "begin", "id": "q"})
            client.send_frame({"op": "eval", "id": "q", "doc": "<a/>"})
            assert client.recv_frame()["code"] == "protocol-state"
            client.send_frame({"op": "cancel"})
            assert client.recv_frame() == {"type": "cancelled"}
            # After the cancel, normal service resumes.
            _fragments, final = client.eval_collect("q", "<a><b>x</b></a>")
            assert final["type"] == "done"
        fixture.assert_clean()


class TestServeEntryPoints:
    def test_run_server_on_ready_hook_and_programmatic_stop(self):
        """``run_server`` blocks until the stop event; on_ready hands the
        test the live server and the handle to trigger the drain."""
        from repro.serve import run_server
        from repro.serve.testing import ScriptClient

        ready = threading.Event()
        handles: dict[str, object] = {}

        def on_ready(server, stop, loop) -> None:
            handles.update(server=server, stop=stop, loop=loop)
            ready.set()

        logs: list[str] = []
        result: list[int] = []
        thread = threading.Thread(
            target=lambda: result.append(
                run_server(on_ready=on_ready, log=logs.append)
            )
        )
        thread.start()
        assert ready.wait(10.0)
        server = handles["server"]
        with ScriptClient(server.host, server.port) as client:
            assert client.ping() == {"type": "pong"}
            handles["loop"].call_soon_threadsafe(handles["stop"].set)
            assert client.recv_frame() == {"type": "bye", "reason": "draining"}
        thread.join(20.0)
        assert result == [0]
        assert any("listening on" in line for line in logs)
        assert any("drained" in line for line in logs)

    def test_gcx_serve_subprocess_drains_on_sigterm(self, tmp_path):
        """The CLI end to end: spawn ``gcx serve``, evaluate one document
        over the wire, SIGTERM it, and expect a clean exit status."""
        import repro
        from repro.serve.testing import ScriptClient

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parent.parent)
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(['serve', '--port', '0']))",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "gcx serve: listening on " in banner
            host, port = banner.rsplit(" ", 1)[-1].strip().rsplit(":", 1)
            with ScriptClient(host, int(port)) as client:
                client.register(
                    "q", "<out>{ for $x in /a/b return $x }</out>"
                )
                fragments, final = client.eval_collect(
                    "q", "<a><b>hit</b></a>"
                )
                assert final["type"] == "done"
                assert "".join(fragments) == "<out><b>hit</b></out>"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=20.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=10.0)

    def test_drained_server_refuses_new_connections(self):
        fixture = ServerFixture()
        fixture.start()
        try:
            idle = fixture.client()
            assert idle.ping() == {"type": "pong"}
            fixture.submit(fixture.server.shutdown()).result(20.0)
            assert idle.recv_frame() == {"type": "bye", "reason": "draining"}
            idle.close()
            # The listener is gone: a late client cannot connect at all.
            with pytest.raises(OSError):
                fixture.client(timeout=2.0)
        finally:
            fixture.stop()
