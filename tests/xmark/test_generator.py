"""XMark generator tests: determinism, schema conformance, scaling."""

import pytest

from repro.xmark import (
    ELEMENT_CHILDREN,
    REGIONS,
    XMarkConfig,
    generate_xmark,
    validate_order,
    xmark_scale_for_bytes,
)
from repro.xmlio import parse_tree
from repro.xmlio.tree import ElementNode


@pytest.fixture(scope="module")
def doc():
    return generate_xmark(0.001, seed=11)


@pytest.fixture(scope="module")
def tree(doc):
    return parse_tree(doc)


class TestDeterminism:
    def test_same_seed_same_document(self):
        assert generate_xmark(0.0005, seed=3) == generate_xmark(0.0005, seed=3)

    def test_different_seed_different_document(self):
        assert generate_xmark(0.0005, seed=3) != generate_xmark(0.0005, seed=4)


class TestWellFormedness:
    def test_parses(self, tree):
        assert tree.root_element.tag == "site"

    def test_top_level_structure(self, tree):
        tags = [c.tag for c in tree.root_element.children if isinstance(c, ElementNode)]
        assert tags == [
            "regions",
            "categories",
            "catgraph",
            "people",
            "open_auctions",
            "closed_auctions",
        ]

    def test_all_regions_present(self, tree):
        regions = next(c for c in tree.root_element.children if c.tag == "regions")
        assert [c.tag for c in regions.children] == list(REGIONS)

    def test_schema_conformance(self, tree):
        """Every element's children satisfy the (simplified) content model."""
        checked = 0
        for node in tree.root_element.iter_subtree():
            if not isinstance(node, ElementNode):
                continue
            child_tags = [
                c.tag for c in node.children if isinstance(c, ElementNode)
            ]
            if node.tag in ELEMENT_CHILDREN and child_tags:
                assert validate_order(node.tag, child_tags), (
                    f"<{node.tag}> children {child_tags}"
                )
                checked += 1
        assert checked > 50


class TestReferentialIntegrity:
    def test_buyer_references_existing_persons(self, tree, doc):
        config = XMarkConfig.for_scale(0.001)
        site = tree.root_element
        closed = next(c for c in site.children if c.tag == "closed_auctions")
        for auction in closed.children:
            buyer = next(c for c in auction.children if c.tag == "buyer")
            ref = buyer.string_value()
            assert ref.startswith("person")
            assert int(ref[len("person"):]) < config.persons

    def test_person0_exists(self, doc):
        assert "<person><id>person0</id>" in doc

    def test_incomes_are_numeric(self, tree):
        site = tree.root_element
        people = next(c for c in site.children if c.tag == "people")
        incomes = [
            node.string_value()
            for node in people.iter_subtree()
            if isinstance(node, ElementNode) and node.tag == "income"
        ]
        assert incomes, "some persons must have incomes"
        for income in incomes:
            float(income)

    def test_some_persons_lack_income(self, tree):
        """Q20's <na> bucket must be non-empty in expectation."""
        site = tree.root_element
        people = next(c for c in site.children if c.tag == "people")
        persons = [c for c in people.children if isinstance(c, ElementNode)]
        without = [
            p
            for p in persons
            if not any(
                isinstance(n, ElementNode) and n.tag == "income"
                for n in p.iter_subtree()
            )
        ]
        assert without


class TestScaling:
    def test_size_roughly_linear_in_scale(self):
        small = len(generate_xmark(0.0005, seed=5))
        large = len(generate_xmark(0.002, seed=5))
        assert 2.5 < large / small < 6.0

    def test_scale_for_bytes_estimate(self):
        scale = xmark_scale_for_bytes(100_000)
        actual = len(generate_xmark(scale, seed=5))
        assert 30_000 < actual < 300_000

    def test_config_counts(self):
        config = XMarkConfig.for_scale(0.01)
        assert config.persons == 255
        assert config.items == 218  # 21750 * 0.01, rounded
        assert config.closed_auctions == 98
