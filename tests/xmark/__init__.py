"""Tests for the xmark layer."""
