"""Adapted XMark query tests: parseability, compilation, semantics."""

import pytest

from repro.analysis import compile_query
from repro.baselines import FluxLikeEngine, UnsupportedQueryError
from repro.engine import GCXEngine
from repro.xmark import TABLE1_QUERIES, XMARK_QUERIES
from repro.xquery import parse_query


class TestAdaptations:
    def test_table1_rows_present(self):
        assert TABLE1_QUERIES == ("Q1", "Q6", "Q8", "Q13", "Q20")
        assert set(TABLE1_QUERIES) <= set(XMARK_QUERIES)

    @pytest.mark.parametrize("name", TABLE1_QUERIES)
    def test_adapted_queries_parse_and_compile(self, name):
        query = XMARK_QUERIES[name]
        parse_query(query.adapted)
        compiled = compile_query(query.adapted)
        assert compiled.projection_tree.node_count() >= 3

    def test_q6_flagged_descendant(self):
        assert XMARK_QUERIES["Q6"].uses_descendant
        with pytest.raises(UnsupportedQueryError):
            FluxLikeEngine().compile(XMARK_QUERIES["Q6"].adapted)

    def test_join_detection_is_plan_derived(self):
        assert XMARK_QUERIES["Q8"].uses_join()
        assert XMARK_QUERIES["Q9"].uses_join()
        for name in ("Q1", "Q5", "Q6", "Q13", "Q15", "Q17", "Q20"):
            assert not XMARK_QUERIES[name].uses_join(), name

    def test_original_texts_recorded(self):
        for query in XMARK_QUERIES.values():
            assert query.original
            assert query.title


class TestSemantics:
    """Check query results against independently computed answers."""

    @pytest.fixture(scope="class")
    def doc(self, request):
        from repro.xmark import generate_xmark

        return generate_xmark(0.0008, seed=23)

    @pytest.fixture(scope="class")
    def dom(self, doc):
        from repro.xmlio import parse_tree

        return parse_tree(doc)

    def test_q1_returns_person0_name(self, doc, dom):
        from repro.xmlio.tree import ElementNode

        output = GCXEngine().run(XMARK_QUERIES["Q1"].adapted, doc).output
        people = next(
            c for c in dom.root_element.children if c.tag == "people"
        )
        person0 = next(
            p
            for p in people.children
            if isinstance(p, ElementNode)
            and any(
                c.tag == "id" and c.string_value() == "person0"
                for c in p.children
                if isinstance(c, ElementNode)
            )
        )
        name = next(c for c in person0.children if getattr(c, "tag", "") == "name")
        assert name.string_value() in output

    def test_q6_outputs_every_item(self, doc):
        output = GCXEngine().run(XMARK_QUERIES["Q6"].adapted, doc).output
        assert output.count("<item>") == doc.count("<item><id>item")

    def test_q8_sale_counts_match_dom_join(self, doc, dom):
        from repro.xmlio.tree import ElementNode

        output = GCXEngine().run(XMARK_QUERIES["Q8"].adapted, doc).output
        # Independent join: count closed auctions per buyer.
        site = dom.root_element
        closed = next(c for c in site.children if c.tag == "closed_auctions")
        buyers = [
            next(c for c in auction.children if c.tag == "buyer").string_value()
            for auction in closed.children
            if isinstance(auction, ElementNode)
        ]
        total_sales = 0
        people = next(c for c in site.children if c.tag == "people")
        for person in people.children:
            if not isinstance(person, ElementNode):
                continue
            pid = next(
                c.string_value()
                for c in person.children
                if isinstance(c, ElementNode) and c.tag == "id"
            )
            total_sales += buyers.count(pid)
        assert output.count("<sale/>") == total_sales

    def test_q13_australia_only(self, doc):
        output = GCXEngine().run(XMARK_QUERIES["Q13"].adapted, doc).output
        # Australia holds ~10% of items; every australian item contributes
        # exactly one result element with name text and description.
        australia = doc.split("<australia>")[1].split("</australia>")[0]
        assert output.count("<item>") == australia.count("<item><id>item")

    def test_q20_brackets_partition_persons(self, doc, dom):
        from repro.xmlio.tree import ElementNode

        output = GCXEngine().run(XMARK_QUERIES["Q20"].adapted, doc).output
        site = dom.root_element
        people = next(c for c in site.children if c.tag == "people")
        expected = {"preferred": 0, "standard": 0, "challenge": 0, "na": 0}
        for person in people.children:
            if not isinstance(person, ElementNode):
                continue
            incomes = [
                n.string_value()
                for n in person.iter_subtree()
                if isinstance(n, ElementNode) and n.tag == "income"
            ]
            if not incomes:
                expected["na"] += 1
            elif float(incomes[0]) >= 100_000:
                expected["preferred"] += 1
            elif float(incomes[0]) >= 30_000:
                expected["standard"] += 1
            else:
                expected["challenge"] += 1
        for bucket, count in expected.items():
            assert output.count(f"<{bucket}/>") == count, bucket


class TestExtraQueries:
    """Q15 and Q17 are extras beyond Table 1 (deep paths, negated exists)."""

    @pytest.mark.parametrize("name", ["Q15", "Q17"])
    def test_parse_and_compile(self, name):
        compile_query(XMARK_QUERIES[name].adapted)

    @pytest.mark.parametrize("name", ["Q15", "Q17"])
    def test_all_engines_agree(self, name):
        from repro.xmark import generate_xmark
        from tests.helpers import assert_engines_agree

        doc = generate_xmark(0.0008, seed=23)
        assert_engines_agree(XMARK_QUERIES[name].adapted, doc)

    def test_q17_counts_persons_without_homepage(self):
        from repro.xmark import generate_xmark

        doc = generate_xmark(0.0008, seed=23)
        output = GCXEngine().run(XMARK_QUERIES["Q17"].adapted, doc).output
        persons = doc.count("<person><id>person")
        with_homepage = doc.count("<homepage>")
        assert output.count("<person>") == persons - with_homepage

    def test_q15_memory_flat(self):
        from repro.xmark import generate_xmark

        small = GCXEngine().run(
            XMARK_QUERIES["Q15"].adapted, generate_xmark(0.001, seed=5)
        )
        large = GCXEngine().run(
            XMARK_QUERIES["Q15"].adapted, generate_xmark(0.004, seed=5)
        )
        assert large.stats.hwm_nodes <= small.stats.hwm_nodes + 5
