"""Tests for the adapted XMark DTD module."""

import pytest

from repro.xmark import generate_xmark
from repro.xmark.dtd import DTDViolation, render_dtd, schema_tags, validate_document


class TestRenderDtd:
    def test_contains_all_content_models(self):
        dtd = render_dtd()
        assert "<!ELEMENT site (regions, categories, catgraph, people, " in dtd
        assert "<!ELEMENT person (id, name, emailaddress, phone?, " in dtd

    def test_occurrence_indicators(self):
        dtd = render_dtd()
        assert "incategory+" in dtd  # one or more
        assert "person*" in dtd  # zero or more
        assert "privacy?" in dtd  # optional

    def test_leaves_are_pcdata(self):
        dtd = render_dtd()
        assert "<!ELEMENT price (#PCDATA)>" in dtd
        assert "<!ELEMENT income (#PCDATA)>" in dtd

    def test_attributes_are_subelements(self):
        """The adaptation: no ATTLIST anywhere, ids are elements."""
        dtd = render_dtd()
        assert "ATTLIST" not in dtd
        assert "<!ELEMENT id (#PCDATA)>" in dtd


class TestSchemaTags:
    def test_contains_structure_and_leaves(self):
        tags = schema_tags()
        assert {"site", "person", "income", "closed_auction", "text"} <= tags

    def test_rejects_unknown(self):
        assert "not-an-xmark-tag" not in schema_tags()


class TestValidateDocument:
    def test_generated_documents_validate(self):
        document = generate_xmark(0.0008, seed=31)
        checked = validate_document(document)
        assert checked > 100

    def test_unknown_element_rejected(self):
        with pytest.raises(DTDViolation):
            validate_document("<site><wat/></site>")

    def test_unknown_element_message(self):
        # Put the unknown tag where the parent's model tolerates scanning.
        with pytest.raises(DTDViolation):
            validate_document("<wat/>")

    def test_order_violation_rejected(self):
        # categories before regions violates site's content model.
        with pytest.raises(DTDViolation, match="content model"):
            validate_document(
                "<site><categories/><regions/><catgraph/><people/>"
                "<open_auctions/><closed_auctions/></site>"
            )

    def test_leaf_with_children_rejected(self):
        doc = (
            "<site><regions><africa><item><id><nested/></id></item></africa>"
            "<asia/><australia/><europe/><namerica/><samerica/></regions>"
        )
        with pytest.raises(DTDViolation):
            validate_document(doc + _site_tail())


def _site_tail() -> str:
    return "<categories/><catgraph/><people/><open_auctions/><closed_auctions/></site>"
