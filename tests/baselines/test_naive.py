"""Tests for the baseline engines themselves."""

import pytest

from repro.baselines import (
    FluxLikeEngine,
    NaiveDomEngine,
    ProjectionOnlyEngine,
    UnsupportedQueryError,
)
from repro.engine import GCXEngine

from tests.helpers import INTRO_DOC, INTRO_QUERY


class TestNaiveDom:
    def test_memory_is_whole_document(self):
        result = NaiveDomEngine().run(INTRO_QUERY, INTRO_DOC)
        # Every node of the document is accounted, regardless of the query.
        selective = NaiveDomEngine().run(
            "<out>{for $z in /bib/zzz return $z}</out>", INTRO_DOC
        )
        assert result.stats.hwm_nodes == selective.stats.hwm_nodes

    def test_matches_gcx(self):
        naive = NaiveDomEngine().run(INTRO_QUERY, INTRO_DOC)
        gcx = GCXEngine().run(INTRO_QUERY, INTRO_DOC)
        assert naive.output == gcx.output
        assert naive.stats.hwm_nodes > gcx.stats.hwm_nodes


class TestProjectionOnly:
    def test_buffers_projected_document(self):
        result = ProjectionOnlyEngine().run(INTRO_QUERY, INTRO_DOC)
        gcx = GCXEngine().run(INTRO_QUERY, INTRO_DOC)
        naive = NaiveDomEngine().run(INTRO_QUERY, INTRO_DOC)
        # Between GCX (dynamic purging) and naive (no projection).
        assert gcx.stats.hwm_nodes <= result.stats.hwm_nodes <= naive.stats.hwm_nodes

    def test_memory_grows_with_matches(self):
        small = "<bib>" + "<book><title/></book>" * 5 + "</bib>"
        large = "<bib>" + "<book><title/></book>" * 50 + "</bib>"
        small_run = ProjectionOnlyEngine().run(INTRO_QUERY, small)
        large_run = ProjectionOnlyEngine().run(INTRO_QUERY, large)
        assert large_run.stats.hwm_nodes > 5 * small_run.stats.hwm_nodes

    def test_gcx_stays_flat_on_single_phase_query(self):
        """For a query whose outputs stream out immediately, GCX memory is
        independent of the document size.  (The intro query is two-phase —
        its titles must stay buffered for the second loop, as Figure 2
        itself shows — so a Q13-style query is the right probe here.)"""
        query = "<out>{for $b in /bib/book return $b/title}</out>"
        small = "<bib>" + "<book><title>t</title></book>" * 5 + "</bib>"
        large = "<bib>" + "<book><title>t</title></book>" * 50 + "</bib>"
        small_run = GCXEngine().run(query, small)
        large_run = GCXEngine().run(query, large)
        assert large_run.stats.hwm_nodes <= small_run.stats.hwm_nodes + 2

    def test_projection_only_grows_on_the_same_series(self):
        query = "<out>{for $b in /bib/book return $b/title}</out>"
        small = "<bib>" + "<book><title>t</title></book>" * 5 + "</bib>"
        large = "<bib>" + "<book><title>t</title></book>" * 50 + "</bib>"
        small_run = ProjectionOnlyEngine().run(query, small)
        large_run = ProjectionOnlyEngine().run(query, large)
        assert large_run.stats.hwm_nodes > 5 * small_run.stats.hwm_nodes


class TestFluxLike:
    def test_rejects_descendant_axis_anywhere(self):
        engine = FluxLikeEngine()
        with pytest.raises(UnsupportedQueryError):
            engine.compile("<q>{for $a in //a return $a}</q>")
        with pytest.raises(UnsupportedQueryError):
            engine.compile(
                "<q>{for $a in /r/a return if (exists $a//b) then <t/> else ()}</q>"
            )

    def test_accepts_child_only_queries(self):
        engine = FluxLikeEngine()
        result = engine.run(INTRO_QUERY, INTRO_DOC)
        assert result.output == GCXEngine().run(INTRO_QUERY, INTRO_DOC).output

    def test_cost_model_charges_more_than_gcx(self):
        flux = FluxLikeEngine().run(INTRO_QUERY, INTRO_DOC)
        gcx = GCXEngine().run(INTRO_QUERY, INTRO_DOC)
        assert flux.hwm_bytes > gcx.hwm_bytes

    def test_no_first_witness_trimming(self):
        """flux-like keeps all exists-witnesses, GCX only the first."""
        query = "<q>{for $i in /r/i return if (exists $i/w) then <t/> else ()}</q>"
        doc = "<r><i>" + "<w/>" * 10 + "</i></r>"
        flux = FluxLikeEngine().run(query, doc)
        gcx = GCXEngine().run(query, doc)
        assert flux.output == gcx.output
        assert flux.stats.hwm_nodes > gcx.stats.hwm_nodes


class TestEngineRegistry:
    def test_registry_names(self):
        from repro.baselines import ENGINES

        assert set(ENGINES) == {"gcx", "flux-like", "projection-only", "naive-dom"}

    def test_paper_system_map_targets_exist(self):
        from repro.baselines import ENGINES, PAPER_SYSTEM_MAP

        assert set(PAPER_SYSTEM_MAP.values()) <= set(ENGINES)
