"""Cross-engine equivalence: every engine computes the same results.

Theorem 1 (correctness) states JQK(T) = JQ'K(T') — the rewritten query over
the projected document equals the original query over the full document.
The naive DOM engine evaluates the original (normalized) query over the
full document, so agreement between it and GCX *is* the theorem, checked
over the whole corpus; the other engines are covered along the way.
"""

import pytest

from repro.baselines import ENGINES
from repro.engine import EngineOptions, GCXEngine

from tests.helpers import CORPUS, assert_engines_agree


@pytest.mark.parametrize("name, query, doc", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_all_engines_agree(name, query, doc):
    assert_engines_agree(query, doc)


@pytest.mark.parametrize("name, query, doc", CORPUS, ids=[c[0] for c in CORPUS])
def test_corpus_all_gcx_configurations_agree(name, query, doc):
    reference = None
    for aggregate in (False, True):
        for early in (False, True):
            for eliminate in (False, True):
                result = GCXEngine(
                    EngineOptions(
                        aggregate_roles=aggregate,
                        early_updates=early,
                        eliminate_redundant_roles=eliminate,
                    )
                ).run(query, doc)
                if reference is None:
                    reference = result.output
                assert result.output == reference, (
                    f"{name}: aggregate={aggregate} early={early} "
                    f"eliminate={eliminate} diverges"
                )


class TestDocumentEdgeCases:
    """The corpus queries over tricky documents."""

    EDGE_DOCS = [
        "<bib/>",
        "<bib><book/></bib>",
        "<bib><book><price/></book></bib>",  # empty price element
        "<bib><book><title/><title/><title/></book></bib>",  # repeated titles
        "<bib><book><book><title/></book></book></bib>",  # nested books
    ]

    @pytest.mark.parametrize("doc", EDGE_DOCS)
    def test_intro_query(self, doc):
        from tests.helpers import INTRO_QUERY

        assert_engines_agree(INTRO_QUERY, doc)

    def test_deeply_nested_document(self):
        doc = "<r>" + "<a>" * 30 + "<b/>" + "</a>" * 30 + "</r>"
        assert_engines_agree("<out>{for $b in //b return <hit/>}</out>", doc)

    def test_wide_document(self):
        doc = "<r>" + "<a><k>v</k></a>" * 200 + "</r>"
        assert_engines_agree("<out>{for $a in /r/a return $a/k}</out>", doc)


class TestXMarkEquivalence:
    """All engines agree on the real benchmark queries (small document)."""

    @pytest.mark.parametrize("qname", ["Q1", "Q6", "Q8", "Q13", "Q20"])
    def test_xmark_query(self, qname, xmark_doc_small):
        from repro.xmark import XMARK_QUERIES

        output = assert_engines_agree(
            XMARK_QUERIES[qname].adapted, xmark_doc_small
        )
        assert output.startswith(f"<XMark-{qname}>")

    def test_q1_finds_person0(self, xmark_doc_small):
        from repro.xmark import XMARK_QUERIES

        output = ENGINES["gcx"]().run(
            XMARK_QUERIES["Q1"].adapted, xmark_doc_small
        ).output
        assert output != "<XMark-Q1/>"  # person0 exists in every document

    def test_q20_classifies_every_person_once(self, xmark_doc_small):
        from repro.xmark import XMARK_QUERIES

        output = ENGINES["gcx"]().run(
            XMARK_QUERIES["Q20"].adapted, xmark_doc_small
        ).output
        markers = (
            output.count("<preferred/>")
            + output.count("<standard/>")
            + output.count("<challenge/>")
            + output.count("<na/>")
        )
        # Count real person records, not <person>...</person> references
        # inside seller/buyer/personref elements.
        persons = xmark_doc_small.count("<person><id>person")
        assert markers == persons
