"""The multi-query benchmark: report invariants and gate wiring."""

from __future__ import annotations

from repro.bench.baseline import FLOORS
from repro.bench.multiquery import (
    MULTIQUERY_MIX,
    format_multiquery_report,
    run_multiquery_benchmark,
)


class TestReport:
    def test_report_invariants_on_a_small_document(self, xmark_doc_small):
        report = run_multiquery_benchmark(
            xmark_doc_small, repeats=1
        )
        assert report.query_count == len(MULTIQUERY_MIX) == 8
        assert report.single_scan  # the gated invariant
        assert report.shared_tokens_read == report.document_tokens
        assert 0.0 < report.route_share < 1.0
        assert report.speedup > 0
        assert report.peak_live_nodes > 0

    def test_cross_check_runs_before_timing(self, xmark_doc_small):
        """The benchmark is its own oracle: divergence must raise."""
        # Run with a single benign query to keep this fast; the oracle
        # path (sequential outputs vs shared outputs) executes either way.
        report = run_multiquery_benchmark(
            xmark_doc_small,
            queries={"Q1": MULTIQUERY_MIX["Q1"]},
            repeats=1,
        )
        assert report.query_count == 1

    def test_format_mentions_the_scan_invariant(self, xmark_doc_small):
        report = run_multiquery_benchmark(
            xmark_doc_small, queries={"Q1": MULTIQUERY_MIX["Q1"]}, repeats=1
        )
        rendered = format_multiquery_report(report)
        assert "one scan" in rendered
        assert "standing queries" in rendered


class TestGateWiring:
    def test_hard_floors_cover_the_acceptance_criteria(self):
        assert FLOORS["multiquery_speedup_k8"] == 2.0
        assert FLOORS["multiquery_single_scan"] == 1.0

    def test_mix_includes_the_join_queries(self):
        """Q8/Q9 were excluded while their nested-loop joins were
        quadratic; the hash-join dispatch makes them linear, so the K=8
        standing set is exactly the golden XMark queries minus Q5."""
        assert "Q8" in MULTIQUERY_MIX
        assert "Q9" in MULTIQUERY_MIX
        assert len(MULTIQUERY_MIX) == 8
