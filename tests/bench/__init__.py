"""Tests for the bench layer."""
