"""Tests for the ablation-study library."""

import pytest

from repro.bench.ablation import (
    ABLATION_CONFIGS,
    format_ablations,
    run_ablations,
)

QUERIES = {
    "titles": "<o>{for $b in /bib/book return $b/title}</o>",
    "guard": "<o>{for $b in /bib/book return if (exists $b/price) then <p/> else ()}</o>",
}
DOC = (
    "<bib>"
    + "".join(
        f"<book><title>t{i}</title>{'<price>9</price>' if i % 2 else ''}</book>"
        for i in range(20)
    )
    + "</bib>"
)


@pytest.fixture(scope="module")
def cells():
    return run_ablations(QUERIES, DOC)


class TestRunAblations:
    def test_full_grid(self, cells):
        assert len(cells) == len(ABLATION_CONFIGS) * len(QUERIES)

    def test_all_outputs_equal_to_full(self, cells):
        assert all(cell.output_equal_to_full for cell in cells)

    def test_aggregate_ablation_increases_roles(self, cells):
        by_key = {(c.config, c.query): c for c in cells}
        assert (
            by_key[("no-aggregate-roles", "titles")].roles_assigned
            > by_key[("full", "titles")].roles_assigned
        )

    def test_base_scheme_never_cheaper_than_full(self, cells):
        by_key = {(c.config, c.query): c for c in cells}
        for query in QUERIES:
            assert (
                by_key[("base-scheme", query)].roles_assigned
                >= by_key[("full", query)].roles_assigned
            )

    def test_format_renders_table(self, cells):
        table = format_ablations(cells)
        assert "config" in table
        assert "base-scheme" in table
        assert "identical outputs" in table
