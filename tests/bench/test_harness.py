"""Benchmark harness tests (small sizes so they run in seconds)."""

import pytest

from repro.bench import (
    HarnessConfig,
    Measurement,
    format_bytes,
    format_seconds,
    format_table1,
    generate_documents,
    measure,
    run_table1,
    shape_report,
)


class TestMeasure:
    def test_basic_measurement(self):
        cell = measure("gcx", "<o>{for $a in /r/a return $a}</o>", "<r><a>1</a></r>")
        assert cell.supported
        assert cell.seconds > 0
        assert cell.hwm_nodes >= 1
        assert cell.output_bytes > 0

    def test_unsupported_query_is_na(self):
        cell = measure("flux-like", "<o>{for $a in //a return $a}</o>", "<r/>")
        assert not cell.supported
        assert cell.cell == "n/a"

    def test_tracemalloc_option(self):
        cell = measure(
            "gcx",
            "<o>{for $a in /r/a return $a}</o>",
            "<r><a/></r>",
            with_tracemalloc=True,
        )
        assert cell.tracemalloc_peak is not None and cell.tracemalloc_peak > 0

    def test_streaming_engines_report_first_output_latency(self):
        cell = measure("gcx", "<o>{for $a in /r/a return $a}</o>", "<r><a>1</a></r>")
        assert cell.first_output_seconds is not None
        assert 0 <= cell.first_output_seconds <= cell.seconds

    def test_materializing_engines_have_no_latency_figure(self):
        cell = measure(
            "naive-dom", "<o>{for $a in /r/a return $a}</o>", "<r><a>1</a></r>"
        )
        assert cell.first_output_seconds is None


class TestFormatting:
    @pytest.mark.parametrize(
        "seconds, expected",
        [(0.18, "0.18s"), (3.5, "3.50s"), (62, "01:02"), (3600, "60:00")],
    )
    def test_seconds(self, seconds, expected):
        assert format_seconds(seconds) == expected

    @pytest.mark.parametrize(
        "count, expected",
        [(512, "512B"), (1536, "1.5KB"), (1258291, "1.2MB"), (2 << 30, "2.00GB")],
    )
    def test_bytes(self, count, expected):
        assert format_bytes(count) == expected

    def test_cell_rendering(self):
        cell = Measurement("gcx", "Q1", 10_000, seconds=0.18, hwm_bytes=1258291)
        assert cell.cell == "0.18s / 1.2MB"
        cell.timed_out = True
        assert cell.cell == "timeout"


class TestDocuments:
    def test_generated_sizes_close_to_targets(self):
        docs = generate_documents((50_000, 100_000), seed=9)
        for target, document in docs.items():
            assert abs(len(document) - target) / target < 0.25

    def test_deterministic(self):
        a = generate_documents((40_000,), seed=1)
        b = generate_documents((40_000,), seed=1)
        assert a == b


class TestHarness:
    @pytest.fixture(scope="class")
    def results(self):
        config = HarnessConfig(
            sizes_bytes=(40_000, 80_000),
            engines=("gcx", "naive-dom", "flux-like"),
            queries=("Q1", "Q6"),
            cell_budget_seconds=60,
        )
        return run_table1(config)

    def test_grid_complete(self, results):
        gcx_cells = [m for m in results if m.engine == "gcx"]
        assert len(gcx_cells) == 4  # 2 queries x 2 sizes

    def test_flux_na_on_q6(self, results):
        q6_flux = [m for m in results if m.engine == "flux-like" and m.query == "Q6"]
        assert q6_flux and not q6_flux[0].supported

    def test_gcx_beats_naive_on_memory(self, results):
        for query in ("Q1", "Q6"):
            gcx = [m for m in results if m.engine == "gcx" and m.query == query]
            naive = [
                m for m in results if m.engine == "naive-dom" and m.query == query
            ]
            for g, n in zip(gcx, naive):
                assert g.hwm_bytes * 5 < n.hwm_bytes

    def test_table_renders(self, results):
        table = format_table1(results)
        assert "Q1" in table and "gcx" in table and "n/a" in table

    def test_shape_report_no_mismatch(self, results):
        report = shape_report(results)
        assert "[MISMATCH]" not in report

    def test_timeout_prediction(self):
        """A tiny budget turns the larger sizes into predicted timeouts."""
        config = HarnessConfig(
            sizes_bytes=(40_000, 80_000, 160_000),
            engines=("gcx",),
            queries=("Q8",),
            cell_budget_seconds=0.001,
        )
        results = run_table1(config)
        assert any(m.timed_out for m in results)
