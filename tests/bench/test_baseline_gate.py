"""Tests for the performance baseline machinery and the CI bench gate."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.baseline import (
    FLOORS,
    Metric,
    compare,
    load_baseline,
    save_baseline,
)

REPO = Path(__file__).resolve().parent.parent.parent
GATE = REPO / "tools" / "bench_gate.py"
COMMITTED_BASELINE = REPO / "BENCH_baseline.json"


def metric(name, value, *, higher=True, dependent=False):
    return Metric(
        name=name,
        value=value,
        unit="u",
        higher_is_better=higher,
        machine_dependent=dependent,
    )


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        metrics = {
            "alpha": metric("alpha", 2.5),
            "beta": metric("beta", 100.0, higher=False, dependent=True),
        }
        path = tmp_path / "BENCH_test.json"
        save_baseline(metrics, path, target_bytes=1000, seed=1)
        loaded = load_baseline(path)
        assert loaded == metrics

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 999, "metrics": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_committed_baseline_is_loadable_and_meets_the_floor(self):
        """The repository must always carry a valid baseline whose recorded
        tokenizer speedup satisfies the 2x acceptance criterion."""
        metrics = load_baseline(COMMITTED_BASELINE)
        assert "tokenizer_speedup" in metrics
        assert metrics["tokenizer_speedup"].value >= FLOORS["tokenizer_speedup"]
        assert not metrics["tokenizer_speedup"].machine_dependent
        payload = json.loads(COMMITTED_BASELINE.read_text())
        assert payload["document"]["target_bytes"] >= 1_000_000


class TestCompare:
    def test_higher_is_better_regression(self):
        deltas = compare(
            {"m": metric("m", 10.0)}, {"m": metric("m", 7.0)}
        )
        (delta,) = deltas
        assert delta.regression == pytest.approx(0.3)
        assert delta.exceeded(0.25)
        assert not delta.exceeded(0.35)

    def test_lower_is_better_regression(self):
        deltas = compare(
            {"m": metric("m", 100.0, higher=False)},
            {"m": metric("m", 140.0, higher=False)},
        )
        (delta,) = deltas
        assert delta.regression == pytest.approx(0.4)

    def test_improvement_is_negative_regression(self):
        (delta,) = compare({"m": metric("m", 10.0)}, {"m": metric("m", 12.0)})
        assert delta.regression < 0
        assert not delta.exceeded(0.0)

    def test_floor_violation_flagged(self):
        (delta,) = compare(
            {"tokenizer_speedup": metric("tokenizer_speedup", 2.5)},
            {"tokenizer_speedup": metric("tokenizer_speedup", 1.9)},
        )
        assert delta.below_floor

    def test_missing_metrics_are_skipped(self):
        deltas = compare(
            {"gone": metric("gone", 1.0), "kept": metric("kept", 1.0)},
            {"kept": metric("kept", 1.0), "new": metric("new", 1.0)},
        )
        assert [d.name for d in deltas] == ["kept"]


def run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(GATE), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=600,
    )


class TestGateTool:
    def test_gate_fails_on_synthetic_regression(self, tmp_path):
        """Acceptance criterion: nonzero exit on a regressed recording."""
        payload = json.loads(COMMITTED_BASELINE.read_text())
        for entry in payload["metrics"].values():
            factor = 0.5 if entry["higher_is_better"] else 2.0
            entry["value"] *= factor
        regressed = tmp_path / "BENCH_regressed.json"
        regressed.write_text(json.dumps(payload))
        proc = run_gate("--fresh", str(regressed))
        assert proc.returncode == 1
        assert "FAIL" in proc.stderr

    def test_gate_passes_on_identical_recording(self):
        proc = run_gate("--fresh", str(COMMITTED_BASELINE))
        assert proc.returncode == 0, proc.stderr
        assert "bench gate passed" in proc.stdout

    def test_gate_fails_below_hard_floor_even_within_threshold(self, tmp_path):
        payload = json.loads(COMMITTED_BASELINE.read_text())
        recorded = payload["metrics"]["tokenizer_speedup"]["value"]
        payload["metrics"]["tokenizer_speedup"]["value"] = min(
            1.99, recorded * 0.9
        )
        slow = tmp_path / "BENCH_slow.json"
        slow.write_text(json.dumps(payload))
        proc = run_gate("--fresh", str(slow), "--threshold", "0.9")
        assert proc.returncode == 1
        assert "hard floor" in proc.stderr

    def test_machine_dependent_regressions_warn_by_default(self, tmp_path):
        payload = json.loads(COMMITTED_BASELINE.read_text())
        for entry in payload["metrics"].values():
            if entry["machine_dependent"] and entry["higher_is_better"]:
                entry["value"] *= 0.4
        noisy = tmp_path / "BENCH_noisy.json"
        noisy.write_text(json.dumps(payload))
        proc = run_gate("--fresh", str(noisy))
        assert proc.returncode == 0, proc.stderr
        assert "WARN" in proc.stdout
        strict = run_gate("--fresh", str(noisy), "--strict-timings")
        assert strict.returncode == 1

    def test_missing_baseline_is_a_distinct_error(self, tmp_path):
        proc = run_gate(
            "--fresh",
            str(COMMITTED_BASELINE),
            "--baseline",
            str(tmp_path / "nope.json"),
        )
        assert proc.returncode == 2

    def test_floor_enforced_without_baseline_entry(self, tmp_path):
        """A baseline missing a floored metric must not disable its floor."""
        base = json.loads(COMMITTED_BASELINE.read_text())
        del base["metrics"]["tokenizer_speedup"]
        baseline = tmp_path / "BENCH_old.json"
        baseline.write_text(json.dumps(base))
        slow = json.loads(COMMITTED_BASELINE.read_text())
        slow["metrics"]["tokenizer_speedup"]["value"] = 1.2
        fresh = tmp_path / "BENCH_slow.json"
        fresh.write_text(json.dumps(slow))
        proc = run_gate("--fresh", str(fresh), "--baseline", str(baseline))
        assert proc.returncode == 1
        assert "hard floor" in proc.stderr

    def test_corrupt_baseline_is_a_distinct_error(self, tmp_path):
        bad = tmp_path / "BENCH_corrupt.json"
        bad.write_text("{not json")
        proc = run_gate("--fresh", str(COMMITTED_BASELINE), "--baseline", str(bad))
        assert proc.returncode == 2
        assert "ERROR" in proc.stderr
        schema = tmp_path / "BENCH_schema.json"
        schema.write_text(json.dumps({"schema": 999, "metrics": {}}))
        proc = run_gate("--fresh", str(schema))
        assert proc.returncode == 2

    def test_update_from_recording_preserves_provenance(self, tmp_path):
        """--update --fresh must not restamp host/document metadata."""
        payload = json.loads(COMMITTED_BASELINE.read_text())
        payload["host"] = {"python": "9.9.9", "machine": "riscv", "system": "Plan9"}
        payload["document"] = {"target_bytes": 5_000_000, "seed": 7}
        recording = tmp_path / "BENCH_elsewhere.json"
        recording.write_text(json.dumps(payload))
        target = tmp_path / "BENCH_updated.json"
        proc = run_gate(
            "--fresh", str(recording), "--update", "--baseline", str(target)
        )
        assert proc.returncode == 0, proc.stderr
        updated = json.loads(target.read_text())
        assert updated["host"] == payload["host"]
        assert updated["document"] == payload["document"]

    def test_missing_tracked_metric_fails_the_gate(self, tmp_path):
        payload = json.loads(COMMITTED_BASELINE.read_text())
        del payload["metrics"]["tokenizer_speedup"]
        pruned = tmp_path / "BENCH_pruned.json"
        pruned.write_text(json.dumps(payload))
        proc = run_gate("--fresh", str(pruned))
        assert proc.returncode == 1
        assert "missing from the fresh run" in proc.stderr
