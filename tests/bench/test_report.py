"""Report-rendering tests."""


from repro.bench import Measurement, format_table1, shape_report
from repro.bench.report import _is_flat


def cell(engine, query, size, seconds=0.1, hwm=1000, **kwargs):
    return Measurement(
        engine=engine,
        query=query,
        doc_bytes=size,
        seconds=seconds,
        hwm_bytes=hwm,
        **kwargs,
    )


class TestFormatTable1:
    def test_layout(self):
        cells = [
            cell("gcx", "Q1", 1000),
            cell("gcx", "Q1", 2000),
            cell("naive-dom", "Q1", 1000, hwm=9000),
            cell("naive-dom", "Q1", 2000, hwm=18000),
        ]
        table = format_table1(cells)
        lines = table.splitlines()
        assert lines[0] == "Table 1"
        header = lines[2]
        assert "gcx" in header and "naive-dom" in header
        assert "1000B" in table or "1.0KB" in table

    def test_na_column(self):
        cells = [
            cell("gcx", "Q6", 1000),
            Measurement(
                engine="flux-like", query="Q6", doc_bytes=1000, supported=False
            ),
        ]
        assert "n/a" in format_table1(cells)

    def test_timeout_cell(self):
        timed = cell("gcx", "Q8", 1000)
        timed.timed_out = True
        assert "timeout" in format_table1([timed])

    def test_missing_cells_render_as_dash(self):
        cells = [
            cell("gcx", "Q1", 1000),
            cell("gcx", "Q1", 2000),
            cell("naive-dom", "Q1", 1000),  # no 2000-byte cell
        ]
        table = format_table1(cells)
        assert "-" in table.splitlines()[-1]


class TestShapeReport:
    def test_flat_series_detected(self):
        cells = [
            cell("gcx", "Q1", 1000, hwm=400),
            cell("gcx", "Q1", 8000, hwm=410),
            cell("naive-dom", "Q1", 1000, hwm=9000),
            cell("naive-dom", "Q1", 8000, hwm=72000),
        ]
        report = shape_report(cells)
        assert "Q1: GCX memory flat" in report
        assert "[ok]" in report
        assert "[MISMATCH]" not in report

    def test_growth_flagged_for_non_join(self):
        cells = [
            cell("gcx", "Q1", 1000, hwm=400),
            cell("gcx", "Q1", 8000, hwm=3200),
        ]
        report = shape_report(cells)
        assert "[MISMATCH]" in report

    def test_join_expected_to_grow(self):
        cells = [
            cell("gcx", "Q8", 1000, hwm=400),
            cell("gcx", "Q8", 8000, hwm=3200),
        ]
        report = shape_report(cells)
        assert "[ok]" in report


class TestIsFlat:
    def test_single_point_is_flat(self):
        assert _is_flat([cell("gcx", "Q1", 1000)])

    def test_two_similar_points_flat(self):
        assert _is_flat(
            [cell("gcx", "Q1", 1000, hwm=100), cell("gcx", "Q1", 2000, hwm=104)]
        )

    def test_proportional_growth_not_flat(self):
        assert not _is_flat(
            [cell("gcx", "Q1", 1000, hwm=100), cell("gcx", "Q1", 8000, hwm=800)]
        )


class TestLatencyReport:
    def test_streaming_cells_listed(self):
        from repro.bench import latency_report

        cells = [
            cell("gcx", "Q1", 1000, seconds=0.4, first_output_seconds=0.01),
            cell("naive-dom", "Q1", 1000, seconds=0.5),
        ]
        report = latency_report(cells)
        assert "Q1 gcx" in report
        assert "first output after" in report
        assert "naive-dom" not in report  # no latency figure to show

    def test_largest_document_wins(self):
        from repro.bench import latency_report

        cells = [
            cell("gcx", "Q1", 1000, seconds=0.1, first_output_seconds=0.05),
            cell("gcx", "Q1", 8000, seconds=0.8, first_output_seconds=0.02),
        ]
        report = latency_report(cells)
        assert "0.02s" in report and "0.80s" in report

    def test_empty_when_nothing_streams(self):
        from repro.bench import latency_report

        report = latency_report([cell("naive-dom", "Q1", 1000)])
        assert "no streaming measurements" in report
