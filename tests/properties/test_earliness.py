"""Property: earliness is invisible except in the accounting.

For random documents and random well-scoped queries, the watermark
engine must produce byte-identical output to the conservative engine
(``EngineOptions(earliness=False)``), and it must never hold a produced
token longer (``tokens_held_before_emit`` on <= off).  The query
strategy exercises every construct the earliness pass touches: bare
variable output (the open watermark), path output, conditions (the
first-witness watermark), nesting, and sequences.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.engine import EngineOptions, GCXEngine

from tests.properties.strategies import documents, queries

FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

CONSERVATIVE = EngineOptions(earliness=False)


@FAST
@given(document=documents(max_depth=5), query=queries())
def test_earliness_matches_conservative_oracle(document, query):
    on = GCXEngine().run(query, document)
    off = GCXEngine(CONSERVATIVE).run(query, document)
    assert on.output == off.output
    assert on.stats.tokens_held_before_emit <= off.stats.tokens_held_before_emit
    assert off.stats.early_flushes == 0


@FAST
@given(document=documents(max_depth=5))
def test_subtree_output_streams_identically(document):
    """The open-watermark poster child: verbatim subtree output."""
    query = "<o>{for $x in /r/a return $x}</o>"
    on = GCXEngine().run(query, document)
    off = GCXEngine(CONSERVATIVE).run(query, document)
    assert on.output == off.output
    assert on.stats.tokens_held_before_emit <= off.stats.tokens_held_before_emit


@FAST
@given(document=documents(max_depth=5))
def test_first_witness_condition_matches_oracle(document):
    """The first-witness watermark: a condition decided at the first
    witnessing pair must not change what the guarded branch returns."""
    query = '<o>{for $x in /r/a return if ($x/b = "x") then $x/c else ()}</o>'
    on = GCXEngine().run(query, document)
    off = GCXEngine(CONSERVATIVE).run(query, document)
    assert on.output == off.output
    assert on.stats.tokens_held_before_emit <= off.stats.tokens_held_before_emit
