"""Multi-query differential properties: shared pass == sequential runs.

The multi-query engine's contract is purely observational: evaluating N
queries in one shared scan must be byte-identical, query by query, to N
independent single-query sessions (and therefore, by Theorem 1, to the
DOM oracle).  Two generators drive it:

* random *subsets and orderings* of the adapted XMark queries over the
  committed golden document — realistic standing-query mixes, including
  the Q8 join, stressing the union tree and the bitmask routing on real
  benchmark shapes;
* random synthetic (queries, document) pairs from the grammar-directed
  strategies — descendant axes, ``[1]`` consumption and promotion-guard
  clashes under arbitrary tree shapes, where a routing bug would show up
  as a missing or extra token in exactly one lane.

Both also assert the single-scan invariant: however many queries ride
along, the shared pass reads the document's token stream exactly once.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import MultiQuerySession, QuerySession
from repro.xmark.queries import XMARK_QUERIES
from repro.xmlio.lexer import tokenize

from tests.properties.strategies import documents, queries

FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

GOLDEN_DOC = (
    Path(__file__).parent.parent / "engine" / "goldens" / "document.xml"
).read_text(encoding="utf-8")

#: Sequential-run oracles, compiled once per process (the property then
#: re-runs warm sessions, exactly like a serving deployment would).
_XMARK_SESSIONS = {
    name: QuerySession(query.adapted) for name, query in XMARK_QUERIES.items()
}


class TestXMarkSubsets:
    @FAST
    @given(
        names=st.lists(
            st.sampled_from(sorted(XMARK_QUERIES)),
            min_size=1,
            max_size=len(XMARK_QUERIES),
            unique=True,
        )
    )
    def test_random_subset_matches_sequential_runs(self, names):
        session = MultiQuerySession(
            {name: XMARK_QUERIES[name].adapted for name in names}
        )
        stream = session.run_streaming(GOLDEN_DOC)
        from repro.xmlio import StringSink

        sinks = {name: StringSink() for name in names}
        for name, token in stream:
            sinks[name].write(token)
        for name in names:
            sinks[name].close()
            assert (
                sinks[name].getvalue()
                == _XMARK_SESSIONS[name].run(GOLDEN_DOC).output
            ), name
        assert stream.stats.tokens_read == sum(
            1 for _token in tokenize(GOLDEN_DOC)
        )


class TestSyntheticQueries:
    @FAST
    @given(
        query_texts=st.lists(queries(max_depth=2), min_size=1, max_size=3),
        document=documents(),
    )
    def test_random_queries_match_sequential_runs(self, query_texts, document):
        named = {f"q{i}": text for i, text in enumerate(query_texts)}
        results = MultiQuerySession(named).run(document)
        for name, text in named.items():
            assert results[name].output == QuerySession(text).run(document).output

    @FAST
    @given(
        query_texts=st.lists(queries(max_depth=2), min_size=2, max_size=4),
        document=documents(max_depth=5),
    )
    def test_single_scan_on_deep_documents(self, query_texts, document):
        named = {f"q{i}": text for i, text in enumerate(query_texts)}
        session = MultiQuerySession(named)
        stream = session.run_streaming(document)
        for _pair in stream:
            pass
        # Demand-driven runs may stop early (queries that never pull read
        # nothing) — the invariant is that the shared pass never reads
        # *more* than one scan, however many queries ride along.
        assert stream.stats.tokens_read <= sum(
            1 for _token in tokenize(document)
        )
        for name, result in stream.results.items():
            assert result.stats.role_accounting_balanced(), name
