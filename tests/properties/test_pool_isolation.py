"""Run-isolation under sharing: interleaved pool runs equal solo runs.

PR 1 established the run-isolation invariant for one session on one
thread; the pool now shares the compiled query and the lazy-DFA transition
table between *all* of its runs.  These properties drive two
:class:`~repro.engine.session.StreamingRun` instances from the same
long-lived pool token-by-token under a hypothesis-chosen interleaving
schedule and assert each run's output is byte-identical to its solo-run
output — i.e. the shared static state is observationally invisible.

The pools are module-lived on purpose: every example warms the same DFA
table further, so later examples run against heavily shared state.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import QuerySession, SessionPool
from repro.xmlio import StringSink

from tests.properties.strategies import documents

FAST = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Queries chosen to stress the shared matcher: descendant axes intern
#: document-shape-dependent DFA states, ``[1]`` steps force off-DFA
#: computes, and the child/descendant clash exercises the promotion guard.
QUERIES = [
    "<out>{for $a in //a return <hit>{for $b in $a//b return $b}</hit>}</out>",
    "<out>{for $x in /r/* return if (exists $x/c) then $x else ()}</out>",
    "<out>{for $a in /r/a return (for $b in //b return <b/>)}</out>",
]

_POOLS = {query: SessionPool(query, max_workers=2) for query in QUERIES}
_SOLO = {query: QuerySession(query) for query in QUERIES}


def _solo_output(query: str, document: str) -> str:
    return _SOLO[query].run(document).output


def _interleave(query: str, doc_a: str, doc_b: str, schedule: list[bool]):
    """Drive two pool runs token-by-token per ``schedule``, then drain."""
    pool = _POOLS[query]
    runs = [pool.run_streaming(doc_a), pool.run_streaming(doc_b)]
    sinks = [StringSink(), StringSink()]
    done = [False, False]
    for pick_b in schedule:
        index = 1 if pick_b else 0
        if done[index]:
            continue
        try:
            sinks[index].write(next(runs[index]))
        except StopIteration:
            done[index] = True
    for index in (0, 1):
        if not done[index]:
            for token in runs[index]:
                sinks[index].write(token)
    return sinks[0].getvalue(), sinks[1].getvalue()


class TestInterleavedPoolRuns:
    @FAST
    @given(
        query=st.sampled_from(QUERIES),
        doc_a=documents(),
        doc_b=documents(),
        schedule=st.lists(st.booleans(), min_size=0, max_size=60),
    )
    def test_each_run_equals_its_solo_output(
        self, query, doc_a, doc_b, schedule
    ):
        out_a, out_b = _interleave(query, doc_a, doc_b, schedule)
        assert out_a == _solo_output(query, doc_a)
        assert out_b == _solo_output(query, doc_b)

    @FAST
    @given(document=documents(), schedule=st.lists(st.booleans(), max_size=40))
    def test_same_document_twice_interleaved(self, document, schedule):
        """The degenerate case: a run must not see its twin's state even
        when both traverse identical inputs through identical DFA paths."""
        query = QUERIES[0]
        out_a, out_b = _interleave(query, document, document, schedule)
        expected = _solo_output(query, document)
        assert out_a == expected
        assert out_b == expected

    def test_pools_stayed_clean(self):
        """After all examples: nothing live, nothing left checked out."""
        for pool in _POOLS.values():
            stats = pool.stats
            assert stats.active_runs == 0
            assert stats.live_nodes == 0 and stats.live_bytes == 0
