"""Differential properties of the widened fragment (docs/JOINS.md).

Every construct the relational runtime added to the accepted fragment —
aggregate calls, positional predicates, quantified conditions — is driven
over random documents and checked byte-for-byte against the naive DOM
oracle, in every syntactic position the grammar admits (output paths,
aggregate arguments, condition operands, under random for-loop nests).

The aggregate tests additionally pin the tentpole's memory claim: a
root-anchored aggregate is answered entirely by the accumulator automaton,
with *zero* buffered subtree bytes, on every generated document.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.baselines import NaiveDomEngine
from repro.engine import EngineOptions, GCXEngine

from tests.properties.strategies import (
    aggregate_queries,
    documents,
    positional_queries,
    quantified_queries,
)

FAST = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def oracle(query: str, document: str) -> str:
    return NaiveDomEngine().run(query, document).output


class TestAggregates:
    @FAST
    @given(query=aggregate_queries(), document=documents())
    def test_matches_oracle(self, query, document):
        assert GCXEngine().run(query, document).output == oracle(
            query, document
        )

    @FAST
    @given(document=documents(max_depth=5))
    def test_root_anchored_aggregates_buffer_nothing(self, document):
        for fn in ("count", "sum", "avg"):
            for path in ("$root//a", "$root/r/b", "$root//c/text()"):
                query = f"<out>{{{fn}({path})}}</out>"
                result = GCXEngine().run(query, document)
                assert result.output == oracle(query, document)
                assert result.stats.hwm_bytes == 0, (fn, path)
                assert result.stats.hwm_nodes == 0, (fn, path)


class TestPositionalPredicates:
    @FAST
    @given(query=positional_queries(), document=documents())
    def test_matches_oracle(self, query, document):
        assert GCXEngine().run(query, document).output == oracle(
            query, document
        )

    @FAST
    @given(query=positional_queries(), document=documents())
    def test_paper_base_configuration_matches_oracle(self, query, document):
        options = EngineOptions(
            aggregate_roles=False,
            early_updates=False,
            eliminate_redundant_roles=False,
        )
        assert GCXEngine(options).run(query, document).output == oracle(
            query, document
        )


class TestQuantifiedConditions:
    @FAST
    @given(query=quantified_queries(), document=documents())
    def test_matches_oracle(self, query, document):
        assert GCXEngine().run(query, document).output == oracle(
            query, document
        )
