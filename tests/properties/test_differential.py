"""Differential property tests: GCX vs the DOM oracle on random inputs.

This is the strongest correctness evidence in the suite: Theorem 1 says
evaluating the rewritten query over the incrementally projected, actively
garbage-collected buffer yields the same result as evaluating the original
query over the full document.  We check it on thousands of random
(query, document) pairs, across every engine configuration, together with
the role-accounting safety invariants of Section 3.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.baselines import NaiveDomEngine
from repro.engine import EngineOptions, GCXEngine

from tests.properties.strategies import documents, queries

FAST = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def oracle(query: str, document: str) -> str:
    return NaiveDomEngine().run(query, document).output


class TestTheorem1:
    @FAST
    @given(query=queries(), document=documents())
    def test_default_configuration_matches_oracle(self, query, document):
        result = GCXEngine().run(query, document)
        assert result.output == oracle(query, document)

    @FAST
    @given(query=queries(), document=documents())
    def test_paper_base_configuration_matches_oracle(self, query, document):
        options = EngineOptions(
            aggregate_roles=False,
            early_updates=False,
            eliminate_redundant_roles=False,
        )
        result = GCXEngine(options).run(query, document)
        assert result.output == oracle(query, document)

    @FAST
    @given(query=queries(max_depth=2), document=documents(max_depth=5))
    def test_deep_documents(self, query, document):
        assert GCXEngine().run(query, document).output == oracle(query, document)


class TestSafetyInvariants:
    """Requirements (1) and (2) of Section 3, dynamically checked.

    ``strict=True`` already raises inside the engine on any violation
    (undefined role removal, unbalanced accounting, non-empty buffer); the
    assertions here re-state the postconditions explicitly.
    """

    @FAST
    @given(query=queries(), document=documents())
    def test_role_accounting_balances(self, query, document):
        result = GCXEngine().run(query, document)
        stats = result.stats
        assert stats.role_accounting_balanced()
        assert stats.live_role_instances == 0
        if result.exhausted_input:
            # With unread input, marked unfinished nodes may legitimately
            # remain (their closing tags never arrive); fully read inputs
            # must leave the buffer empty.
            assert stats.live_nodes == 0

    @FAST
    @given(query=queries(), document=documents())
    def test_buffer_never_exceeds_document(self, query, document):
        """The projected buffer is never larger than the full document."""
        result = GCXEngine().run(query, document)
        dom_nodes = NaiveDomEngine().run(query, document).stats.hwm_nodes
        assert result.stats.hwm_nodes <= dom_nodes + 1


class TestOptimizationEquivalence:
    @FAST
    @given(query=queries(), document=documents())
    def test_aggregate_roles_do_not_change_results(self, query, document):
        on = GCXEngine(EngineOptions(aggregate_roles=True)).run(query, document)
        off = GCXEngine(EngineOptions(aggregate_roles=False)).run(query, document)
        assert on.output == off.output

    @FAST
    @given(query=queries(), document=documents())
    def test_redundancy_elimination_does_not_change_results(self, query, document):
        on = GCXEngine(EngineOptions(eliminate_redundant_roles=True)).run(
            query, document
        )
        off = GCXEngine(EngineOptions(eliminate_redundant_roles=False)).run(
            query, document
        )
        assert on.output == off.output

    @FAST
    @given(query=queries(), document=documents())
    def test_early_updates_do_not_change_results(self, query, document):
        on = GCXEngine(EngineOptions(early_updates=True)).run(query, document)
        off = GCXEngine(EngineOptions(early_updates=False)).run(query, document)
        assert on.output == off.output
