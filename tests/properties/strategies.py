"""Hypothesis strategies: random XML documents and random XQ queries.

Documents are unranked trees over a small tag alphabet with short text.
Queries are grammar-directed: generation threads the variable environment,
so every generated query is well-scoped by construction.  Together they
drive the differential tests against the DOM oracle.
"""

from __future__ import annotations

from hypothesis import strategies as st

TAGS = ("a", "b", "c", "d")
WORDS = ("x", "yy", "z1", "7", "42")


# ---------------------------------------------------------------------------
# documents
# ---------------------------------------------------------------------------


def documents(max_depth: int = 4, max_children: int = 4) -> st.SearchStrategy[str]:
    """Random well-formed documents with root tag ``r``."""

    def element(depth: int) -> st.SearchStrategy[str]:
        if depth <= 0:
            leaf_text = st.sampled_from(WORDS).map(lambda w: w)
            return st.sampled_from(TAGS).flatmap(
                lambda tag: st.one_of(
                    st.just(f"<{tag}/>"),
                    leaf_text.map(lambda w: f"<{tag}>{w}</{tag}>"),
                )
            )
        children = st.lists(
            st.deferred(lambda: element(depth - 1)),
            min_size=0,
            max_size=max_children,
        )
        return st.tuples(st.sampled_from(TAGS), children).map(
            lambda pair: f"<{pair[0]}>{''.join(pair[1])}</{pair[0]}>"
            if pair[1]
            else f"<{pair[0]}/>"
        )

    body = st.lists(element(max_depth - 1), min_size=0, max_size=max_children)
    return body.map(lambda items: "<r>" + "".join(items) + "</r>")


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


def _step() -> st.SearchStrategy[str]:
    test = st.sampled_from(TAGS + ("*",))
    return st.tuples(st.sampled_from(("/", "//")), test).map("".join)


def _path(max_steps: int = 2) -> st.SearchStrategy[str]:
    return st.lists(_step(), min_size=1, max_size=max_steps).map("".join)


def _condition(env: tuple[str, ...], depth: int) -> st.SearchStrategy[str]:
    var = st.sampled_from(env)
    atoms = [
        st.just("true()"),
        st.tuples(var, _path()).map(lambda p: f"exists {p[0]}{p[1]}"),
        st.tuples(
            var, _path(), st.sampled_from(("=", "<", ">=")), st.sampled_from(WORDS)
        ).map(
            lambda p: f'{p[0]}{p[1]} {p[2]} "{p[3]}"'
        ),
    ]
    if len(env) >= 2:
        atoms.append(
            st.tuples(var, _path(), var, _path()).map(
                lambda p: f"{p[0]}{p[1]} = {p[2]}{p[3]}"
            )
        )
    atom = st.one_of(atoms)
    if depth <= 0:
        return atom
    sub = _condition(env, depth - 1)
    return st.one_of(
        atom,
        st.tuples(sub, sub).map(lambda p: f"({p[0]} and {p[1]})"),
        st.tuples(sub, sub).map(lambda p: f"({p[0]} or {p[1]})"),
        sub.map(lambda c: f"not({c})"),
    )


def _expr(
    env: tuple[str, ...], depth: int, counter: list[int]
) -> st.SearchStrategy[str]:
    var = st.sampled_from(env)
    leaves = [
        st.just("()"),
        st.tuples(var, _path()).map("".join),  # path output
        st.sampled_from(TAGS).map(lambda t: f"<{t}/>"),
    ]
    if len(env) > 1:  # bare output of a bound (non-root) variable
        leaves.append(st.sampled_from(env[1:]))
    if depth <= 0:
        return st.one_of(leaves)

    def for_loop(source: str) -> st.SearchStrategy[str]:
        counter[0] += 1
        fresh = f"$v{counter[0]}"
        inner = _expr(env + (fresh,), depth - 1, counter)
        return st.tuples(_path(), inner).map(
            lambda p: f"for {fresh} in {source}{p[0]} return {p[1]}"
        )

    sub = _expr(env, depth - 1, counter)
    return st.one_of(
        *leaves,
        var.flatmap(for_loop),
        st.tuples(_condition(env, 1), sub).map(
            lambda p: f"if ({p[0]}) then {p[1]} else ()"
        ),
        st.tuples(_condition(env, 0), sub, sub).map(
            lambda p: f"if ({p[0]}) then {p[1]} else {p[2]}"
        ),
        st.tuples(sub, sub).map(lambda p: f"({p[0]}, {p[1]})"),
        st.tuples(st.sampled_from(TAGS), sub).map(
            lambda p: f"<{p[0]}>{{{p[1]}}}</{p[0]}>"
        ),
    )


def queries(max_depth: int = 3) -> st.SearchStrategy[str]:
    """Random well-scoped XQ queries with free variable $root."""
    return st.builds(
        lambda body: f"<out>{{{body}}}</out>", _expr(("$root",), max_depth, [0])
    )


# ---------------------------------------------------------------------------
# the widened fragment: aggregates, positional predicates, quantifiers
# ---------------------------------------------------------------------------


def _positional_path(max_plain: int = 1) -> st.SearchStrategy[str]:
    """A path with exactly one ``[1]``/``[last()]`` positional step."""
    positional = st.tuples(
        st.sampled_from(("/", "//")),
        st.sampled_from(TAGS + ("*",)),
        st.sampled_from(("[1]", "[last()]")),
    ).map("".join)
    plain = st.lists(_step(), min_size=0, max_size=max_plain)
    return st.tuples(plain, positional, plain).map(
        lambda p: "".join(p[0]) + p[1] + "".join(p[2])
    )


def _loop_nest(max_loops: int = 2) -> st.SearchStrategy[tuple[str, str]]:
    """``(prefix, innermost_var)``: 0..N nested for-loops over $root."""
    return st.lists(_path(), min_size=0, max_size=max_loops).map(
        lambda paths: (
            "".join(
                f"for $w{i + 1} in "
                f"{'$root' if i == 0 else f'$w{i}'}{path} return "
                for i, path in enumerate(paths)
            ),
            f"$w{len(paths)}" if paths else "$root",
        )
    )


def aggregate_queries() -> st.SearchStrategy[str]:
    """``count``/``sum``/``avg`` calls under a random for-loop nest."""
    return st.tuples(
        _loop_nest(),
        st.sampled_from(("count", "sum", "avg")),
        st.one_of(_path(), _positional_path()),
        st.sampled_from(("", "/text()")),
    ).map(
        lambda p: f"<out>{{{p[0][0]}{p[1]}({p[0][1]}{p[2]}{p[3]})}}</out>"
    )


def positional_queries() -> st.SearchStrategy[str]:
    """Output paths carrying one positional step, possibly under loops."""
    return st.tuples(
        _loop_nest(),
        _positional_path(),
        st.sampled_from(("", "/text()")),
    ).map(lambda p: f"<out>{{{p[0][0]}{p[0][1]}{p[1]}{p[2]}}}</out>")


def _satisfies_condition(var: str, depth: int = 1) -> st.SearchStrategy[str]:
    """A condition over the quantified variable ``var``."""
    word = st.sampled_from(WORDS)
    atom = st.one_of(
        _path().map(lambda p: f"exists {var}{p}"),
        _path().map(lambda p: f"not(exists {var}{p})"),
        st.tuples(_path(), word).map(lambda p: f'{var}{p[0]} = "{p[1]}"'),
        word.map(lambda w: f'{var}/text() = "{w}"'),
    )
    if depth <= 0:
        return atom
    sub = _satisfies_condition(var, depth - 1)
    return st.one_of(
        atom,
        st.tuples(sub, sub).map(lambda p: f"({p[0]} and {p[1]})"),
        st.tuples(sub, sub).map(lambda p: f"({p[0]} or {p[1]})"),
    )


def quantified_queries() -> st.SearchStrategy[str]:
    """``some``/``every … satisfies`` gates on random documents."""
    return st.tuples(
        _loop_nest(),
        st.sampled_from(("some", "every")),
        _path(),
        _satisfies_condition("$q"),
    ).map(
        lambda p: f"<out>{{{p[0][0]}"
        f"if ({p[1]} $q in {p[0][1]}{p[2]} satisfies {p[3]}) "
        f"then <y/> else <n/>}}</out>"
    )
