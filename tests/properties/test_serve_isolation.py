"""Serving isolation property: interleaved clients never cross-deliver.

Hypothesis builds a scripted plan per client (register / inline eval /
chunked upload / cancelled upload / malformed document / ping) and an
arbitrary frame-level interleaving across 2-4 concurrent connections:
the send phase pushes every client's next frame in the chosen global
order *without reading replies* (the protocol allows pipelining), so
passes genuinely overlap on the server.  The read phase then verifies
each connection's full reply stream in isolation:

* every ``result``/``done`` frame names the client's own alias — results
  are never delivered across connections;
* each pass's fragments concatenate to the solo
  :class:`~repro.engine.session.QuerySession` oracle output — shared
  server state is observationally invisible;
* the stream terminates and every pass settles — no deadlock (the
  client socket timeout is the deadlock verdict);
* after every example the standing pools report zero outstanding
  checkouts (the RunOwner invariant).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import QuerySession

from repro.serve.testing import ServerFixture

SLOW_IO = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.function_scoped_fixture,
    ],
)

QUERIES = [
    "<out>{ for $x in /a/b return <hit>{ $x/c }</hit> }</out>",
    "<all>{ for $y in //c return $y }</all>",
]

_ORACLES = [QuerySession(query) for query in QUERIES]


def make_document(matches: int, salt: int) -> str:
    body = "".join(f"<b><c>v{salt}-{i}</c></b>" for i in range(matches))
    return f"<a>{body}</a>"


# One client action: (kind, query_index, document_size, salt).
actions = st.tuples(
    st.sampled_from(["eval", "upload", "cancel", "bad", "ping"]),
    st.integers(min_value=0, max_value=len(QUERIES) - 1),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=99),
)

plans = st.lists(  # one inner list of actions per client
    st.lists(actions, min_size=1, max_size=5), min_size=2, max_size=4
)

schedules = st.lists(
    st.integers(min_value=0, max_value=3), min_size=0, max_size=80
)


def compile_plan(plan):
    """A client's plan -> (wire frames, expected reply checks)."""
    frames = []
    expects = []
    for index in range(len(QUERIES)):
        frames.append(
            {"op": "register", "id": f"q{index}", "query": QUERIES[index]}
        )
        expects.append(("registered", f"q{index}"))
    for kind, query_index, size, salt in plan:
        alias = f"q{query_index}"
        if kind == "eval":
            document = make_document(size, salt)
            frames.append({"op": "eval", "id": alias, "doc": document})
            expects.append(("pass", alias, query_index, document))
        elif kind == "upload":
            document = make_document(size, salt)
            frames.append({"op": "begin", "id": alias})
            step = max(1, len(document) // 3)
            for start in range(0, len(document), step):
                frames.append(
                    {"op": "chunk", "data": document[start : start + step]}
                )
            frames.append({"op": "end"})
            expects.append(("pass", alias, query_index, document))
        elif kind == "cancel":
            frames.append({"op": "begin", "id": alias})
            frames.append({"op": "chunk", "data": "<a><b>"})
            frames.append({"op": "cancel"})
            expects.append(("cancelled",))
        elif kind == "bad":
            frames.append(
                {"op": "eval", "id": alias, "doc": f"<a><b><c>x{salt}"}
            )
            expects.append(("errpass", alias))
        else:  # ping
            frames.append({"op": "ping"})
            expects.append(("pong",))
    return frames, expects


def verify_replies(client, expects) -> None:
    for expect in expects:
        if expect[0] == "registered":
            frame = client.recv_frame()
            assert frame == {
                "type": "registered",
                "id": expect[1],
                "cached": frame["cached"],
            }
        elif expect[0] == "pong":
            assert client.recv_frame() == {"type": "pong"}
        elif expect[0] == "cancelled":
            assert client.recv_frame() == {"type": "cancelled"}
        elif expect[0] == "pass":
            _kind, alias, query_index, document = expect
            fragments = []
            last_seq = 0
            while True:
                frame = client.recv_frame()
                assert frame is not None, "connection closed mid-pass"
                if frame["type"] == "result":
                    assert frame["id"] == alias  # no cross-delivery
                    assert frame["seq"] == last_seq + 1  # ordered
                    last_seq = frame["seq"]
                    fragments.append(frame["fragment"])
                    continue
                assert frame["type"] == "done", frame
                assert frame["id"] == alias
                break
            expected = _ORACLES[query_index].run(document).output
            assert "".join(fragments) == expected
        else:  # errpass
            _kind, alias = expect
            while True:
                frame = client.recv_frame()
                assert frame is not None, "connection closed mid-pass"
                if frame["type"] == "result":
                    assert frame["id"] == alias
                    continue
                assert frame["type"] == "error", frame
                assert frame["code"] == "document-error"
                assert frame["fatal"] is False
                break


@pytest.fixture(scope="module")
def fixture():
    with ServerFixture(
        eval_workers=4, bridge_depth=4, request_timeout=30.0
    ) as fixture:
        yield fixture


class TestInterleavedClientIsolation:
    @SLOW_IO
    @given(plans=plans, schedule=schedules)
    def test_no_cross_delivery_no_deadlock(self, fixture, plans, schedule):
        compiled = [compile_plan(plan) for plan in plans]
        clients = [fixture.client(timeout=15.0) for _ in compiled]
        try:
            pending = [list(frames) for frames, _expects in compiled]
            # Send phase: hypothesis interleaves frames across clients
            # (pipelined; nothing is read back yet).
            for pick in schedule:
                queue = pending[pick % len(pending)]
                if queue:
                    clients[pick % len(pending)].send_frame(queue.pop(0))
            for index, queue in enumerate(pending):  # flush the rest
                for frame in queue:
                    clients[index].send_frame(frame)
            # Read phase: every connection's stream must verify alone.
            for index, (_frames, expects) in enumerate(compiled):
                verify_replies(clients[index], expects)
        finally:
            for client in clients:
                client.close()
        fixture.assert_clean(timeout=10.0)

    def test_server_survived_the_whole_property_run(self, fixture):
        """After all examples: still serving, nothing checked out."""
        with fixture.client() as client:
            assert client.ping() == {"type": "pong"}
        assert fixture.outstanding_checkouts() == 0
