"""Property tests on the substrates: tokenizer, trees, projection, paths."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import pattern_contains
from repro.xmlio import parse_tree, serialize_tokens, serialize_tree, tokenize
from repro.xmlio.tree import project
from repro.xquery import parse_expr, unparse
from repro.xquery.paths import NodeTest, Step, child, descendant, dos_node

from tests.properties.strategies import documents, queries

FAST = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTokenizerProperties:
    @FAST
    @given(document=documents(max_depth=5))
    def test_serialize_tokenize_roundtrip(self, document):
        tokens = list(tokenize(document))
        rendered = serialize_tokens(tokens)
        assert list(tokenize(rendered)) == tokens

    @FAST
    @given(document=documents())
    def test_tree_roundtrip(self, document):
        tree = parse_tree(document)
        assert parse_tree(serialize_tree(tree)).size == tree.size

    @FAST
    @given(document=documents())
    def test_balanced_tags(self, document):
        from repro.xmlio import EndTag, StartTag

        depth = 0
        for token in tokenize(document):
            if isinstance(token, StartTag):
                depth += 1
            elif isinstance(token, EndTag):
                depth -= 1
            assert depth >= 0
        assert depth == 0


class TestProjectionProperties:
    """Definition 1's invariants on random trees and keep-sets."""

    @FAST
    @given(document=documents(), data=st.data())
    def test_projection_subset_and_order(self, document, data):
        tree = parse_tree(document)
        nodes = list(tree.descendants())
        if not nodes:
            return
        keep = set(
            data.draw(st.lists(st.sampled_from(nodes), unique=True, max_size=8))
        )
        projected = project(tree, keep)
        kept_orders = sorted(node.order for node in projected.descendants())
        assert kept_orders == sorted(node.order for node in keep)
        # Document order is preserved.
        assert [n.order for n in projected.iter_subtree()] == sorted(
            n.order for n in projected.iter_subtree()
        )

    @FAST
    @given(document=documents(), data=st.data())
    def test_projection_preserves_ancestry(self, document, data):
        tree = parse_tree(document)
        nodes = list(tree.descendants())
        if len(nodes) < 2:
            return
        keep = set(
            data.draw(
                st.lists(st.sampled_from(nodes), unique=True, min_size=2, max_size=8)
            )
        )
        projected = project(tree, keep)
        original_by_order = {node.order: node for node in tree.iter_subtree()}
        for node in projected.descendants():
            if node.parent is not None and node.parent.order != tree.order:
                original = original_by_order[node.order]
                ancestors = {a.order for a in original.ancestors()}
                assert node.parent.order in ancestors | {tree.order}


class TestUnparseProperty:
    @FAST
    @given(query=queries())
    def test_parse_unparse_parse_identity(self, query):
        first = parse_expr(query)
        assert parse_expr(unparse(first)) == first


class TestContainmentProperties:
    STEPS = st.one_of(
        st.sampled_from(["a", "b", "*"]).map(child),
        st.sampled_from(["a", "b", "*"]).map(descendant),
    )
    PATHS = st.lists(STEPS, min_size=1, max_size=3).map(tuple)

    @FAST
    @given(path=PATHS)
    def test_reflexive(self, path):
        assert pattern_contains(path, path)

    @FAST
    @given(path=PATHS)
    def test_dos_extension_contains_base(self, path):
        assert pattern_contains(path + (dos_node(),), path)

    @FAST
    @given(a=PATHS, b=PATHS, c=PATHS)
    def test_transitive(self, a, b, c):
        if pattern_contains(a, b) and pattern_contains(b, c):
            assert pattern_contains(a, c)

    @FAST
    @given(path=PATHS)
    def test_star_generalization(self, path):
        generalized = tuple(
            Step(step.axis, NodeTest(child("*").test.kind), step.first)
            for step in path
        )
        assert pattern_contains(generalized, path)
