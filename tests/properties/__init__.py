"""Tests for the properties layer."""
