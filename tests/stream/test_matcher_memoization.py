"""Tests for the matcher's lazy-DFA transition table (Section 2).

Covers the PR 3 satellite requirements: transition-table hit counts on
repeated tags, and byte-identical preprojection output between a memoized
(warm) matcher and a cold one.
"""

from __future__ import annotations

from repro.analysis import CompileOptions, compile_query
from repro.buffer import BufferTree
from repro.stream import StreamMatcher, StreamPreprojector
from repro.xmark import generate_xmark
from repro.xmlio import tokenize

QUERY = (
    "<results>{"
    "for $i in /site/regions/europe/item return <hit>{$i/name}</hit>"
    "}</results>"
)


def compiled_tree():
    return compile_query(QUERY, CompileOptions()).projection_tree


def project(document: str, tree=None, matcher: StreamMatcher | None = None):
    """Run preprojection; returns (buffer, preprojector)."""
    buffer = BufferTree(strict=False)
    preprojector = StreamPreprojector(
        tokenize(document),
        tree if tree is not None else compiled_tree(),
        buffer,
        matcher=matcher,
    )
    preprojector.run_to_completion()
    return buffer, preprojector


class TestHitCounts:
    def test_repeated_tags_hit_the_table(self):
        document = (
            "<site><regions><europe>"
            + "<item><name>n</name></item>" * 50
            + "</europe></regions></site>"
        )
        _buffer, preprojector = project(document)
        matcher = preprojector.matcher
        # 50 repetitions of the same three tags: after the first item, every
        # lookup is a table hit.
        assert matcher.table_misses > 0
        assert matcher.table_hits > matcher.table_misses * 10
        total = matcher.table_hits + matcher.table_misses
        assert matcher.table_hits / total > 0.9

    def test_distinct_contexts_create_distinct_states(self):
        document = (
            "<site><regions><europe><item><name>n</name></item></europe>"
            "</regions></site>"
        )
        _buffer, preprojector = project(document)
        matcher = preprojector.matcher
        # Lazy construction: only states the document actually exposes.
        assert 0 < matcher.state_count < 20
        assert matcher.table_size >= matcher.table_misses - matcher.off_dfa_computes

    def test_second_document_reuses_the_warm_table(self):
        tree = compiled_tree()
        document = (
            "<site><regions><europe><item><name>a</name></item></europe>"
            "</regions></site>"
        )
        _buffer1, first = project(document, tree=tree)
        warm_matcher = first.matcher
        misses_after_first = warm_matcher.table_misses
        buffer2 = BufferTree(strict=False)
        preprojector2 = StreamPreprojector(
            tokenize(document), tree, buffer2, matcher=warm_matcher
        )
        preprojector2.run_to_completion()
        # The same document adds zero new transitions.
        assert warm_matcher.table_misses == misses_after_first

    def test_xmark_hit_rate_is_high(self, xmark_doc_small):
        _buffer, preprojector = project(xmark_doc_small)
        matcher = preprojector.matcher
        total = matcher.table_hits + matcher.table_misses
        # Every open tag and text token goes through the table (end tags
        # only pop the stack, so they never consult the matcher).
        assert 0 < total < preprojector.buffer.stats.tokens_read
        assert matcher.table_hits / total > 0.95


class TestMemoizedEqualsCold:
    def test_warm_matcher_produces_identical_preprojection(self, xmark_doc_small):
        tree = compiled_tree()
        cold_buffer, _ = project(xmark_doc_small, tree=tree)
        # Warm: reuse a matcher that already saw the document once.
        _b, warmed = project(xmark_doc_small, tree=tree)
        warm_buffer = BufferTree(strict=False)
        preprojector = StreamPreprojector(
            tokenize(xmark_doc_small), tree, warm_buffer, matcher=warmed.matcher
        )
        preprojector.run_to_completion()
        assert warmed.matcher.table_hits > warmed.matcher.table_misses
        # Byte-identical buffered projection, roles included.
        assert warm_buffer.format_contents() == cold_buffer.format_contents()

    def test_generated_documents_identical_across_seeds(self):
        tree = compiled_tree()
        for seed in (3, 5):
            document = generate_xmark(0.0005, seed=seed)
            cold_buffer, _ = project(document, tree=tree)
            warm_buffer, _ = project(document, tree=tree)
            assert cold_buffer.format_contents() == warm_buffer.format_contents()


class TestOffDfaPath:
    def test_first_witness_steps_bypass_the_table(self):
        """[1] steps force direct computation; output must stay correct."""
        query = (
            "<o>{for $b in /site/b return "
            "if (exists($b/p)) then <hit/> else <miss/>}</o>"
        )
        tree = compile_query(query, CompileOptions()).projection_tree
        document = "<site><b><p>1</p><p>2</p></b><b><p>3</p></b></site>"
        buffer, preprojector = project(document, tree=tree)
        contents = buffer.format_contents()
        assert contents  # something was preserved
        # Consumptions happened, so some tokens computed off-DFA.
        if preprojector.matcher.off_dfa_computes:
            # A cold rerun still agrees exactly.
            buffer2, _ = project(document, tree=tree)
            assert buffer2.format_contents() == contents


class TestSharedMatcherGuard:
    def test_aggregate_flag_mismatch_is_rejected(self):
        tree = compiled_tree()
        matcher = StreamMatcher(tree, aggregate_roles=True)
        try:
            StreamPreprojector(
                tokenize("<site/>"),
                tree,
                BufferTree(strict=False),
                aggregate_roles=False,
                matcher=matcher,
            )
        except ValueError as error:
            assert "aggregate_roles" in str(error)
        else:
            raise AssertionError("mismatched matcher was accepted")


class TestSessionMatcherCap:
    def test_bloated_matcher_is_replaced_between_runs(self, monkeypatch):
        from repro.engine import session as session_module
        from repro.engine.session import QuerySession

        # A small cap keeps the adversarial document shallow enough for
        # the evaluator's per-level recursion.
        monkeypatch.setattr(session_module, "MATCHER_STATE_CAP", 64)
        session = QuerySession("<out>{for $n in //x//name return $n}</out>")
        first = session._matcher
        # Nested matches of the descendant step intern roughly one DFA
        # state per nesting level: a deep document inflates past the cap.
        depth = 100
        deep = "<site>" + "<x>" * depth + "</x>" * depth + "</site>"
        session.run(deep)
        assert first.state_count > 64
        session.run("<site><name>n</name></site>")
        assert session._matcher is not first
        assert session._matcher.state_count <= 64
