"""The shared-stream dispatcher: routing, parking, retiring, one scan."""

from __future__ import annotations

import pytest

from repro.analysis import compile_query
from repro.buffer.buffer import BufferTree
from repro.stream.preprojector import ProjectionLane, StreamPreprojector
from repro.stream.shared import SharedPreprojector
from repro.xmlio.lexer import tokenize

DOC = (
    "<r>"
    "<a><x>keep-a</x><noise><deep>skip</deep></noise></a>"
    "<b><y>keep-b</y></b>"
    "<c>plain</c>"
    "</r>"
)


def lane_for(query: str) -> ProjectionLane:
    tree = compile_query(query).projection_tree
    return ProjectionLane(tree, BufferTree(strict=False))


def shared_over(document: str, *queries: str) -> SharedPreprojector:
    lanes = [lane_for(query) for query in queries]
    return SharedPreprojector(tokenize(document), lanes)


QUERY_A = "<o>{for $a in /r/a return $a/x}</o>"
QUERY_B = "<o>{for $b in /r/b return $b/y}</o>"


class TestSingleScan:
    def test_token_count_is_one_document_scan(self):
        shared = shared_over(DOC, QUERY_A, QUERY_B)
        shared.run_to_completion()
        assert shared.tokens_read == sum(1 for _token in tokenize(DOC))
        assert shared.exhausted
        for lane in shared.lanes:
            assert lane.exhausted
            assert lane.depth == 0

    def test_single_lane_equals_plain_preprojector(self):
        """The N=1 case: same buffered shape as StreamPreprojector."""
        shared = shared_over(DOC, QUERY_A)
        shared.run_to_completion()
        tree = compile_query(QUERY_A).projection_tree
        solo = StreamPreprojector(tokenize(DOC), tree, BufferTree(strict=False))
        solo.run_to_completion()
        assert (
            shared.lanes[0].buffer.format_contents()
            == solo.buffer.format_contents()
        )


class TestRouting:
    def test_lanes_receive_only_their_regions(self):
        shared = shared_over(DOC, QUERY_A, QUERY_B)
        shared.run_to_completion()
        a_tokens = shared.lanes[0].buffer.stats.tokens_read
        b_tokens = shared.lanes[1].buffer.stats.tokens_read
        # Each lane is withheld the other's subtree (and <c>'s), so both
        # see proper subsets of the scan.
        assert a_tokens < shared.tokens_read
        assert b_tokens < shared.tokens_read
        # Lane A must also skip the irrelevant <noise> subtree inside <a>.
        solo_tokens = sum(1 for _token in tokenize(DOC))
        assert a_tokens < solo_tokens

    def test_parked_lane_reactivates_after_its_subtree(self):
        shared = shared_over(DOC, QUERY_A, QUERY_B)
        parked_seen = False
        while shared.pull():
            if shared.parked_count:
                parked_seen = True
        assert parked_seen
        assert shared.parked_count == 0  # all parks unwound by stream end
        assert shared.active_mask == 0b11

    def test_routing_preserves_buffered_content(self):
        """Withheld tokens must be exactly the ones projection drops."""
        for query in (QUERY_A, QUERY_B):
            shared = shared_over(DOC, QUERY_A, QUERY_B)
            shared.run_to_completion()
            tree = compile_query(query).projection_tree
            solo = StreamPreprojector(
                tokenize(DOC), tree, BufferTree(strict=False)
            )
            solo.run_to_completion()
            index = 0 if query is QUERY_A else 1
            assert (
                shared.lanes[index].buffer.format_contents()
                == solo.buffer.format_contents()
            )


class TestRetire:
    def test_retired_lane_stops_receiving_tokens(self):
        shared = shared_over(DOC, QUERY_A, QUERY_B)
        for _count in range(3):
            shared.pull()
        before = shared.lanes[0].buffer.stats.tokens_read
        shared.retire(0)
        shared.run_to_completion()
        assert shared.lanes[0].buffer.stats.tokens_read == before
        assert not shared.lanes[0].exhausted  # no stream-end bookkeeping
        assert shared.lanes[1].exhausted

    def test_retire_while_parked_skips_the_reactivation(self):
        shared = shared_over(DOC, QUERY_A, QUERY_B)
        # Drive until lane B parks (inside <a>'s subtree), then retire it.
        while shared.pull():
            if not shared.active_mask & 0b10:
                break
        assert shared.parked_count >= 1
        shared.retire(1)
        before = shared.lanes[1].buffer.stats.tokens_read
        shared.run_to_completion()
        assert shared.lanes[1].buffer.stats.tokens_read == before
        assert not shared.active_mask & 0b10


class TestConstruction:
    def test_empty_lane_list_is_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            SharedPreprojector(tokenize(DOC), [])

    def test_view_exposes_the_lane_surface(self):
        shared = shared_over(DOC, QUERY_A)
        view = shared.view(0)
        assert view.depth == 0
        assert not view.exhausted
        assert view.buffer is shared.lanes[0].buffer
        while view.pull():
            pass
        assert view.exhausted
