"""Tests for the stream layer."""
