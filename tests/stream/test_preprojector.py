"""Preprojector tests: incremental projection, preservation, cancellation."""


from repro.analysis import CompileOptions, compile_query
from repro.buffer import BufferTree
from repro.stream import StreamPreprojector
from repro.xmlio import tokenize

from tests.helpers import INTRO_QUERY

PAPER_OPTIONS = CompileOptions(early_updates=False, eliminate_redundant=False)


def projector_for(query_text, document, *, options=PAPER_OPTIONS, aggregate=False):
    compiled = compile_query(query_text, options)
    buffer = BufferTree(strict=False)
    preprojector = StreamPreprojector(
        tokenize(document), compiled.projection_tree, buffer, aggregate_roles=aggregate
    )
    return compiled, buffer, preprojector


class TestIncrementality:
    def test_pull_processes_one_token(self):
        _c, buffer, pp = projector_for(INTRO_QUERY, "<bib><book/></bib>")
        assert buffer.stats.tokens_read == 0
        pp.pull()
        assert buffer.stats.tokens_read == 1
        assert buffer.format_contents() == ["bib{r2}"]

    def test_pull_returns_false_at_eof(self):
        _c, _buffer, pp = projector_for(INTRO_QUERY, "<bib/>")
        assert pp.pull() is True  # <bib>
        assert pp.pull() is True  # </bib>
        assert pp.pull() is False
        assert pp.exhausted

    def test_document_finished_at_eof(self):
        _c, buffer, pp = projector_for(INTRO_QUERY, "<bib/>")
        pp.run_to_completion()
        assert buffer.document.finished

    def test_depth_tracking(self):
        _c, _buffer, pp = projector_for(INTRO_QUERY, "<bib><book><title/></book></bib>")
        pp.pull()  # <bib>
        assert pp.depth == 1
        pp.pull()  # <book>
        assert pp.depth == 2


class TestProjectionDecisions:
    def test_irrelevant_elements_dropped(self):
        """Children of the bib grandchildren are kept only via dos roles;
        unrelated structure outside /bib is dropped entirely."""
        _c, buffer, pp = projector_for(
            "<r>{for $b in /bib/book return $b/title}</r>",
            "<bib><junk><deep/></junk><book><title/><noise/></book></bib>",
        )
        pp.run_to_completion()
        labels = [line.strip().split("{")[0] for line in buffer.format_contents()]
        assert "junk" not in labels
        assert "deep" not in labels
        assert "noise" not in labels
        assert "title" in labels

    # Note: in the intro query the dos::node() dependency n5 forces *all*
    # bib children to be buffered with complete subtrees (the paper says so
    # explicitly), so first-witness trimming is only observable in queries
    # without a whole-subtree dependency, as below.
    EXISTS_QUERY = (
        "<r>{for $x in /bib/* return if (exists $x/price) then <t/> else ()}</r>"
    )

    def test_first_witness_only_first_price_kept(self):
        _c, buffer, pp = projector_for(
            self.EXISTS_QUERY,
            "<bib><book><price>1</price><price>2</price><price>3</price></book></bib>",
        )
        pp.run_to_completion()
        prices = [l for l in buffer.format_contents() if l.strip().startswith("price")]
        assert len(prices) == 1

    def test_first_witness_per_binding(self):
        """Each bib child gets its own first witness."""
        _c, buffer, pp = projector_for(
            self.EXISTS_QUERY,
            "<bib><book><price>1</price></book><cd><price>2</price><price>3</price></cd></bib>",
        )
        pp.run_to_completion()
        prices = [l for l in buffer.format_contents() if l.strip().startswith("price")]
        assert len(prices) == 2

    def test_intro_query_keeps_all_subtree_nodes(self):
        """The paper: 'due to n5, we are forced to buffer all children of
        the bib node with their complete subtrees'."""
        _c, buffer, pp = projector_for(
            INTRO_QUERY,
            "<bib><book><price>1</price><price>2</price></book></bib>",
        )
        pp.run_to_completion()
        prices = [l for l in buffer.format_contents() if l.strip().startswith("price")]
        assert len(prices) == 2

    def test_price_descendants_not_kept(self):
        """Figure 1: the first price node is kept *without* descendants."""
        compiled, buffer, pp = projector_for(
            "<r>{for $x in /bib/* return if (exists $x/price) then <t/> else ()}</r>",
            "<bib><book><price><deep>1</deep></price></book></bib>",
        )
        pp.run_to_completion()
        labels = [line.strip().split("{")[0] for line in buffer.format_contents()]
        assert "price" in labels
        assert "deep" not in labels

    def test_aggregate_mode_buffers_same_nodes(self):
        doc = "<bib><book><title>t</title><author/></book></bib>"
        _c1, buf_plain, pp1 = projector_for(INTRO_QUERY, doc, aggregate=False)
        pp1.run_to_completion()
        _c2, buf_agg, pp2 = projector_for(INTRO_QUERY, doc, aggregate=True)
        pp2.run_to_completion()
        strip = lambda lines: [l.split("{")[0] for l in lines]
        assert strip(buf_plain.format_contents()) == strip(buf_agg.format_contents())

    def test_aggregate_mode_uses_fewer_role_instances(self):
        doc = "<bib><book><title>long text here</title><author/><x><y/></x></book></bib>"
        _c1, buf_plain, pp1 = projector_for(INTRO_QUERY, doc, aggregate=False)
        pp1.run_to_completion()
        _c2, buf_agg, pp2 = projector_for(INTRO_QUERY, doc, aggregate=True)
        pp2.run_to_completion()
        assert buf_agg.stats.roles_assigned < buf_plain.stats.roles_assigned


class TestStats:
    def test_dropped_counter(self):
        _c, buffer, pp = projector_for(
            "<r>{for $b in /bib/book return $b/title}</r>",
            "<bib><junk/><book><title/></book></bib>",
        )
        pp.run_to_completion()
        assert buffer.stats.nodes_dropped >= 1

    def test_hwm_monotone(self):
        _c, buffer, pp = projector_for(INTRO_QUERY, "<bib><book><title/></book></bib>")
        previous = 0
        while pp.pull():
            assert buffer.stats.hwm_nodes >= previous
            previous = buffer.stats.hwm_nodes


class TestCancellationConsumption:
    """Pending cancellations must respect the matcher's [1]-consumption.

    With nested bindings of the same variable, an outer binding's signoff
    registers a cancellation for its first-witness path while the region
    is unfinished.  The outer context's ``[1]`` is already consumed, so a
    later arrival earns the dep role only from the inner, still-live
    binding — the stale cancellation must not eat that instance (it used
    to, leaving the inner signoff to underflow the role multiset).
    """

    QUERY = "<out>{for $v in $root//a return if (exists $v//a) then <a/> else ()}</out>"

    def test_nested_first_witness_roles_survive_outer_cancellation(self):
        from repro.baselines.naive import NaiveDomEngine
        from repro.engine import GCXEngine

        document = "<r><a><a><a/></a></a></r>"
        oracle = NaiveDomEngine().run(self.QUERY, document)
        result = GCXEngine().run(self.QUERY, document)
        assert result.output == oracle.output == "<out><a/><a/></out>"

    def test_nesting_shapes_match_the_dom_oracle(self):
        from repro.baselines.naive import NaiveDomEngine
        from repro.engine import GCXEngine

        shapes = [
            "<r><a><b/><a><a/></a></a></r>",
            "<r><a><a/><a><a/></a></a></r>",
            "<r><a><a><a><a/></a></a></a></r>",
            "<r><a><a/></a><a><a/></a></r>",
        ]
        for document in shapes:
            oracle = NaiveDomEngine().run(self.QUERY, document)
            result = GCXEngine().run(self.QUERY, document)
            assert result.output == oracle.output, document
