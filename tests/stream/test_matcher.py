"""Matcher tests against the paper's worked examples (Figures 4 and 5).

The projection trees of those figures are built directly from PTNodes so
the tests pin down the matcher in isolation from query compilation.
"""


from repro.analysis.projection_tree import ProjectionTree, PTNode
from repro.analysis.roles import Role
from repro.buffer import BufferTree
from repro.stream import StreamMatcher, StreamPreprojector
from repro.xmlio import tokenize
from repro.xquery.paths import child, descendant, dos_node


def figure4b_tree() -> ProjectionTree:
    """v1: / ; v2: .//a under v1 ; v3: .//b under v2 (roles r2, r3)."""
    root = PTNode(display_id=1, step=None, var="$root")
    tree = ProjectionTree(root)
    v2 = PTNode(display_id=2, step=descendant("a"), role=Role(2, "binding", "$a"))
    v3 = PTNode(display_id=3, step=descendant("b"), role=Role(3, "binding", "$b"))
    root.add_child(v2)
    v2.add_child(v3)
    tree.roles = [v2.role, v3.role]
    tree.role_nodes = {v2.role: v2, v3.role: v3}
    tree.var_nodes = {"$root": root, "$a": v2, "$b": v3}
    return tree


def figure4d_tree() -> ProjectionTree:
    """v1: / with children v2: .//a and v3: .//b (siblings)."""
    root = PTNode(display_id=1, step=None, var="$root")
    tree = ProjectionTree(root)
    v2 = PTNode(display_id=2, step=descendant("a"), role=Role(2, "binding", "$a"))
    v3 = PTNode(display_id=3, step=descendant("b"), role=Role(3, "binding", "$b"))
    root.add_child(v2)
    root.add_child(v3)
    tree.roles = [v2.role, v3.role]
    tree.role_nodes = {v2.role: v2, v3.role: v3}
    tree.var_nodes = {"$root": root, "$a": v2, "$b": v3}
    return tree


def figure5_tree() -> ProjectionTree:
    """Projection tree of Figure 5(a): /a/b and /a//b with dos leaves."""
    root = PTNode(display_id=1, step=None, var="$root")
    tree = ProjectionTree(root)
    v2 = PTNode(display_id=2, step=child("a"), role=Role(2, "binding", "$x"))
    v3 = PTNode(display_id=3, step=child("b"), role=Role(3, "dep", "$x"))
    v4 = PTNode(display_id=4, step=dos_node(), role=Role(4, "dep", "$x"))
    v5 = PTNode(display_id=5, step=child("a"), role=Role(5, "binding", "$y"))
    v6 = PTNode(display_id=6, step=descendant("b"), role=Role(6, "dep", "$y"))
    v7 = PTNode(display_id=7, step=dos_node(), role=Role(7, "dep", "$y"))
    root.add_child(v2)
    v2.add_child(v3)
    v3.add_child(v4)
    root.add_child(v5)
    v5.add_child(v6)
    v6.add_child(v7)
    for node in (v2, v3, v4, v5, v6, v7):
        tree.roles.append(node.role)
        tree.role_nodes[node.role] = node
    tree.var_nodes = {"$root": root}
    return tree


def project_with_roles(tree: ProjectionTree, document: str, *, aggregate=False):
    """Run the preprojector and return {(tag, seq): sorted role names}."""
    buffer = BufferTree(strict=False)
    preprojector = StreamPreprojector(
        tokenize(document), tree, buffer, aggregate_roles=aggregate
    )
    preprojector.run_to_completion()
    result = {}
    for node in buffer.document.descendants():
        label = buffer.tag_name(node.tag_id) if node.tag_id >= 0 else "#text"
        names = node.roles.as_names() + [
            f"{n}*" for n in node.aggregate_roles.as_names()
        ]
        result[(label, node.seq)] = names
    return buffer, result


class TestFigure4Multiplicities:
    def test_figure4c_nested_descendant_roles(self):
        """Figure 4(c): the deep b gets role r3 twice (two embeddings)."""
        _buffer, roles = project_with_roles(figure4b_tree(), "<a><a><b/></a><b/></a>")
        values = sorted(roles.values())
        # outer a: {r2}; inner a: {r2}; deep b: {r3, r3}; shallow b: {r3}
        assert sorted(map(tuple, values)) == sorted(
            [("r2",), ("r2",), ("r3", "r3"), ("r3",)]
        )

    def test_figure4e_sibling_descendants(self):
        """Figure 4(e): with t' every b gets r3 exactly once."""
        _buffer, roles = project_with_roles(figure4d_tree(), "<a><a><b/></a><b/></a>")
        values = sorted(map(tuple, roles.values()))
        assert values == sorted([("r2",), ("r2",), ("r3",), ("r3",)])


class TestFigure5LazyDfa:
    def test_example1_state_mapping(self):
        """Example 1's q0..q4 mappings, read off the matcher's frames."""
        tree = figure5_tree()
        matcher = StreamMatcher(tree, aggregate_roles=False)
        stack = [matcher.initial_frame()]
        # q0 (document): maps to {v1}.
        assert {n.display_id for n in stack[-1].matches} == {1}
        # read <a>: q1 maps to {v2, v5}.
        t = matcher.match_token(stack, tag="a", is_text=False)
        from repro.stream.matcher import MatchFrame

        stack.append(MatchFrame(t.matches, t.cumulative))
        assert {n.display_id for n in t.matches} == {2, 5}
        # read <a>: q2 maps to {} (no projection tree node).
        t2 = matcher.match_token(stack, tag="a", is_text=False)
        stack.append(MatchFrame(t2.matches, t2.cumulative))
        assert {n.display_id for n in t2.matches if n.role} - {4, 7} == set()
        # (only dos leaves may match; the element nodes v2/v5 do not)
        assert not any(n.display_id in (2, 3, 5, 6) for n in t2.matches)
        # read <b>: q3 maps to {v6} (only the descendant path reaches it).
        t3 = matcher.match_token(stack, tag="b", is_text=False)
        matched_ids = {n.display_id for n in t3.matches}
        assert 6 in matched_ids
        assert 3 not in matched_ids  # /a/b does not match /a/a/b

    def test_example1_q4_maps_to_both(self):
        tree = figure5_tree()
        matcher = StreamMatcher(tree, aggregate_roles=False)
        from repro.stream.matcher import MatchFrame

        stack = [matcher.initial_frame()]
        t = matcher.match_token(stack, tag="a", is_text=False)
        stack.append(MatchFrame(t.matches, t.cumulative))
        # read <b> directly under the first a: q4 maps to {v3, v6}.
        t2 = matcher.match_token(stack, tag="b", is_text=False)
        assert {n.display_id for n in t2.matches} >= {3, 6}

    def test_example2_promotion_guard(self):
        """Reading the inner <a> at q1 must preserve it structurally:
        v2 has child ./b while v5 has descendant .//b (same tag b)."""
        tree = figure5_tree()
        matcher = StreamMatcher(tree, aggregate_roles=False)
        from repro.stream.matcher import MatchFrame

        stack = [matcher.initial_frame()]
        t = matcher.match_token(stack, tag="a", is_text=False)
        stack.append(MatchFrame(t.matches, t.cumulative))
        t2 = matcher.match_token(stack, tag="a", is_text=False)
        assert t2.structural, "condition (2) must fire for the inner a"

    def test_example3_projection_with_roles(self):
        """Figure 4(c) via the full preprojector (Example 3)."""
        _buffer, roles = project_with_roles(figure4b_tree(), "<a><a><b/></a><b/></a>")
        multi = [names for names in roles.values() if names == ["r3", "r3"]]
        assert len(multi) == 1


class TestTransitionCache:
    def test_cached_transitions_match_uncached(self):
        tree = figure5_tree()
        doc = "<a><a><b/><c/><b/></a><b/><a><b/></a></a>"
        cached = StreamMatcher(tree, aggregate_roles=False)
        buffer_a = BufferTree(strict=False)
        StreamPreprojector(
            tokenize(doc), tree, buffer_a, aggregate_roles=False
        ).run_to_completion()
        # Re-run; identical population implies deterministic transitions and
        # the cache is warm for the second run.
        buffer_b = BufferTree(strict=False)
        StreamPreprojector(
            tokenize(doc), tree, buffer_b, aggregate_roles=False
        ).run_to_completion()
        assert buffer_a.format_contents() == buffer_b.format_contents()


class TestTextMatching:
    def test_text_under_dos_scope_is_kept(self):
        tree = figure5_tree()
        _buffer, roles = project_with_roles(tree, "<a><b>hello</b></a>")
        text_entries = [k for k in roles if k[0] == "#text"]
        assert len(text_entries) == 1

    def test_text_without_matching_scope_is_dropped(self):
        tree = figure4d_tree()  # only element roles, no dos leaves
        _buffer, roles = project_with_roles(tree, "<a>junk<b>junk</b></a>")
        assert not any(k[0] == "#text" for k in roles)
