"""Tests for variable analysis: VarsQ, parVarQ, varpath, scoping."""

import pytest

from repro.xquery import ScopeError, analyze_variables, normalize, parse_query
from repro.xquery.paths import child, descendant

from tests.helpers import FIGURE9_QUERY, INTRO_QUERY


@pytest.fixture
def intro_vars():
    return analyze_variables(normalize(parse_query(INTRO_QUERY)))


class TestVariableTree:
    def test_vars_in_introduction_order(self, intro_vars):
        assert intro_vars.names == ["$root", "$bib", "$x", "$b"]

    def test_parents(self, intro_vars):
        assert intro_vars.parent("$bib") == "$root"
        assert intro_vars.parent("$x") == "$bib"
        assert intro_vars.parent("$b") == "$bib"
        assert intro_vars.parent("$root") is None

    def test_children_in_order(self, intro_vars):
        assert intro_vars.children("$bib") == ["$x", "$b"]

    def test_ancestor_relation(self, intro_vars):
        assert intro_vars.is_ancestor("$root", "$x")
        assert intro_vars.is_ancestor("$bib", "$b")
        assert not intro_vars.is_ancestor("$x", "$b")
        assert not intro_vars.is_ancestor("$x", "$x")
        assert intro_vars.is_ancestor_or_self("$x", "$x")

    def test_parvar_is_not_lexical(self):
        """Figure 9: $b's loop is inside $a's loop but parVar($b) = $root."""
        variables = analyze_variables(normalize(parse_query(FIGURE9_QUERY)))
        assert variables.parent("$b") == "$root"
        assert variables.info("$b").enclosing_loops == ("$a",)


class TestVarPath:
    def test_empty_path_to_self(self, intro_vars):
        assert intro_vars.variable_path("$x", "$x") == ()

    def test_single_step(self, intro_vars):
        assert intro_vars.variable_path("$bib", "$b") == (child("book"),)

    def test_multi_step(self, intro_vars):
        assert intro_vars.variable_path("$root", "$b") == (
            child("bib"),
            child("book"),
        )

    def test_descendant_step(self):
        variables = analyze_variables(normalize(parse_query(FIGURE9_QUERY)))
        assert variables.variable_path("$root", "$b") == (descendant("b"),)

    def test_non_ancestor_rejected(self, intro_vars):
        with pytest.raises(ValueError):
            intro_vars.variable_path("$x", "$b")


class TestScopeChecks:
    def test_unbound_variable_rejected(self):
        query = parse_query("<r>{$nope}</r>")
        with pytest.raises(ScopeError):
            analyze_variables(query)

    def test_out_of_scope_use_rejected(self):
        query = parse_query(
            "<r>{(for $a in /r/a return <x/>, $a)}</r>"
        )
        with pytest.raises(ScopeError):
            analyze_variables(query)

    def test_rebinding_rejected(self):
        query = parse_query(
            "<r>{for $a in /r/a return for $a in /r/b return $a}</r>"
        )
        with pytest.raises(ScopeError):
            analyze_variables(query)

    def test_root_rebinding_rejected(self):
        query = parse_query("<r>{for $root in /r/a return $root}</r>")
        with pytest.raises(ScopeError):
            analyze_variables(query)

    def test_condition_variables_checked(self):
        query = parse_query(
            "<r>{for $a in /r/a return if (exists $zz/b) then $a else ()}</r>"
        )
        with pytest.raises(ScopeError):
            analyze_variables(query)

    def test_root_is_free(self):
        query = parse_query("<r>{$root/a}</r>")
        variables = analyze_variables(query)
        assert "$root" in variables
