"""Parse/normalize/unparse tests for the widened fragment (docs/JOINS.md).

Aggregate calls, positional predicates and quantified conditions each get
the same treatment the original grammar productions have in
``test_parser.py``/``test_normalize.py``: exact AST shapes out of the
parser, the normalization invariants they must respect, and unparse
round-trips.
"""

import pytest

from repro.xquery import (
    NormalizationError,
    PathOutput,
    XQSyntaxError,
    normalize,
    parse_expr,
    parse_query,
    unparse,
    validate_core,
)
from repro.xquery.ast import (
    Aggregate,
    Quantified,
    atomic_conditions,
    conditions_of,
    walk,
)
from repro.xquery.paths import TEXT_TEST, Axis, Step, child, descendant


class TestAggregateParsing:
    @pytest.mark.parametrize("func", ["count", "sum", "avg"])
    def test_aggregate_call(self, func):
        expr = parse_expr(f"{func}($x/a)")
        assert expr == Aggregate(func, "$x", (child("a"),))

    def test_descendant_and_text_paths(self):
        expr = parse_expr("sum($x//a/text())")
        assert isinstance(expr, Aggregate)
        assert expr.path[0] == descendant("a")
        assert expr.path[-1].test == TEXT_TEST

    def test_positional_steps_allowed_in_aggregate_paths(self):
        expr = parse_expr("count($x/a[1]/b)")
        assert expr.path[0].first and not expr.path[0].last

    def test_aggregate_requires_a_path(self):
        with pytest.raises(XQSyntaxError):
            parse_expr("count($x)")

    def test_unknown_aggregate_is_not_special_cased(self):
        with pytest.raises(XQSyntaxError):
            parse_expr("max($x/a)")

    def test_unparse_round_trip(self):
        text = "<out>{count($root/a)}</out>"
        assert parse_query(unparse(parse_query(text))) == parse_query(text)


class TestPositionalParsing:
    def test_first_predicate(self):
        expr = parse_expr("$x/a[1]")
        assert expr == PathOutput(
            "$x", (Step(Axis.CHILD, child("a").test, first=True),)
        )

    def test_last_predicate(self):
        expr = parse_expr("$x//a[last()]")
        step = expr.path[0]
        assert step.axis is Axis.DESCENDANT and step.last and not step.first

    def test_position_eq_one_spelling(self):
        assert parse_expr("$x/a[position()=1]") == parse_expr("$x/a[1]")

    def test_unsupported_predicates_rejected(self):
        for bad in ("$x/a[2]", "$x/a[last]", "$x/a[position()=2]"):
            with pytest.raises(XQSyntaxError):
                parse_expr(bad)

    def test_unparse_round_trip(self):
        text = "<out>{for $v in $root/a return $v/b[last()]/c/text()}</out>"
        assert parse_query(unparse(parse_query(text))) == parse_query(text)


class TestQuantifiedParsing:
    def test_some_shape(self):
        cond = parse_expr(
            "if (some $q in $x/a satisfies exists $q/b) then <y/> else ()"
        ).cond
        assert isinstance(cond, Quantified)
        assert cond.quantifier == "some"
        assert cond.var == "$q"
        assert cond.source == "$x"
        assert cond.path == (child("a"),)

    def test_every_shape(self):
        cond = parse_expr(
            'if (every $q in $x//a satisfies $q/b = "1") then <y/> else ()'
        ).cond
        assert cond.quantifier == "every"

    def test_satisfies_clause_is_greedy(self):
        # XQuery's ExprSingle rule: the quantifier swallows the whole
        # conjunction, it does not end at the first conjunct.
        cond = parse_expr(
            "if (some $q in $x/a satisfies exists $q/b and exists $q/c) "
            "then <y/> else ()"
        ).cond
        assert isinstance(cond, Quantified)
        assert not isinstance(cond.inner, Quantified)

    def test_unparse_round_trip(self):
        text = (
            "<out>{for $v in $root/a return "
            'if (every $q in $v/b satisfies $q/c = "1") then $v else ()'
            "}</out>"
        )
        assert parse_query(unparse(parse_query(text))) == parse_query(text)


class TestNormalization:
    def test_positional_head_survives_on_output_paths(self):
        # Multi-step outputs normally expand into nested one-step loops;
        # the expansion must stop at the positional step, which cannot be
        # carried by a for-loop.
        query = normalize(parse_query("<out>{$root/a/b[1]/c}</out>"))
        validate_core(query)
        outputs = [
            node for node in walk(query.root) if isinstance(node, PathOutput)
        ]
        positional = [o for o in outputs if any(s.first or s.last for s in o.path)]
        assert positional, "positional output path was lowered away"
        assert positional[0].path[0].first

    def test_positional_for_loops_rejected(self):
        with pytest.raises(NormalizationError):
            normalize(
                parse_query("<out>{for $v in $root/a[1] return $v}</out>")
            )

    def test_aggregates_survive_normalization(self):
        query = normalize(
            parse_query("<out>{for $v in $root/a return count($v/b)}</out>")
        )
        validate_core(query)
        aggregates = [
            node for node in walk(query.root) if isinstance(node, Aggregate)
        ]
        assert len(aggregates) == 1

    def test_quantified_survives_ifpushdown(self):
        from repro.analysis.compile import compile_query

        compiled = compile_query(
            "<out>{for $v in $root/a return "
            "if (some $q in $v/b satisfies exists $q/c) then $v else ()"
            "}</out>"
        )
        quantified = [
            cond
            for cond in _all_conditions(compiled.rewritten.root)
            if isinstance(cond, Quantified)
        ]
        assert quantified, "quantifier lost in the rewriting pipeline"


def _all_conditions(root):
    """Every atomic condition in ``root``, descending into quantifiers."""
    stack = [cond for expr in walk(root) for cond in conditions_of(expr)]
    atoms = []
    while stack:
        for atom in atomic_conditions(stack.pop()):
            atoms.append(atom)
            if isinstance(atom, Quantified):
                stack.append(atom.inner)
    return atoms
