"""Tests for the xquery layer."""
