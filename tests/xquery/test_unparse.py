"""Unparser tests: rendering and parse-unparse-parse stability."""

import pytest

from repro.xquery import parse_expr, parse_query, unparse
from repro.xquery.unparse import unparse_condition

ROUNDTRIP_CASES = [
    "()",
    "$x",
    "$x/title",
    "$x//b",
    "<a/>",
    "<a>{$x}</a>",
    "($a, $b, $c)",
    "for $x in $y/a return $x",
    "for $x in $root/bib return for $y in $x/* return $y",
    "if (exists($x/price)) then $x else ()",
    'if ($x/id = "p0") then $x/name else ()',
    "if (not(exists($x/a))) then <t/> else <f/>",
    "if ((exists($x/a) and exists($x/b)) or true()) then $x else ()",
    "signOff($x, r3)",
    "signOff($x/price[1], r4)",
    "signOff($x/dos::node(), r5)",
    "signOff($b/title/dos::node(), r7)",
    "if ($a/k <= $b/k) then <m/> else ()",
]


class TestRoundtrip:
    @pytest.mark.parametrize("text", ROUNDTRIP_CASES)
    def test_parse_unparse_parse_is_identity(self, text):
        first = parse_expr(text)
        rendered = unparse(first)
        second = parse_expr(rendered)
        assert first == second, f"{text!r} -> {rendered!r}"

    def test_query_roundtrip(self):
        query = parse_query("<r>{for $b in /bib return $b/title}</r>")
        assert parse_query(unparse(query)) == query


class TestRendering:
    def test_flat_for(self):
        expr = parse_expr("for $x in $y/a return $x")
        assert unparse(expr) == "for $x in $y/a return $x"

    def test_descendant_rendering(self):
        assert unparse(parse_expr("$x//b")) == "$x/descendant::b"

    def test_condition_rendering(self):
        cond = parse_expr("if (not(exists $x/a)) then () else ()").cond
        assert unparse_condition(cond) == "not(exists($x/a))"

    def test_pretty_print_contains_structure(self):
        query = parse_query(
            "<r>{for $b in /bib return if (exists $b/a) then $b else ()}</r>"
        )
        pretty = unparse(query, indent=2)
        assert "for $b in $root/bib return" in pretty
        assert pretty.count("\n") >= 2

    def test_string_operand_quoting(self):
        expr = parse_expr('if ($x/id = "p0") then $x else ()')
        assert '"p0"' in unparse(expr)
