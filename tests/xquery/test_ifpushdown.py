"""Tests for the if-pushdown rules of Figure 7."""

from repro.xquery import (
    CloseTag,
    Empty,
    ForLoop,
    IfThenElse,
    Not,
    OpenTag,
    Sequence,
    parse_expr,
    push_ifs_down,
)
from repro.xquery.ast import walk
from repro.xquery.ifpushdown import decompose_ifs


def no_loop_or_constructor_under_if(expr) -> bool:
    """After pushdown, no if contains a for-loop, sequence or constructor."""
    from repro.xquery.ast import Element

    for node in walk(expr):
        if isinstance(node, IfThenElse):
            for sub in walk(node.then_branch):
                if isinstance(sub, (ForLoop, Element, Sequence)):
                    return False
            if not isinstance(node.else_branch, Empty):
                return False
    return True


class TestDecomp:
    def test_two_sided_if_splits(self):
        expr = parse_expr("if (exists $x/a) then $x else $y")
        result = decompose_ifs(expr)
        assert isinstance(result, Sequence)
        positive, negative = result.items
        assert isinstance(positive.else_branch, Empty)
        assert isinstance(negative.cond, Not)
        assert negative.cond.operand == positive.cond

    def test_one_sided_if_untouched(self):
        expr = parse_expr("if (exists $x/a) then $x else ()")
        assert decompose_ifs(expr) == expr


class TestSeq:
    def test_if_distributes_over_sequence(self):
        expr = parse_expr("if (exists $x/a) then ($y, $z) else ()")
        result = push_ifs_down(expr)
        assert isinstance(result, Sequence)
        assert all(isinstance(item, IfThenElse) for item in result.items)
        assert [item.then_branch for item in result.items] == [
            parse_expr("$y"),
            parse_expr("$z"),
        ]


class TestNC:
    def test_constructor_decomposes_into_tags(self):
        expr = parse_expr("if (exists $x/a) then <w>{$y}</w> else ()")
        result = push_ifs_down(expr)
        assert isinstance(result, Sequence)
        first, middle, last = result.items
        assert first.then_branch == OpenTag("w")
        assert middle.then_branch == parse_expr("$y")
        assert last.then_branch == CloseTag("w")
        # All three share the same condition (the grammar's requirement).
        assert first.cond == middle.cond == last.cond


class TestFor:
    def test_if_moves_inside_loop(self):
        expr = parse_expr("if (exists $x/a) then for $y in $x/b return $y else ()")
        result = push_ifs_down(expr)
        assert isinstance(result, ForLoop)
        assert isinstance(result.body, IfThenElse)
        assert result.body.then_branch == parse_expr("$y")


class TestFixpoint:
    def test_deep_combination(self):
        expr = parse_expr(
            "if (exists $x/a) then "
            "<w>{(for $y in $x/b return <i>{$y}</i>, $x/c)}</w> else $x/d"
        )
        result = push_ifs_down(expr)
        assert no_loop_or_constructor_under_if(result)

    def test_idempotent(self):
        expr = parse_expr(
            "if (exists $x/a) then (for $y in $x/b return $y, <k/>) else ()"
        )
        once = push_ifs_down(expr)
        assert push_ifs_down(once) == once

    def test_only_over_loops_leaves_plain_ifs(self):
        expr = parse_expr("if (exists $x/a) then <w>{$x/c}</w> else ()")
        result = push_ifs_down(expr, only_over_loops=True)
        # No for-loop below: the constructor stays inside the if.
        assert isinstance(result, IfThenElse)

    def test_only_over_loops_still_pushes_loops(self):
        expr = parse_expr(
            "if (exists $x/a) then for $y in $x/b return $y else ()"
        )
        result = push_ifs_down(expr, only_over_loops=True)
        assert isinstance(result, ForLoop)

    def test_empty_then_collapses(self):
        expr = parse_expr("if (exists $x/a) then () else ()")
        assert push_ifs_down(expr) == Empty()
