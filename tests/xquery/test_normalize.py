"""Tests for query normalization (Section 3's rewritings)."""

import pytest

from repro.xquery import (
    Empty,
    ForLoop,
    IfThenElse,
    NormalizationError,
    PathOutput,
    parse_expr,
    parse_query,
    normalize,
    unparse,
    validate_core,
)
from repro.xquery.normalize import (
    FreshVariables,
    expand_multistep,
    inline_lets,
    used_variables,
    where_to_if,
)


class TestWhereToIf:
    def test_where_becomes_if(self):
        expr = parse_expr('for $x in $y/a where $x/b = "1" return $x')
        rewritten = where_to_if(expr)
        assert rewritten.where is None
        assert isinstance(rewritten.body, IfThenElse)
        assert isinstance(rewritten.body.else_branch, Empty)

    def test_nested_wheres(self):
        expr = parse_expr(
            "for $x in $y/a where exists $x/k return "
            "for $z in $x/b where exists $z/k return $z"
        )
        rewritten = where_to_if(expr)
        assert rewritten.where is None
        assert rewritten.body.then_branch.where is None


class TestLetInlining:
    def test_path_extension(self):
        expr = parse_expr("let $n := $p/name return <r>{$n/text()}</r>")
        inlined = inline_lets(expr)
        assert unparse(inlined) == "<r>{$p/name/text()}</r>"

    def test_bare_var_becomes_path_output(self):
        expr = parse_expr("let $n := $p/name return $n")
        assert inline_lets(expr) == PathOutput("$p", parse_expr("$p/name").path)

    def test_let_in_for_source(self):
        expr = parse_expr("let $n := $p/a return for $x in $n/b return $x")
        inlined = inline_lets(expr)
        assert isinstance(inlined, ForLoop)
        assert inlined.source == "$p"
        assert len(inlined.path) == 2

    def test_let_in_condition(self):
        expr = parse_expr(
            "let $f := $p/profile return if (exists $f/income) then <t/> else ()"
        )
        inlined = inline_lets(expr)
        assert inlined.cond.var == "$p"
        assert len(inlined.cond.path) == 2

    def test_nested_lets(self):
        expr = parse_expr(
            "let $a := $r/x return let $b := $a/y return $b/z"
        )
        inlined = inline_lets(expr)
        assert inlined == PathOutput("$r", parse_expr("$r/x/y/z").path)

    def test_rebinding_rejected(self):
        expr = parse_expr("let $n := $p/a return for $n in $p/b return $n")
        with pytest.raises(NormalizationError):
            inline_lets(expr)


class TestMultistepExpansion:
    def test_for_loop_expansion(self):
        expr = parse_expr("for $t in /site/people/person return $t")
        fresh = FreshVariables(used_variables(expr))
        expanded = expand_multistep(expr, fresh)
        # Three nested single-step loops.
        assert isinstance(expanded, ForLoop) and len(expanded.path) == 1
        inner = expanded.body
        assert isinstance(inner, ForLoop) and len(inner.path) == 1
        innermost = inner.body
        assert isinstance(innermost, ForLoop) and innermost.var == "$t"

    def test_output_expansion(self):
        expr = parse_expr("for $p in $r/p return $p/name/text()")
        fresh = FreshVariables(used_variables(expr))
        expanded = expand_multistep(expr, fresh)
        body = expanded.body
        assert isinstance(body, ForLoop)
        assert isinstance(body.body, PathOutput)
        assert len(body.body.path) == 1

    def test_fresh_variables_do_not_collide(self):
        expr = parse_expr("for $v1 in $r/a/b return $v1")
        fresh = FreshVariables(used_variables(expr))
        expanded = expand_multistep(expr, fresh)
        assert expanded.var != "$v1"
        assert expanded.body.var == "$v1"


class TestFullPipeline:
    def test_normalize_produces_core(self):
        query = parse_query(
            '<r>{for $p in /site/people/person where $p/id = "p0" '
            "return let $n := $p/name return $n}</r>"
        )
        normalized = normalize(query)
        validate_core(normalized)  # must not raise

    def test_conditions_may_keep_multistep(self):
        query = parse_query(
            "<r>{for $p in /ps/p return "
            'if ($p/profile/income >= "100") then <rich/> else ()}</r>'
        )
        validate_core(normalize(query))

    def test_core_violations_detected(self):
        query = parse_query("<r>{for $p in /a/b return $p}</r>")
        with pytest.raises(NormalizationError):
            validate_core(query)  # multi-step before normalization

    def test_normalization_is_idempotent(self):
        query = parse_query(
            "<r>{for $p in /site/people/person return $p/name}</r>"
        )
        once = normalize(query)
        twice = normalize(once)
        assert once == twice
