"""Tests for location steps and node tests."""

import pytest

from repro.xquery.paths import (
    Axis,
    NODE_TEST,
    NodeTest,
    STAR_TEST,
    Step,
    TEXT_TEST,
    child,
    descendant,
    dos_node,
    format_path,
    tag_test,
)


class TestNodeTest:
    def test_tag_matches_only_its_tag(self):
        test = tag_test("book")
        assert test.matches_element("book")
        assert not test.matches_element("title")
        assert not test.matches_text()

    def test_star_matches_elements_not_text(self):
        assert STAR_TEST.matches_element("anything")
        assert not STAR_TEST.matches_text()

    def test_node_matches_everything(self):
        assert NODE_TEST.matches_element("x")
        assert NODE_TEST.matches_text()

    def test_text_matches_text_only(self):
        assert TEXT_TEST.matches_text()
        assert not TEXT_TEST.matches_element("x")

    def test_tag_test_requires_name(self):
        with pytest.raises(ValueError):
            NodeTest(tag_test("a").kind, None)

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (tag_test("a"), tag_test("a"), True),
            (tag_test("a"), tag_test("b"), False),
            (tag_test("a"), STAR_TEST, True),
            (tag_test("a"), NODE_TEST, True),
            (TEXT_TEST, tag_test("a"), False),
            (TEXT_TEST, NODE_TEST, True),
            (STAR_TEST, NODE_TEST, True),
        ],
    )
    def test_overlaps(self, a, b, expected):
        assert a.overlaps(b) == expected
        assert b.overlaps(a) == expected

    @pytest.mark.parametrize(
        "container, contained, expected",
        [
            (NODE_TEST, TEXT_TEST, True),
            (NODE_TEST, tag_test("a"), True),
            (STAR_TEST, tag_test("a"), True),
            (STAR_TEST, TEXT_TEST, False),
            (tag_test("a"), tag_test("a"), True),
            (tag_test("a"), STAR_TEST, False),
            (TEXT_TEST, TEXT_TEST, True),
        ],
    )
    def test_contains(self, container, contained, expected):
        assert container.contains(contained) == expected


class TestSteps:
    def test_constructors(self):
        assert child("a") == Step(Axis.CHILD, tag_test("a"))
        assert descendant("*") == Step(Axis.DESCENDANT, STAR_TEST)
        assert dos_node() == Step(Axis.DOS, NODE_TEST)

    def test_first_predicate(self):
        step = child("price", first=True)
        assert step.first
        assert step.without_first() == child("price")
        plain = child("price")
        assert plain.without_first() is plain  # no-op returns the same object

    def test_str_forms(self):
        assert str(child("a")) == "a"
        assert str(child("price", first=True)) == "price[1]"
        assert str(descendant("b")) == "descendant::b"
        assert str(dos_node()) == "dos::node()"

    def test_format_path(self):
        path = (child("title"), dos_node())
        assert format_path(path) == "/title/dos::node()"
        assert format_path(path, leading_slash=False) == "title/dos::node()"
