"""Tests for the XQ parser, one per grammar production of Figure 6."""

import pytest

from repro.xquery import (
    And,
    Comparison,
    Element,
    Empty,
    Exists,
    ForLoop,
    IfThenElse,
    LetBinding,
    LiteralOperand,
    Not,
    Or,
    PathOperand,
    PathOutput,
    Sequence,
    SignOff,
    TextLiteral,
    TrueCond,
    VarRef,
    XQSyntaxError,
    parse_expr,
    parse_query,
)
from repro.xquery.paths import Axis, child, descendant


class TestConstructors:
    def test_query_is_element(self):
        query = parse_query("<r>{()}</r>")
        assert query.root == Element("r", Empty())

    def test_empty_element_forms(self):
        assert parse_expr("<a/>") == Element("a", Empty())
        assert parse_expr("<a></a>") == Element("a", Empty())

    def test_nested_constructors(self):
        expr = parse_expr("<a><b/><c/></a>")
        assert expr == Element(
            "a", Sequence((Element("b", Empty()), Element("c", Empty())))
        )

    def test_literal_text_content(self):
        assert parse_expr("<a>hello world</a>") == Element(
            "a", TextLiteral("hello world")
        )

    def test_mixed_content(self):
        expr = parse_expr("<a>x{$v}y</a>")
        assert expr == Element(
            "a", Sequence((TextLiteral("x"), VarRef("$v"), TextLiteral("y")))
        )

    def test_multiple_enclosed_expressions(self):
        expr = parse_expr("<a>{$x}{$y}</a>")
        assert expr == Element("a", Sequence((VarRef("$x"), VarRef("$y"))))

    def test_mismatched_close_rejected(self):
        with pytest.raises(XQSyntaxError):
            parse_expr("<a></b>")

    def test_query_must_be_constructor(self):
        with pytest.raises(XQSyntaxError):
            parse_query("for $x in /a return $x")


class TestSequencesAndEmpty:
    def test_empty(self):
        assert parse_expr("()") == Empty()

    def test_sequence_flattens(self):
        expr = parse_expr("($a, (), ($b, $c))")
        assert expr == Sequence((VarRef("$a"), VarRef("$b"), VarRef("$c")))

    def test_singleton_parens(self):
        assert parse_expr("($a)") == VarRef("$a")


class TestPaths:
    def test_var_ref(self):
        assert parse_expr("$x") == VarRef("$x")

    def test_single_step_output(self):
        assert parse_expr("$x/title") == PathOutput("$x", (child("title"),))

    def test_multi_step_output(self):
        assert parse_expr("$x/a/b") == PathOutput("$x", (child("a"), child("b")))

    def test_descendant_abbreviation(self):
        assert parse_expr("$x//b") == PathOutput("$x", (descendant("b"),))

    def test_explicit_axes(self):
        assert parse_expr("$x/child::a") == PathOutput("$x", (child("a"),))
        assert parse_expr("$x/descendant::a") == PathOutput("$x", (descendant("a"),))

    def test_dos_axis(self):
        expr = parse_expr("signOff($x/dos::node(), r1)")
        assert expr.path[0].axis is Axis.DOS

    def test_wildcard_and_tests(self):
        assert parse_expr("$x/*").path[0].test.matches_element("anything")
        assert parse_expr("$x/text()").path[0].test.matches_text()
        node_path = parse_expr("$x/node()").path[0]
        assert node_path.test.matches_text()
        assert node_path.test.matches_element("e")

    def test_attribute_step_becomes_child(self):
        expr = parse_expr("for $p in /ps/p return if ($p/@id = \"x\") then $p else ()")
        cond = expr.body.cond
        assert cond.left.path == (child("id"),)


class TestForLet:
    def test_for_loop(self):
        expr = parse_expr("for $x in $y/a return $x")
        assert expr == ForLoop("$x", "$y", (child("a"),), VarRef("$x"))

    def test_for_with_absolute_path(self):
        expr = parse_expr("for $x in /bib return $x")
        assert expr.source == "$root"
        assert expr.path == (child("bib"),)

    def test_for_with_where(self):
        expr = parse_expr('for $x in $y/a where $x/b = "1" return $x')
        assert isinstance(expr.where, Comparison)

    def test_let(self):
        expr = parse_expr("let $n := $p/name return <r>{$n}</r>")
        assert expr == LetBinding(
            "$n", "$p", (child("name"),), Element("r", VarRef("$n"))
        )

    def test_comma_binds_looser_than_return(self):
        expr = parse_expr("(for $x in $y/a return $x, $z)")
        assert isinstance(expr, Sequence)
        assert isinstance(expr.items[0], ForLoop)
        assert expr.items[1] == VarRef("$z")


class TestConditions:
    def test_true(self):
        assert parse_expr("if (true()) then $a else $b") == IfThenElse(
            TrueCond(), VarRef("$a"), VarRef("$b")
        )

    def test_exists_with_parens(self):
        expr = parse_expr("if (exists($x/price)) then $a else ()")
        assert expr.cond == Exists("$x", (child("price"),))

    def test_exists_without_parens(self):
        expr = parse_expr("if (exists $x/price) then $a else ()")
        assert expr.cond == Exists("$x", (child("price"),))

    def test_comparison_with_literal(self):
        expr = parse_expr('if ($x/id = "p0") then $a else ()')
        assert expr.cond == Comparison(
            PathOperand("$x", (child("id"),)), "=", LiteralOperand("p0")
        )

    @pytest.mark.parametrize("op", ["<=", "<", "=", ">=", ">"])
    def test_all_relops(self, op):
        expr = parse_expr(f'if ($x/v {op} "1") then $a else ()')
        assert expr.cond.op == op

    def test_path_path_comparison(self):
        expr = parse_expr("if ($x/k = $y/k) then $a else ()")
        assert expr.cond == Comparison(
            PathOperand("$x", (child("k"),)), "=", PathOperand("$y", (child("k"),))
        )

    def test_and_or_precedence(self):
        expr = parse_expr(
            "if (exists $x/a or exists $x/b and exists $x/c) then $a else ()"
        )
        # and binds tighter than or
        assert isinstance(expr.cond, Or)
        assert isinstance(expr.cond.right, And)

    def test_not(self):
        expr = parse_expr("if (not(exists $x/a)) then $a else ()")
        assert expr.cond == Not(Exists("$x", (child("a"),)))

    def test_nested_parens(self):
        expr = parse_expr(
            "if ((exists $x/a or exists $x/b) and exists $x/c) then $a else ()"
        )
        assert isinstance(expr.cond, And)
        assert isinstance(expr.cond.left, Or)


class TestSignOff:
    def test_bare_variable(self):
        assert parse_expr("signOff($x, r3)") == SignOff("$x", (), "r3")

    def test_with_path(self):
        expr = parse_expr("signOff($x/price[1], r4)")
        assert expr.path == (child("price", first=True),)

    def test_position_syntax(self):
        expr = parse_expr("signOff($x/price[position() = 1], r4)")
        assert expr.path[0].first

    def test_dos_path(self):
        expr = parse_expr("signOff($b/title/dos::node(), r7)")
        assert len(expr.path) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "for $x in return $x",
            "if exists $x/a then $a",  # missing else
            "$x/",
            "for $x $y return $x",
            "<a>{$x}</b>",
            "signOff($x r1)",
            '$x = "unterminated',
            "(a, b",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(XQSyntaxError):
            parse_expr(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XQSyntaxError):
            parse_query("<a>{()}</a> extra")

    def test_error_has_line_and_column(self):
        with pytest.raises(XQSyntaxError) as info:
            parse_expr("for $x in\n return $x")
        assert "line" in str(info.value)


class TestComments:
    def test_xquery_comments_skipped(self):
        expr = parse_expr("(: a comment :) $x")
        assert expr == VarRef("$x")

    def test_comment_inside_expression(self):
        expr = parse_expr("for $x in $y/a (: loop :) return $x")
        assert isinstance(expr, ForLoop)
