"""CLI tests (driving ``gcx`` through its main function)."""

import pytest

from repro.cli import main


@pytest.fixture
def files(tmp_path):
    query = tmp_path / "q.xq"
    query.write_text("<out>{for $b in /bib/book return $b/title}</out>")
    doc = tmp_path / "d.xml"
    doc.write_text("<bib><book><title>T</title></book></bib>")
    return query, doc


class TestRun:
    def test_run_outputs_result(self, files, capsys):
        query, doc = files
        assert main(["run", str(query), str(doc)]) == 0
        out = capsys.readouterr().out
        assert "<out><title>T</title></out>" in out

    def test_run_with_stats(self, files, capsys):
        query, doc = files
        assert main(["run", str(query), str(doc), "--stats"]) == 0
        assert "hwm" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["naive-dom", "projection-only", "flux-like"])
    def test_run_other_engines(self, files, capsys, engine):
        query, doc = files
        assert main(["run", str(query), str(doc), "--engine", engine]) == 0
        assert "<title>T</title>" in capsys.readouterr().out

    def test_unsupported_reports_na(self, tmp_path, capsys):
        query = tmp_path / "q.xq"
        query.write_text("<out>{for $a in //a return $a}</out>")
        doc = tmp_path / "d.xml"
        doc.write_text("<r><a/></r>")
        assert main(["run", str(query), str(doc), "--engine", "flux-like"]) == 1
        assert "n/a" in capsys.readouterr().err

    def test_run_many_documents_compiles_once(self, files, capsys):
        """Several documents after one query: one result line each."""
        query, doc = files
        other = doc.parent / "d2.xml"
        other.write_text("<bib><book><title>U</title></book></bib>")
        assert main(["run", str(query), str(doc), str(other)]) == 0
        out = capsys.readouterr().out
        assert "<out><title>T</title></out>" in out
        assert "<out><title>U</title></out>" in out

    def test_buffered_matches_streaming_output(self, files, capsys):
        query, doc = files
        assert main(["run", str(query), str(doc)]) == 0
        streamed = capsys.readouterr().out
        assert main(["run", str(query), str(doc), "--buffered"]) == 0
        assert capsys.readouterr().out == streamed

    def test_streaming_stats_report_first_output(self, files, capsys):
        query, doc = files
        assert main(["run", str(query), str(doc), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "hwm" in err
        assert "first output" in err

    def test_stats_report_join_plan(self, tmp_path, capsys):
        query = tmp_path / "q.xq"
        query.write_text(
            "<out>{for $p in /r/p return for $t in /r/t return "
            "if ($t/k = $p/k) then <m/> else ()}</out>"
        )
        doc = tmp_path / "d.xml"
        doc.write_text("<r><p><k>1</k></p><t><k>1</k></t></r>")
        assert main(["run", str(query), str(doc), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "join plan: for $t" in err
        assert "joins 1 indexes" in err

    def test_stats_report_no_join_plan_and_acc_updates(self, files, capsys):
        query, doc = files
        query.write_text("<out>{count($root//book)}</out>")
        assert main(["run", str(query), str(doc), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "join plan: no equi-join loops" in err
        assert "acc updates 1" in err


class TestAnalyze:
    def test_analyze_shows_tree_and_rewriting(self, tmp_path, capsys):
        query = tmp_path / "q.xq"
        query.write_text(
            "<r>{for $bib in /bib return for $b in $bib/book return $b/title}</r>"
        )
        assert main(["analyze", str(query)]) == 0
        out = capsys.readouterr().out
        assert "projection tree" in out
        assert "signOff" in out
        assert "n1: /" in out


class TestXmarkCommand:
    def test_generate_to_file(self, tmp_path, capsys):
        target = tmp_path / "doc.xml"
        assert main(["xmark", "0.0005", "-o", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("<site>")
        assert content.endswith("</site>")


class TestTable1Command:
    def test_small_table(self, capsys):
        assert (
            main(
                [
                    "table1",
                    "--sizes",
                    "30k",
                    "--engines",
                    "gcx,naive-dom",
                    "--queries",
                    "Q1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Q1" in out
        assert "Shape checks" in out


class TestAblationsCommand:
    def test_runs_and_renders(self, capsys):
        assert main(["ablations", "--scale", "0.0005", "--queries", "Q1"]) == 0
        out = capsys.readouterr().out
        assert "base-scheme" in out
        assert "identical outputs" in out


class TestDtdCommand:
    def test_prints_dtd(self, capsys):
        assert main(["dtd"]) == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT site" in out
        assert "ATTLIST" not in out


class TestServeBatch:
    @pytest.fixture
    def batch(self, tmp_path):
        query = tmp_path / "q.xq"
        query.write_text("<out>{for $b in /bib/book return $b/title}</out>")
        docs = []
        for i in range(6):
            doc = tmp_path / f"d{i}.xml"
            doc.write_text(f"<bib><book><title>T{i}</title></book></bib>")
            docs.append(doc)
        return query, docs

    def test_outputs_in_document_order(self, batch, capsys):
        query, docs = batch
        argv = ["serve-batch", str(query)] + [str(d) for d in docs]
        assert main(argv + ["--workers", "3"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines == [f"<out><title>T{i}</title></out>" for i in range(6)]

    def test_matches_sequential_run_output(self, batch, capsys):
        query, docs = batch
        assert main(["run", str(query)] + [str(d) for d in docs]) == 0
        sequential = capsys.readouterr().out
        argv = ["serve-batch", str(query)] + [str(d) for d in docs]
        assert main(argv + ["--workers", "4", "--chunksize", "2"]) == 0
        assert capsys.readouterr().out == sequential

    def test_stats_report_aggregate_hwm(self, batch, capsys):
        query, docs = batch
        argv = ["serve-batch", str(query)] + [str(d) for d in docs]
        assert main(argv + ["--stats"]) == 0
        err = capsys.readouterr().err
        assert "aggregate hwm" in err
        assert "docs/s" in err
        assert f"{docs[0]}: hwm" in err

    def test_rejects_bad_worker_count(self, batch, capsys):
        query, docs = batch
        argv = ["serve-batch", str(query), str(docs[0]), "--workers", "0"]
        assert main(argv) == 2
        assert "--workers" in capsys.readouterr().err

    def test_rejects_bad_chunksize(self, batch, capsys):
        query, docs = batch
        argv = ["serve-batch", str(query), str(docs[0]), "--chunksize", "0"]
        assert main(argv) == 2
        assert "--chunksize" in capsys.readouterr().err


class TestRunMulti:
    @pytest.fixture
    def multi(self, tmp_path):
        names = tmp_path / "names.xq"
        names.write_text(
            "<names>{for $b in /bib/book return $b/title/text()}</names>"
        )
        count = tmp_path / "isbns.xq"
        count.write_text(
            "<isbns>{for $b in /bib/book return $b/isbn/text()}</isbns>"
        )
        doc = tmp_path / "d.xml"
        doc.write_text(
            "<bib><book><title>T1</title><isbn>111</isbn></book>"
            "<book><title>T2</title><isbn>222</isbn></book></bib>"
        )
        return names, count, doc

    def test_sections_per_query_in_order(self, multi, capsys):
        names, isbns, doc = multi
        assert main(["run-multi", str(names), str(isbns), "-d", str(doc)]) == 0
        out = capsys.readouterr().out
        assert out.index("== names ==") < out.index("== isbns ==")
        assert "<names>T1T2</names>" in out
        assert "<isbns>111222</isbns>" in out

    def test_matches_single_query_runs(self, multi, capsys):
        names, isbns, doc = multi
        assert main(["run", str(names), str(doc)]) == 0
        expected_names = capsys.readouterr().out.strip()
        assert main(["run-multi", str(names), str(isbns), "-d", str(doc)]) == 0
        assert expected_names in capsys.readouterr().out

    def test_stats_report_one_scan(self, multi, capsys):
        names, isbns, doc = multi
        argv = ["run-multi", str(names), str(isbns), "-d", str(doc), "--stats"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "one scan" in err
        assert "saved by routing" in err

    def test_union_flag_prints_masks(self, multi, capsys):
        names, isbns, doc = multi
        argv = ["run-multi", str(names), str(isbns), "-d", str(doc), "--union"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "union projection tree" in out
        assert "{names,isbns}" in out

    def test_multiple_documents_are_labelled(self, multi, capsys):
        names, isbns, doc = multi
        other = doc.parent / "d2.xml"
        other.write_text("<bib><book><title>U</title><isbn>3</isbn></book></bib>")
        argv = ["run-multi", str(names), str(isbns), "-d", str(doc), "-d", str(other)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"# {doc}" in out
        assert f"# {other}" in out
        assert "<names>U</names>" in out

    def test_duplicate_query_names_rejected(self, multi, tmp_path, capsys):
        names, _isbns, doc = multi
        clash_dir = tmp_path / "other"
        clash_dir.mkdir()
        clash = clash_dir / "names.xq"
        clash.write_text("<x>{()}</x>")
        argv = ["run-multi", str(names), str(clash), "-d", str(doc)]
        assert main(argv) == 2
        assert "duplicate" in capsys.readouterr().err


BIB_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""


@pytest.fixture
def dtd(tmp_path):
    path = tmp_path / "bib.dtd"
    path.write_text(BIB_DTD)
    return path


class TestSchemaFlag:
    def test_run_with_schema_matches_without(self, files, dtd, capsys):
        query, doc = files
        assert main(["run", str(query), str(doc)]) == 0
        plain = capsys.readouterr().out
        assert main(["run", str(query), str(doc), "--schema", str(dtd)]) == 0
        assert capsys.readouterr().out == plain

    def test_run_stats_report_schema_constraints(self, files, dtd, capsys):
        query, doc = files
        argv = ["run", str(query), str(doc), "--schema", str(dtd), "--stats"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "schema constraints" in err

    def test_certified_query_runs_with_empty_buffer(self, files, dtd, capsys):
        query, doc = files
        argv = [
            "run", str(query), str(doc),
            "--schema", str(dtd), "--stats", "--buffered",
        ]
        assert main(argv) == 0
        assert "hwm 0 nodes / 0 bytes" in capsys.readouterr().err

    def test_run_baseline_engine_with_schema(self, files, dtd, capsys):
        query, doc = files
        argv = [
            "run", str(query), str(doc),
            "--engine", "flux-like", "--schema", str(dtd),
        ]
        assert main(argv) == 0
        assert "<title>T</title>" in capsys.readouterr().out

    def test_flux_like_rejects_tags_outside_schema(self, tmp_path, dtd, capsys):
        query = tmp_path / "q.xq"
        query.write_text("<out>{for $m in /bib/movie return $m}</out>")
        doc = tmp_path / "d.xml"
        doc.write_text("<bib/>")
        argv = [
            "run", str(query), str(doc),
            "--engine", "flux-like", "--schema", str(dtd),
        ]
        assert main(argv) == 1
        assert "n/a" in capsys.readouterr().err

    def test_run_multi_with_schema_matches_without(self, files, dtd, capsys):
        query, doc = files
        argv = ["run-multi", str(query), "-d", str(doc)]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--schema", str(dtd)]) == 0
        assert capsys.readouterr().out == plain

    def test_analyze_prints_constraint_report(self, files, dtd, capsys):
        query, _doc = files
        assert main(["analyze", str(query), "--schema", str(dtd)]) == 0
        out = capsys.readouterr().out
        assert "== schema constraints ==" in out
        assert "zero-buffer" in out
