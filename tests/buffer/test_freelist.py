"""Tests for the buffer's slab allocation (free-list node recycling)."""

from __future__ import annotations

from repro.buffer import BufferTree
from repro.buffer.buffer import FREE_LIST_CAP
from repro.engine.session import QuerySession


class TestRecycling:
    def test_purged_nodes_are_reused(self):
        buffer = BufferTree(strict=False)
        first = buffer.new_element(buffer.document, "a")
        first.finished = True
        buffer._purge(first)
        second = buffer.new_element(buffer.document, "b")
        assert second is first  # the very object came back from the slab
        assert buffer.stats.nodes_recycled == 1
        assert buffer.tag_name(second.tag_id) == "b"
        assert second.parent is buffer.document
        assert not second.roles and not second.aggregate_roles
        assert second.subtree_roles == 0

    def test_recycled_node_state_is_pristine(self):
        buffer = BufferTree(strict=False)
        parent = buffer.new_element(buffer.document, "p")
        child = buffer.new_text(parent, "payload")
        parent.finished = True
        child.finished = True
        buffer._purge(parent)  # recycles parent and child
        fresh = buffer.new_element(buffer.document, "q")
        assert fresh in (parent, child)
        assert fresh.first_child is None and fresh.last_child is None
        assert fresh.prev_sibling is None and fresh.next_sibling is None
        assert fresh.text == ""
        assert not fresh.finished and not fresh.marked_deleted

    def test_free_list_is_capped(self):
        buffer = BufferTree(strict=False)
        root = buffer.new_element(buffer.document, "big")
        for i in range(FREE_LIST_CAP + 10):
            buffer.new_element(root, f"c{i % 7}")
        for node in list(root.children()):
            node.finished = True
        root.finished = True
        buffer._purge(root)
        assert len(buffer._free_nodes) == FREE_LIST_CAP

    def test_reset_keeps_the_slab_warm(self):
        buffer = BufferTree(strict=False)
        node = buffer.new_element(buffer.document, "a")
        node.finished = True
        buffer._purge(node)
        assert buffer._free_nodes
        buffer.reset()
        assert buffer._free_nodes  # carried across runs, like the tag table
        again = buffer.new_element(buffer.document, "a")
        assert again is node
        assert buffer.stats.nodes_recycled == 1  # stats are per-run

    def test_session_run_recycles_nearly_everything(self, xmark_doc_small):
        session = QuerySession(
            "<o>{for $s in /site return "
            "for $p in $s/people return "
            "for $q in $p/person return $q/name}</o>"
        )
        session.run(xmark_doc_small)  # warm the slab
        result = session.run(xmark_doc_small)
        stats = result.stats
        assert stats.nodes_created > 50
        assert stats.nodes_recycled / stats.nodes_created > 0.9

    def test_stats_track_recycling_separately_from_creation(self):
        buffer = BufferTree(strict=False)
        a = buffer.new_element(buffer.document, "a")
        assert buffer.stats.nodes_created == 1
        assert buffer.stats.nodes_recycled == 0
        a.finished = True
        buffer._purge(a)
        buffer.new_element(buffer.document, "b")
        assert buffer.stats.nodes_created == 2
        assert buffer.stats.nodes_recycled == 1
