"""Tests for the buffer layer."""
