"""Active garbage collection tests (Section 5, Figure 10)."""


from repro.analysis import Role
from repro.buffer import BufferTree


def make_roles(*ids):
    return [Role(i, "dep", "$x") for i in ids]


class TestLocalizedCollection:
    def test_leaf_purged_when_last_role_removed(self):
        buffer = BufferTree()
        (r,) = make_roles(2)
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        buffer.assign_roles(a, [(r, 1)])
        buffer.assign_roles(b, [(r, 1)])
        b.finished = True
        buffer.remove_role(b, r)
        assert list(a.children()) == []
        assert buffer.stats.nodes_purged == 1

    def test_deletion_propagates_bottom_up(self):
        """Figure 10: deleting can cascade to ancestors (but not the root)."""
        buffer = BufferTree()
        (r,) = make_roles(2)
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        c = buffer.new_element(b, "c")
        for node in (a, b, c):
            node.finished = True
        buffer.assign_roles(c, [(r, 1)])
        buffer.remove_role(c, r)
        assert buffer.is_empty()
        assert buffer.stats.nodes_purged == 3

    def test_propagation_stops_at_relevant_ancestor(self):
        buffer = BufferTree()
        r2, r3 = make_roles(2, 3)
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        for node in (a, b):
            node.finished = True
        buffer.assign_roles(a, [(r2, 1)])
        buffer.assign_roles(b, [(r3, 1)])
        buffer.remove_role(b, r3)
        assert list(a.children()) == []
        assert a.parent is buffer.document  # a survives: it has a role

    def test_node_with_relevant_descendant_survives(self):
        """Figure 2 step 7: book keeps roleless spine while title has r7."""
        buffer = BufferTree()
        r6, r7 = make_roles(6, 7)
        book = buffer.new_element(buffer.document, "book")
        title = buffer.new_element(book, "title")
        book.finished = title.finished = True
        buffer.assign_roles(book, [(r6, 1)])
        buffer.assign_roles(title, [(r7, 1)])
        buffer.remove_role(book, r6)
        assert book.parent is buffer.document  # kept: title still relevant
        buffer.remove_role(title, r7)
        assert buffer.is_empty()

    def test_multiplicity_delays_collection(self):
        buffer = BufferTree()
        (r,) = make_roles(3)
        a = buffer.new_element(buffer.document, "a")
        a.finished = True
        buffer.assign_roles(a, [(r, 2)])
        buffer.remove_role(a, r)
        assert a.parent is buffer.document  # one instance left
        buffer.remove_role(a, r)
        assert buffer.is_empty()


class TestUnfinishedNodes:
    def test_unfinished_node_marked_not_deleted(self):
        buffer = BufferTree()
        (r,) = make_roles(2)
        a = buffer.new_element(buffer.document, "a")
        buffer.assign_roles(a, [(r, 1)])
        buffer.remove_role(a, r)
        assert a.marked_deleted
        assert a.parent is buffer.document  # physically present

    def test_marked_node_purged_at_close(self):
        buffer = BufferTree()
        (r,) = make_roles(2)
        a = buffer.new_element(buffer.document, "a")
        buffer.assign_roles(a, [(r, 1)])
        buffer.remove_role(a, r)
        buffer.finish(a)
        assert buffer.is_empty()

    def test_close_time_recheck_keeps_resurrected_node(self):
        """Role-carrying descendants arriving after the mark rescue it."""
        buffer = BufferTree()
        r2, r3 = make_roles(2, 3)
        a = buffer.new_element(buffer.document, "a")
        buffer.assign_roles(a, [(r2, 1)])
        buffer.remove_role(a, r2)
        assert a.marked_deleted
        b = buffer.new_element(a, "b")
        buffer.assign_roles(b, [(r3, 1)])
        assert not a.marked_deleted  # resurrected by the new relevance
        buffer.finish(a)
        assert a.parent is buffer.document

    def test_finish_purges_roleless_structural_node(self):
        """Structural (promotion-guard) nodes are collected at close time."""
        buffer = BufferTree()
        a = buffer.new_element(buffer.document, "a")  # never had roles
        buffer.finish(a)
        assert buffer.is_empty()


class TestAggregateCoverage:
    def test_covered_node_not_purged(self):
        buffer = BufferTree()
        r_agg, r_dep = make_roles(5, 7)
        book = buffer.new_element(buffer.document, "book")
        buffer.assign_roles(book, [], aggregate=[(r_agg, 1)])
        title = buffer.new_element(book, "title")
        buffer.assign_roles(title, [(r_dep, 1)])
        title.finished = True
        # Removing the title's own role must NOT purge it: the book's
        # aggregate still covers the whole subtree (it will be output).
        buffer.remove_role(title, r_dep)
        assert title.parent is book

    def test_aggregate_removal_releases_subtree(self):
        buffer = BufferTree()
        (r_agg,) = make_roles(5)
        book = buffer.new_element(buffer.document, "book")
        buffer.assign_roles(book, [], aggregate=[(r_agg, 1)])
        buffer.new_element(book, "title")
        buffer.new_text(book, "x")
        for node in list(book.iter_subtree()):
            node.finished = True
        buffer.remove_role(book, r_agg, aggregate=True)
        assert buffer.is_empty()
        assert buffer.stats.nodes_purged == 3


class TestGcCounters:
    def test_gc_invocations_counted(self):
        buffer = BufferTree()
        (r,) = make_roles(2)
        a = buffer.new_element(buffer.document, "a")
        a.finished = True
        buffer.assign_roles(a, [(r, 1)])
        before = buffer.stats.gc_invocations
        buffer.remove_role(a, r)
        assert buffer.stats.gc_invocations == before + 1
