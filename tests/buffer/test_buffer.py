"""Buffer manager tests: structure, roles, statistics."""

import pytest

from repro.analysis import Role, UndefinedRoleRemoval
from repro.buffer import BufferTree


@pytest.fixture
def buffer():
    return BufferTree()


@pytest.fixture
def role():
    return Role(2, "binding", "$x")


class TestStructure:
    def test_new_element_links(self, buffer):
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        c = buffer.new_element(a, "c")
        assert a.first_child is b
        assert a.last_child is c
        assert b.next_sibling is c
        assert c.prev_sibling is b
        assert list(a.children()) == [b, c]

    def test_seq_is_monotone_document_order(self, buffer):
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        t = buffer.new_text(b, "x")
        c = buffer.new_element(a, "c")
        seqs = [n.seq for n in (a, b, t, c)]
        assert seqs == sorted(seqs)

    def test_unlink_middle_child(self, buffer):
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        c = buffer.new_element(a, "c")
        d = buffer.new_element(a, "d")
        c.unlink()
        assert list(a.children()) == [b, d]
        assert b.next_sibling is d
        assert d.prev_sibling is b

    def test_symbol_table_interns_tags(self, buffer):
        a1 = buffer.new_element(buffer.document, "book")
        a2 = buffer.new_element(a1, "book")
        assert a1.tag_id == a2.tag_id
        assert buffer.tag_name(a1.tag_id) == "book"

    def test_string_value(self, buffer):
        a = buffer.new_element(buffer.document, "a")
        buffer.new_text(a, "x")
        b = buffer.new_element(a, "b")
        buffer.new_text(b, "y")
        buffer.new_text(a, "z")
        assert a.string_value() == "xyz"

    def test_text_nodes_are_born_finished(self, buffer):
        a = buffer.new_element(buffer.document, "a")
        t = buffer.new_text(a, "x")
        assert t.finished
        assert not a.finished


class TestRoles:
    def test_assign_updates_subtree_counters(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        buffer.assign_roles(b, [(role, 2)])
        assert b.subtree_roles == 2
        assert a.subtree_roles == 2
        assert buffer.document.subtree_roles == 2

    def test_remove_updates_counters(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        buffer.assign_roles(a, [(role, 1)])
        buffer.remove_role(a, role)
        assert buffer.document.subtree_roles == 0

    def test_strict_undefined_removal_raises(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        with pytest.raises(UndefinedRoleRemoval):
            buffer.remove_role(a, role)

    def test_lenient_mode_ignores_undefined_removal(self, role):
        buffer = BufferTree(strict=False)
        a = buffer.new_element(buffer.document, "a")
        buffer.remove_role(a, role)  # no exception

    def test_aggregate_roles_separate(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        buffer.assign_roles(a, [], aggregate=[(role, 1)])
        assert a.aggregate_roles
        assert not a.roles
        buffer.remove_role(a, role, aggregate=True)
        assert not a.aggregate_roles


class TestStats:
    def test_hwm_tracks_peak_not_current(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        b = buffer.new_element(a, "b")
        buffer.assign_roles(b, [(role, 1)])
        b.finished = True
        a.finished = True
        peak = buffer.stats.hwm_nodes
        buffer.remove_role(b, role)  # b and a are purged
        assert buffer.stats.live_nodes == 0
        assert buffer.stats.hwm_nodes == peak == 2

    def test_byte_accounting_balances(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        t = buffer.new_text(a, "hello")
        buffer.assign_roles(a, [(role, 1)])
        a.finished = True
        buffer.remove_role(a, role)
        assert buffer.stats.live_bytes == 0

    def test_text_cost_includes_content(self, buffer):
        before = buffer.stats.live_bytes
        buffer.new_text(buffer.new_element(buffer.document, "a"), "x" * 100)
        model = buffer.stats.model
        assert buffer.stats.live_bytes - before == (
            model.element_cost() + model.text_cost("x" * 100)
        )

    def test_format_contents_shows_roles(self, buffer, role):
        a = buffer.new_element(buffer.document, "a")
        buffer.assign_roles(a, [(role, 2)])
        assert buffer.format_contents() == ["a{r2,r2}"]
