"""Documentation health: the fast half of tools/check_docs.py as tests.

CI's docs job additionally smoke-executes the README's ``gcx`` console
blocks; here we keep the checks that run in milliseconds so the tier-1
suite catches doc rot early.
"""

import ast
import re
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "tools"))
import check_docs  # noqa: E402


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        assert check_docs.check_module_docstrings() == []


class TestDocFilesExist:
    def test_required_docs_present(self):
        assert check_docs.check_docs_exist() == []

    @pytest.mark.parametrize(
        "name", ["README.md", "docs/CLI.md", "docs/SERVING.md"]
    )
    def test_docs_mention_only_real_subcommands(self, name):
        """Any `gcx <word>` in the docs must be a real CLI subcommand."""
        known = {
            "run",
            "run-multi",
            "serve",
            "serve-batch",
            "analyze",
            "table1",
            "xmark",
            "ablations",
            "dtd",
        }
        text = (REPO / name).read_text(encoding="utf-8")
        used = set(re.findall(r"\bgcx ([a-z0-9_-]+)\b", text))
        assert used <= known, f"unknown subcommands referenced: {used - known}"


class TestReadmeStructure:
    def test_console_blocks_present(self):
        assert check_docs.readme_console_commands(), "README quickstart lost"

    def test_package_map_lists_every_package(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        for package in (REPO / "src" / "repro").iterdir():
            if package.is_dir() and (package / "__init__.py").exists():
                assert f"src/repro/{package.name}" in text, (
                    f"README package map is missing src/repro/{package.name}"
                )


class TestDocstringExamples:
    def test_package_docstring_session_example_works(self):
        """The compile-once example in repro.__doc__ must actually run."""
        import doctest

        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0


class TestPublicSymbolDocstrings:
    def test_every_public_export_documented(self):
        import inspect

        import repro

        undocumented = [
            name
            for name in repro.__all__
            if callable(getattr(repro, name))
            and not inspect.getdoc(getattr(repro, name))
        ]
        assert undocumented == []
