#!/usr/bin/env python
"""Performance regression gate (run by CI's perf job).

Compares a fresh run of the quick benchmark suite (or a pre-recorded
``BENCH_*.json``) against the committed baseline and turns the deltas into
an exit status:

* machine-independent metrics (speedup ratios, hit rates, buffer high
  watermarks) that regress beyond ``--threshold`` FAIL the gate (exit 1);
* machine-dependent metrics (absolute MB/s numbers) WARN by default,
  because CI hardware differs from the machine that recorded the baseline;
  pass ``--strict-timings`` to fail on them too (useful locally);
* metrics with an absolute floor FAIL whenever the fresh value sinks
  below it, threshold notwithstanding: ``tokenizer_speedup`` ≥ 3.0 (the
  bytes-domain rewrite's acceptance criterion, raised from the PR 3
  floor of 2.0) and ``tokenizer_bytes_vs_str_speedup`` ≥ 1.0 (the bytes
  scanner must never fall behind the frozen str-domain batch lexer it
  replaced); see ``repro.bench.baseline.FLOORS`` for the full set.

Usage:
    python tools/bench_gate.py                       # run suite + gate
    python tools/bench_gate.py --out BENCH_fresh.json
    python tools/bench_gate.py --fresh BENCH_fresh.json   # gate a recording
    python tools/bench_gate.py --update              # rewrite the baseline

See docs/PERFORMANCE.md for the full workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench.baseline import (  # noqa: E402  (path bootstrap above)
    FLOORS,
    compare,
    load_baseline,
    run_quick_suite,
    save_baseline,
)

DEFAULT_BASELINE = REPO / "BENCH_baseline.json"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="benchmark regression gate", epilog=__doc__
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline snapshot (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="gate this pre-recorded BENCH_*.json instead of running the suite",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the freshly measured BENCH_*.json here",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--strict-timings",
        action="store_true",
        help="fail (not warn) on machine-dependent timing regressions",
    )
    parser.add_argument(
        "--doc-bytes",
        type=int,
        default=1_200_000,
        help="benchmark document size when running the suite",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the fresh results over the baseline and exit 0",
    )
    args = parser.parse_args()

    if args.fresh is not None:
        try:
            fresh = load_baseline(args.fresh)
        except (OSError, ValueError) as error:
            print(f"ERROR: cannot load {args.fresh}: {error}", file=sys.stderr)
            return 2
        print(f"gating pre-recorded results from {args.fresh}")
    else:
        print(f"running quick benchmark suite ({args.doc_bytes} byte document)...")
        fresh = run_quick_suite(target_bytes=args.doc_bytes, seed=args.seed)

        def floor_margin(run: dict) -> float:
            return min(
                (
                    run[name].value - floor
                    for name, floor in FLOORS.items()
                    if name in run
                ),
                default=0.0,
            )

        if floor_margin(fresh) < 0:
            # Hard floors bypass the noise threshold, and shared CI runners
            # are noisy — confirm a floor miss with one re-measurement
            # before failing the gate.  Whichever *whole run* clears the
            # floors by the wider margin is used for gating and persistence,
            # so --out/--update never records a cherry-picked hybrid.
            print("floored metric under its floor; re-measuring to rule out noise")
            retry = run_quick_suite(target_bytes=args.doc_bytes, seed=args.seed)
            if floor_margin(retry) > floor_margin(fresh):
                fresh = retry
        for metric in fresh.values():
            print(f"  {metric.name}: {metric.value:.4g} {metric.unit}")

    def persist(target: Path) -> None:
        if args.fresh is not None:
            # Copy the recording verbatim: re-saving would stamp it with
            # this invocation's host/document metadata, not the one that
            # actually measured the numbers.
            target.write_text(
                args.fresh.read_text(encoding="utf-8"), encoding="utf-8"
            )
        else:
            save_baseline(
                fresh, target, target_bytes=args.doc_bytes, seed=args.seed
            )

    if args.out is not None:
        persist(args.out)
        print(f"wrote fresh snapshot to {args.out}")

    if args.update:
        persist(args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.is_file():
        print(
            f"ERROR: no baseline at {args.baseline}; record one with --update",
            file=sys.stderr,
        )
        return 2

    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError) as error:
        print(f"ERROR: cannot load {args.baseline}: {error}", file=sys.stderr)
        return 2
    deltas = compare(baseline, fresh)
    failures: list[str] = []
    warnings: list[str] = []
    # A tracked metric that vanished from the fresh run is a gate bypass,
    # not a pass — renames/deletions must re-record the baseline explicitly.
    for name in sorted(set(baseline) - set(fresh)):
        failures.append(
            f"baseline metric {name!r} missing from the fresh run "
            "(rename/removal requires --update)"
        )
    for name in sorted(set(fresh) - set(baseline)):
        warnings.append(
            f"new metric {name!r} has no baseline yet (record with --update)"
        )
    # Hard floors hold against the fresh values directly — a baseline that
    # predates (or lost) a floored metric must not disable its floor.
    for name, floor in sorted(FLOORS.items()):
        metric = fresh.get(name)
        if metric is not None and metric.value < floor and name not in baseline:
            failures.append(
                f"{name} = {metric.value:.4g} {metric.unit} is below the "
                f"hard floor {floor:.4g} (no baseline entry)"
            )
    for delta in deltas:
        if delta.below_floor:
            failures.append(
                f"{delta.name} = {delta.fresh:.4g} {delta.unit} is below the "
                f"hard floor {FLOORS[delta.name]:.4g}"
            )
            continue
        if not delta.exceeded(args.threshold):
            if delta.regression > 0:
                warnings.append(delta.describe() + " [within threshold]")
            continue
        if delta.machine_dependent and not args.strict_timings:
            warnings.append(delta.describe() + " [machine-dependent, not gated]")
        else:
            failures.append(delta.describe())

    for warning in warnings:
        print(f"WARN: {warning}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        print(
            f"bench gate FAILED: {len(failures)} metric(s) regressed beyond "
            f"{args.threshold:.0%} (or sank below a hard floor)",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate passed ({len(deltas)} metrics compared)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
