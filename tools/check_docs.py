#!/usr/bin/env python
"""Documentation health check (run by CI's docs job).

Four checks, all stdlib-only:

1. every module under ``src/repro`` has a module docstring;
2. the documentation files the README promises actually exist;
3. the ``$``-prefixed shell lines inside README.md's fenced ``console``
   blocks are smoke-executed in a temporary directory, with ``gcx``
   resolved to ``python -m repro.cli`` — so the quickstart cannot rot;
4. docs/PERFORMANCE.md stays in sync with the hot path it describes:
   every hard-floored metric in ``repro.bench.baseline.FLOORS`` (with
   its floor value) and every tokenizer tuning knob must be mentioned.

Exit status 0 when everything passes; each failure is reported and the
script exits 1.

Usage:  python tools/check_docs.py  [--skip-readme-commands]
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

REQUIRED_DOCS = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/CLI.md",
    "docs/CONCURRENCY.md",
    "docs/EARLINESS.md",
    "docs/JOINS.md",
    "docs/MULTIQUERY.md",
    "docs/PERFORMANCE.md",
    "docs/SCHEMA.md",
    "docs/SERVING.md",
    "examples/README.md",
]

#: Commands in README console blocks slower than a docs check should be
#: (or that block forever, like the server); they are validated for
#: subcommand existence but not executed.  "gcx serve " keeps its trailing
#: space so it does not also match "gcx serve-batch".
SKIP_PREFIXES = ("gcx table1", "gcx serve ")


def check_module_docstrings() -> list[str]:
    """Every module under src/repro must open with a docstring."""
    failures = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            failures.append(f"missing module docstring: {path.relative_to(REPO)}")
    return failures


#: Names the hot-path section of docs/PERFORMANCE.md must keep mentioning
#: (beyond the FLOORS metrics, which are cross-checked from the code):
#: the lexer's batch budget and the sharded-scan environment knobs.
PERFORMANCE_TERMS = (
    "BATCH_BYTES",
    "GCX_LEX_SHARDS",
    "GCX_LEX_SHARD_MIN_BYTES",
    "text_decode_count",
    "_reference_lexer",
    "_str_lexer",
)


def check_performance_doc() -> list[str]:
    """docs/PERFORMANCE.md must track the code's floors and tuning knobs."""
    path = REPO / "docs/PERFORMANCE.md"
    if not path.is_file():
        return []  # check_docs_exist already reports the absence
    text = path.read_text(encoding="utf-8")
    failures = []
    sys.path.insert(0, str(SRC))
    from repro.bench.baseline import FLOORS

    for name, floor in sorted(FLOORS.items()):
        if name not in text:
            failures.append(
                f"docs/PERFORMANCE.md does not mention the floored metric {name!r}"
            )
        elif f"{floor:g}" not in text:
            failures.append(
                f"docs/PERFORMANCE.md does not state the floor {floor:g} "
                f"for {name!r} (FLOORS changed without a docs update?)"
            )
    for term in PERFORMANCE_TERMS:
        if term not in text:
            failures.append(f"docs/PERFORMANCE.md does not mention {term!r}")
    return failures


def check_docs_exist() -> list[str]:
    return [
        f"missing documentation file: {name}"
        for name in REQUIRED_DOCS
        if not (REPO / name).is_file()
    ]


def readme_console_commands() -> list[str]:
    """The ``$ ...`` lines of README.md's fenced console blocks, in order."""
    text = (REPO / "README.md").read_text(encoding="utf-8")
    commands: list[str] = []
    for block in re.findall(r"```console\n(.*?)```", text, flags=re.DOTALL):
        for line in block.splitlines():
            if line.startswith("$ "):
                commands.append(line[2:].strip())
    return commands


def check_readme_commands() -> list[str]:
    """Smoke-execute the README quickstart in a scratch directory."""
    commands = readme_console_commands()
    if not commands:
        return ["README.md contains no ```console blocks with $ commands"]
    failures: list[str] = []
    gcx = f"{shlex.quote(sys.executable)} -m repro.cli"
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    with tempfile.TemporaryDirectory() as tmp:
        for command in commands:
            if command.startswith(SKIP_PREFIXES):
                subcommand = command.split()[1]
                if subcommand not in _known_subcommands():
                    failures.append(f"README references unknown subcommand: {command}")
                continue
            head = shlex.split(command)[0]
            if head == "gcx":
                shell_line = gcx + command[len("gcx"):]
            elif head in ("printf", "echo"):
                shell_line = command  # file-setup lines; need > redirection
            else:
                failures.append(
                    f"README uses unexpected command (not smoke-run): {command}"
                )
                continue
            proc = subprocess.run(
                shell_line,
                shell=True,
                cwd=tmp,
                capture_output=True,
                text=True,
                timeout=300,
                env=env,
            )
            if proc.returncode != 0:
                failures.append(
                    f"README command failed ({proc.returncode}): {command}\n"
                    f"    stderr: {proc.stderr.strip()[:300]}"
                )
    return failures


def _known_subcommands() -> set[str]:
    sys.path.insert(0, str(SRC))
    from repro.cli import main  # noqa: F401  (import validates the module)

    return {
        "run",
        "run-multi",
        "serve",
        "serve-batch",
        "analyze",
        "table1",
        "xmark",
        "ablations",
        "dtd",
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-readme-commands",
        action="store_true",
        help="only check docstrings and file presence (fast)",
    )
    args = parser.parse_args()

    failures = (
        check_module_docstrings() + check_docs_exist() + check_performance_doc()
    )
    if not args.skip_readme_commands:
        failures += check_readme_commands()

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} docs check(s) failed", file=sys.stderr)
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
