"""End-to-end bounded memory: query a file without ever loading it.

Generates an XMark file on disk, then evaluates a query through the
file-backed tokenizer: the resident set is the buffer high watermark plus a
small sliding I/O window, regardless of the file size.

Run:  python examples/streaming_from_file.py
"""

import os
import tempfile

from repro import GCXEngine, XMARK_QUERIES, generate_xmark
from repro.xmlio import tokenize_file


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "auctions.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(generate_xmark(0.01, seed=99))
        size = os.path.getsize(path)
        print(f"wrote {size:,} bytes to {path}")

        engine = GCXEngine()
        query = XMARK_QUERIES["Q1"].adapted
        result = engine.run(query, tokenize_file(path, chunk_size=32 * 1024))

        print(f"\nQ1 result: {result.output}")
        print(f"buffer high watermark: {result.stats.hwm_nodes} nodes "
              f"/ {result.hwm_bytes:,} modelled bytes")
        print(f"document size        : {size:,} bytes")
        print(f"-> resident data stayed ~{size // max(result.hwm_bytes, 1):,}x "
              "smaller than the input (plus one 32KB I/O window)")


if __name__ == "__main__":
    main()
