"""Reproduce Figure 2: active garbage collection, step by step.

Runs the introduction's query over the paper's example stream in the base
configuration (per-node roles, no early updates, no redundancy elimination)
and prints, per input token, the buffer contents with role annotations and
the output produced so far — the three columns of Figure 2.

Run:  python examples/buffer_trace.py
"""

from repro.analysis import CompileOptions, compile_query
from repro.buffer import BufferTree
from repro.engine.evaluator import Evaluator
from repro.stream import StreamPreprojector
from repro.xmlio import tokenize
from repro.xmlio.serialize import StringSink
from repro.xquery import unparse

INTRO_QUERY = """
<r> {
for $bib in /bib return
((for $x in $bib/* return
if (not(exists $x/price)) then $x else ()),
for $b in $bib/book return $b/title)
} </r>
"""

STREAM = "<bib><book><title/><author/></book><book><price>9</price></book></bib>"


class TracingPreprojector(StreamPreprojector):
    """Prints a Figure 2 row after every token it processes."""

    def __init__(self, *args, sink: StringSink, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sink = sink
        self._step = 0

    def pull(self) -> bool:
        before = self.buffer.stats.tokens_read
        more = super().pull()
        if self.buffer.stats.tokens_read != before:
            self._step += 1
            print(f"step {self._step:2d}  buffer:")
            for line in self.buffer.format_contents() or ["  (empty)"]:
                print("    " + line)
            print(f"        output so far: {self._sink.getvalue()!r}")
        return more


def main() -> None:
    compiled = compile_query(
        INTRO_QUERY, CompileOptions(early_updates=False, eliminate_redundant=False)
    )
    print("rewritten query (with signOff statements):")
    print(unparse(compiled.rewritten, indent=2))
    print()
    print(f"input stream: {STREAM}")
    print()

    buffer = BufferTree()
    sink = StringSink()
    preprojector = TracingPreprojector(
        tokenize(STREAM),
        compiled.projection_tree,
        buffer,
        aggregate_roles=False,
        sink=sink,
    )
    evaluator = Evaluator(
        compiled.rewritten,
        buffer,
        preprojector,
        sink,
        aggregate_roles=False,
        on_event=lambda event: print(f"        {event}"),
    )
    evaluator.run()
    print()
    print("final output:", sink.getvalue())
    print("final stats: ", buffer.stats.summary())


if __name__ == "__main__":
    main()
