"""Compile once, run many, and stream results before the input ends.

A monitoring service evaluates the same query over a whole batch of
documents: the static analysis (projection tree, signOff insertion) runs a
single time, then each document only pays for the dynamic half of the
Figure 11 pipeline.  The second half of the demo shows *incremental
output*: on a query whose first match occurs early, the first result
fragment is emitted after reading only a prefix of the input stream —
the engine is streaming on the output side too, not just the input side.

Run:  python examples/session_streaming.py
"""

import sys

from repro import GCXEngine, WriterSink, generate_xmark
from repro.xmlio import tokenize

QUERY = """
<names> {
  for $site in /site return
  for $people in $site/people return
  for $person in $people/person return
    $person/name
} </names>
"""


class CountingTokens:
    """Wrap a token iterator, counting how many tokens were consumed."""

    def __init__(self, tokens):
        self._tokens = iter(tokens)
        self.consumed = 0

    def __iter__(self):
        return self

    def __next__(self):
        token = next(self._tokens)
        self.consumed += 1
        return token


def main() -> None:
    engine = GCXEngine()
    session = engine.session(QUERY)  # static analysis happens HERE, once

    # --- run many: one compiled query, a batch of documents ------------
    print("compile-once/run-many over three documents:")
    for seed in (1, 2, 3):
        document = generate_xmark(0.002, seed=seed)
        result = session.run(document)
        names = result.output.count("<name>")
        print(
            f"  seed {seed}: {len(document):>7,} bytes in, "
            f"{names} names out, buffer hwm {result.stats.hwm_nodes} nodes"
        )
    print(f"  runs completed on this session: {session.runs_completed}")

    # --- incremental output: first token before input is exhausted ----
    document = generate_xmark(0.01, seed=7)
    source = CountingTokens(tokenize(document))
    total = sum(1 for _ in tokenize(document))

    stream = session.run_streaming(source)
    first = next(stream)  # the constructed <names> wrapper: needs no input
    at_wrapper = source.consumed
    first_data = next(stream)  # the first <name> matched in the document
    print("\nincremental output on a", f"{len(document):,}-byte document:")
    print(f"  wrapper token {first!r} arrived after {at_wrapper} input tokens;")
    print(
        f"  first matched token {first_data!r} after "
        f"{source.consumed}/{total} input tokens "
        f"({source.consumed / total:.1%} of the stream)"
    )

    remaining = sum(1 for _ in stream)  # drain the rest
    print(f"  ...then {remaining} more tokens; ", end="")
    print(f"time to first output: {stream.first_output_seconds * 1000:.2f}ms")
    print(f"  final stats: {stream.result.stats.summary()}")

    # --- constant-memory output: serialize straight to a writable ------
    print("\nstreaming the serialized result to stdout via WriterSink:")
    print("  ", end="")
    sink = WriterSink(sys.stdout)
    session.run(generate_xmark(0.0005, seed=11), sink=sink)
    print(f"\n  ({sink.chars_written} characters written incrementally)")


if __name__ == "__main__":
    main()
