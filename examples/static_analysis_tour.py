"""A tour of the static analysis: Figures 1, 9 and 12 regenerated.

For each example query the script prints the variable structure, the
dependencies of Definition 2, the projection tree with role assignment,
the rewritten query with signOff statements, and the effect of
redundant-role elimination.

Run:  python examples/static_analysis_tour.py
"""

from repro.analysis import CompileOptions, compile_query
from repro.xquery import unparse

INTRO_QUERY = """
<r> {
for $bib in /bib return
((for $x in $bib/* return
if (not(exists $x/price)) then $x else ()),
for $b in $bib/book return $b/title)
} </r>
"""

FIGURE9_QUERY = """
<q>
{for $a in //a
return
<a>
{for $b in //b
return <b/>}
</a>
} </q>
"""


def show(title: str, query_text: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    base = compile_query(
        query_text, CompileOptions(early_updates=False, eliminate_redundant=False)
    )
    print("\nvariables (parVar / straight / fsa):")
    for var in base.variables.names:
        straight = "straight" if base.straight.is_straight(var) else "not straight"
        print(
            f"  {var:8s} parent={base.variables.parent(var) or '-':8s}"
            f" {straight:13s} fsa={base.straight.fsa(var)}"
        )
    print("\ndependencies (Definition 2):")
    for var, deps in base.dependencies.items():
        for dep in deps:
            print(f"  dep({var}) contains {dep}")
    print("\nprojection tree (cf. Figure 1):")
    print(base.projection_tree.format())
    print("\nrewritten query with signOff statements (cf. Figures 8/9):")
    print(unparse(base.rewritten, indent=2))

    optimized = compile_query(
        query_text, CompileOptions(early_updates=False, eliminate_redundant=True)
    )
    if optimized.eliminated_roles:
        names = ", ".join(role.name for role in optimized.eliminated_roles)
        print(f"\nredundant roles eliminated (cf. Figure 12): {names}")
        print("projection tree after elimination:")
        print(optimized.projection_tree.format(merge_roleless=True))
    else:
        print("\nno redundant roles found for this query")
    print()


def main() -> None:
    show("The introduction's query (Figures 1, 2, 12)", INTRO_QUERY)
    show("Figure 9's query (non-straight variables)", FIGURE9_QUERY)


if __name__ == "__main__":
    main()
