"""Reproduce the paper's Table 1 (scaled down for pure Python).

Generates XMark documents at four sizes, runs the five adapted benchmark
queries on every engine, and prints the table in the paper's layout
("time / memory high watermark") together with the qualitative shape
checks described in README.md's "Reproducing Table 1" section.

Run:  python examples/reproduce_table1.py [--sizes 256k,512k,1m,2m] [--quick]
"""

import argparse
import sys

from repro.bench import HarnessConfig, format_table1, run_table1, shape_report


def parse_size(token: str) -> int:
    token = token.strip().lower()
    factor = 1
    if token.endswith("k"):
        factor, token = 1_000, token[:-1]
    elif token.endswith("m"):
        factor, token = 1_000_000, token[:-1]
    return int(float(token) * factor)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="256k,512k,1m,2m")
    parser.add_argument("--budget", type=float, default=300.0)
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes, finishes in ~30s"
    )
    args = parser.parse_args()

    sizes = "64k,128k,256k" if args.quick else args.sizes
    config = HarnessConfig(
        sizes_bytes=tuple(parse_size(t) for t in sizes.split(",")),
        cell_budget_seconds=args.budget,
    )

    def progress(cell):
        print(
            f"  {cell.query:4s} {cell.engine:16s} {cell.doc_bytes:>9,d}B"
            f" -> {cell.cell}",
            file=sys.stderr,
        )

    print(
        "Running the Table 1 grid "
        f"({len(config.queries)} queries x {len(config.engines)} engines x "
        f"{len(config.sizes_bytes)} sizes)...",
        file=sys.stderr,
    )
    measurements = run_table1(config, progress=progress)
    print()
    print(
        format_table1(
            measurements,
            title="Table 1 (reproduction; paper sizes 10-200MB scaled down)",
        )
    )
    print(shape_report(measurements))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
