"""Domain scenario: streaming auction alerts with bounded memory.

A monitoring service watches an auction feed (XMark's data model) and
produces alerts for (a) high-value closed sales and (b) persons whose
profile claims a six-figure income but who have no credit card on file.
The feed is far larger than what the monitor may buffer; active garbage
collection keeps the working set to a handful of nodes.

Run:  python examples/auction_alerts.py
"""

from repro import GCXEngine, NaiveDomEngine, generate_xmark

ALERT_QUERY = """
<alerts> {
  for $site in /site return
  ((for $people in $site/people return
    for $person in $people/person return
      if ($person/profile/income >= "100000" and not(exists $person/creditcard))
      then <verify>{$person/name/text()}</verify>
      else ()),
   (for $closed in $site/closed_auctions return
    for $sale in $closed/closed_auction return
      if ($sale/price >= "350")
      then <big-sale>{($sale/itemref/item/text(), $sale/price)}</big-sale>
      else ()))
} </alerts>
"""


def main() -> None:
    print("generating an auction feed (~350 KB)...")
    feed = generate_xmark(0.008, seed=2024)
    print(f"feed size: {len(feed):,} bytes\n")

    streaming = GCXEngine().run(ALERT_QUERY, feed)
    alerts = streaming.output.count("<big-sale>") + streaming.output.count(
        "<verify>"
    )
    print(f"alerts raised: {alerts}")
    print(f"  big sales : {streaming.output.count('<big-sale>')}")
    print(f"  verify    : {streaming.output.count('<verify>')}")
    print()
    print("memory comparison (buffer high watermark):")
    print(
        f"  gcx (streaming + active GC): {streaming.stats.hwm_nodes:6d} nodes"
        f" / {streaming.hwm_bytes:10,d} bytes"
    )
    in_memory = NaiveDomEngine().run(ALERT_QUERY, feed)
    print(
        f"  naive in-memory DOM        : {in_memory.stats.hwm_nodes:6d} nodes"
        f" / {in_memory.hwm_bytes:10,d} bytes"
    )
    factor = in_memory.hwm_bytes / max(streaming.hwm_bytes, 1)
    print(f"  -> the monitor holds {factor:,.0f}x less data than a DOM would")
    assert streaming.output == in_memory.output


if __name__ == "__main__":
    main()
