"""Quickstart: evaluate a streaming XQuery with active garbage collection.

Run:  python examples/quickstart.py
"""

from repro import ENGINES, GCXEngine

QUERY = """
<catalog> {
  for $bib in /bib return
  for $book in $bib/book return
    if (exists $book/price)
    then <priced>{($book/title, $book/price)}</priced>
    else <unpriced>{$book/title}</unpriced>
} </catalog>
"""

DOCUMENT = """
<bib>
  <book><title>Foundations of Databases</title><price>65</price></book>
  <book><title>Data on the Web</title></book>
  <book><title>XQuery from the Experts</title><price>40</price></book>
</bib>
"""


def main() -> None:
    engine = GCXEngine()
    result = engine.run(QUERY, DOCUMENT)

    print("query result:")
    print(" ", result.output)
    print()
    print("buffer statistics (the point of the paper):")
    print(" ", result.stats.summary())
    print()

    print("the same query on every engine:")
    for name, factory in ENGINES.items():
        run = factory().run(QUERY, DOCUMENT)
        print(
            f"  {name:16s} high watermark {run.stats.hwm_nodes:3d} nodes"
            f" / {run.hwm_bytes:5d} modelled bytes"
        )


if __name__ == "__main__":
    main()
