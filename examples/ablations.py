"""Ablation study: what each Section 6 optimization buys.

Runs the XMark benchmark queries under every engine configuration — full
GCX, each optimization disabled individually, and the paper's base scheme —
and reports buffer watermarks, role traffic and GC activity.

Run:  python examples/ablations.py
"""

from repro.bench.ablation import format_ablations, run_ablations
from repro.xmark import XMARK_QUERIES, generate_xmark


def main() -> None:
    document = generate_xmark(0.002, seed=7)
    print(f"document: {len(document):,} bytes (XMark, seed 7)\n")
    queries = {
        name: XMARK_QUERIES[name].adapted for name in ("Q1", "Q13", "Q20")
    }
    cells = run_ablations(queries, document)
    print(format_ablations(cells))
    print()
    print("reading guide:")
    print("  no-aggregate-roles : role instances jump (one per subtree node)")
    print("  no-early-updates   : outputs linger until their scope ends")
    print("  no-redundancy-elim : extra binding roles are assigned and removed")
    print("  base-scheme        : Sections 2-5 exactly as in Figure 2")


if __name__ == "__main__":
    main()
