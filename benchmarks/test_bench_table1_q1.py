"""Table 1, XMark Q1: evaluation time and buffer high watermark."""

import pytest

from benchmarks._table1_common import ENGINE_NAMES, run_table1_row


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_table1_q1(benchmark, engine_name, xmark_small):
    run_table1_row(benchmark, engine_name, "Q1", xmark_small)
