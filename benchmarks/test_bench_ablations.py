"""Ablation benches for the Section 6 optimizations.

The paper asserts that early updates purge sooner, aggregate roles shrink
role-set overhead, and redundant-role elimination benefits both memory and
runtime.  Each ablation benchmarks GCX with exactly one optimization
disabled, attaching the buffer watermark for comparison.
"""

import pytest

from repro.engine import EngineOptions, GCXEngine
from repro.xmark import XMARK_QUERIES

CONFIGS = {
    "full": EngineOptions(),
    "no-early-updates": EngineOptions(early_updates=False),
    "no-aggregate-roles": EngineOptions(aggregate_roles=False),
    "no-redundancy-elim": EngineOptions(eliminate_redundant_roles=False),
    "paper-base-scheme": EngineOptions(
        early_updates=False,
        aggregate_roles=False,
        eliminate_redundant_roles=False,
    ),
}

_RESULTS: dict[tuple[str, str], tuple[int, int]] = {}


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("query_name", ("Q1", "Q13", "Q20"))
def test_ablation(benchmark, config_name, query_name, xmark_small):
    engine = GCXEngine(CONFIGS[config_name])
    compiled = engine.compile(XMARK_QUERIES[query_name].adapted)
    result = benchmark(lambda: engine.run(compiled, xmark_small))
    _RESULTS[(config_name, query_name)] = (
        result.stats.hwm_bytes,
        result.stats.roles_assigned,
    )
    benchmark.extra_info["hwm_bytes"] = result.stats.hwm_bytes
    benchmark.extra_info["roles_assigned"] = result.stats.roles_assigned


def test_aggregate_roles_reduce_role_instances():
    """Aggregate roles assign one role per subtree instead of per node."""
    full = _RESULTS.get(("full", "Q13"))
    ablated = _RESULTS.get(("no-aggregate-roles", "Q13"))
    if full is None or ablated is None:
        pytest.skip("ablation benches did not run")
    assert full[1] < ablated[1]


def test_redundancy_elimination_reduces_roles():
    full = _RESULTS.get(("full", "Q20"))
    ablated = _RESULTS.get(("no-redundancy-elim", "Q20"))
    if full is None or ablated is None:
        pytest.skip("ablation benches did not run")
    assert full[1] <= ablated[1]
