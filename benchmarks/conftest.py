"""Shared fixtures for the benchmark suites.

Documents are generated once per session.  Sizes are scaled down ~100x from
the paper's 10-200 MB (pure Python vs compiled C++); the *shape* of every
series is what EXPERIMENTS.md compares against Table 1.
"""

import pytest

from repro.xmark import generate_xmark

#: The benchmark document ladder (bytes are approximate).
SIZES = {
    "small": 0.001,  # ~40 KB
    "medium": 0.002,  # ~80 KB
    "large": 0.004,  # ~160 KB
}


@pytest.fixture(scope="session")
def xmark_documents():
    return {name: generate_xmark(scale, seed=42) for name, scale in SIZES.items()}


@pytest.fixture(scope="session")
def xmark_small(xmark_documents):
    return xmark_documents["small"]
