"""Component micro-benchmarks: tokenizer, preprojector, generator, parser.

Not part of the paper's tables; these track the substrate costs so
regressions in the streaming pipeline are visible independently of whole-
query runs.
"""


from repro.analysis import compile_query
from repro.buffer import BufferTree
from repro.stream import StreamPreprojector
from repro.xmark import XMARK_QUERIES, generate_xmark
from repro.xmlio import tokenize
from repro.xquery import parse_query


def test_tokenizer_throughput(benchmark, xmark_small):
    def scan():
        count = 0
        for _token in tokenize(xmark_small):
            count += 1
        return count

    tokens = benchmark(scan)
    benchmark.extra_info["tokens"] = tokens
    benchmark.extra_info["doc_bytes"] = len(xmark_small)


def test_preprojector_throughput(benchmark, xmark_small):
    compiled = compile_query(XMARK_QUERIES["Q1"].adapted)

    def project():
        buffer = BufferTree(strict=False)
        preprojector = StreamPreprojector(
            tokenize(xmark_small), compiled.projection_tree, buffer
        )
        preprojector.run_to_completion()
        return buffer.stats.hwm_nodes

    benchmark(project)


def test_query_compilation(benchmark):
    benchmark(lambda: compile_query(XMARK_QUERIES["Q8"].adapted))


def test_query_parsing(benchmark):
    benchmark(lambda: parse_query(XMARK_QUERIES["Q20"].adapted))


def test_xmark_generation(benchmark):
    document = benchmark(lambda: generate_xmark(0.0005, seed=1))
    benchmark.extra_info["doc_bytes"] = len(document)
