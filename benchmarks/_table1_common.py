"""Shared driver for the per-query Table 1 benchmarks.

Each ``test_bench_table1_q*.py`` module parametrizes one Table 1 row over
the engine columns: the benchmark value is evaluation time; the buffer high
watermark is attached as ``extra_info`` so the benchmark JSON carries the
memory column as well.
"""

import pytest

from repro.baselines import ENGINES, UnsupportedQueryError
from repro.xmark import XMARK_QUERIES

ENGINE_NAMES = ("gcx", "flux-like", "projection-only", "naive-dom")


def run_table1_row(benchmark, engine_name: str, query_name: str, document: str):
    query = XMARK_QUERIES[query_name]
    engine = ENGINES[engine_name]()
    try:
        compiled = engine.compile(query.adapted)
    except UnsupportedQueryError:
        pytest.skip(f"{engine_name} does not support {query_name} (n/a in Table 1)")
    result = benchmark(lambda: engine.run(compiled, document))
    benchmark.extra_info["hwm_bytes"] = result.hwm_bytes
    benchmark.extra_info["hwm_nodes"] = result.hwm_nodes
    benchmark.extra_info["output_bytes"] = len(result.output)
    return result
