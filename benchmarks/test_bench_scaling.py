"""Scaling benches: Table 1 read column-wise (memory vs document size).

The paper's headline claim: GCX memory is *independent of the input stream
size* for Q1, Q6, Q13 and Q20, and grows for the join Q8.  Each bench runs
one (query, size) cell on GCX; the asserted shape checks live at the bottom
and run on the collected watermarks.
"""

import pytest

from repro.engine import GCXEngine
from repro.xmark import XMARK_QUERIES

_WATERMARKS: dict[tuple[str, str], int] = {}

FLAT_QUERIES = ("Q1", "Q6", "Q13", "Q20")


@pytest.mark.parametrize("query_name", FLAT_QUERIES + ("Q8",))
@pytest.mark.parametrize("size", ("small", "medium", "large"))
def test_gcx_scaling(benchmark, query_name, size, xmark_documents):
    document = xmark_documents[size]
    engine = GCXEngine()
    compiled = engine.compile(XMARK_QUERIES[query_name].adapted)
    result = benchmark(lambda: engine.run(compiled, document))
    _WATERMARKS[(query_name, size)] = result.stats.hwm_bytes
    benchmark.extra_info["hwm_bytes"] = result.stats.hwm_bytes
    benchmark.extra_info["doc_bytes"] = len(document)


@pytest.mark.parametrize("query_name", FLAT_QUERIES)
def test_gcx_memory_flat(query_name):
    """GCX buffers are size-independent for the non-join queries."""
    small = _WATERMARKS.get((query_name, "small"))
    large = _WATERMARKS.get((query_name, "large"))
    if small is None or large is None:
        pytest.skip("scaling benches did not run")
    assert large <= small * 2.5, f"{query_name}: {small} -> {large}"


def test_gcx_memory_grows_for_join():
    """Q8's nested-loop join buffers linearly (9.8MB->86MB in the paper)."""
    small = _WATERMARKS.get(("Q8", "small"))
    large = _WATERMARKS.get(("Q8", "large"))
    if small is None or large is None:
        pytest.skip("scaling benches did not run")
    assert large >= small * 2, f"Q8: {small} -> {large}"
