"""Process-sharded document scanning: parallel lexing with a merge check.

Python's GIL serializes the in-process tokenizer, so the only real
parallelism available for the scan itself is multi-process: split the
document into byte ranges at safe tag boundaries, lex every shard in a
:class:`~concurrent.futures.ProcessPoolExecutor` worker, and merge the
per-shard event lists back into one token stream.  This module implements
that stretch path behind two environment variables:

* ``GCX_LEX_SHARDS`` — shard count; unset, ``0`` or ``1`` disables the
  path entirely (the callers in :mod:`repro.xmlio.lexer` and
  :mod:`repro.xmlio.filelexer` do not even import this module then).
* ``GCX_LEX_SHARD_MIN_BYTES`` — minimum document size worth the worker
  round-trip (default 4 MiB; tests set 0 to exercise the path on small
  documents).

Safety model
------------
Sharding must never change observable behavior, so every shortcut has a
sequential safety net:

1. **Split planning** mirrors the sequential lexer's own skipping rules: a
   single claim-scan walks ``<!``/``<?`` constructs (comments, CDATA,
   processing instructions, DOCTYPE with its bracketed subset) exactly the
   way the lexer skips them, and split points are only placed at a ``<``
   that starts a tag *outside* all such regions — a position where the
   sequential scanner would be at a token boundary.
2. **Workers** run the ordinary :class:`~repro.xmlio.lexer.XMLTokenizer`
   in ``fragment`` mode (document-level checks suspended) and return
   compact event tuples — tag names as ``str``, text as the *undecoded*
   byte span, so decode-on-demand survives the process hop.  A worker that
   hits any lexical error returns ``None``.
3. **The merger** re-validates the concatenated events against the full
   document grammar (tag nesting, single root, no character data outside
   the root) *before* yielding anything.  Any worker failure or validation
   mismatch abandons the sharded result and the caller falls back to the
   sequential scanner, which reproduces the exact error (or the exact
   stream) with document-absolute positions.

The merged token list is materialized up front — the latency win of
parallel scanning is bought with O(tokens) memory, which is why the
minimum-size gate exists.  Shards of in-memory documents are shipped to
workers by pickling the byte range; file shards are shipped as
``(path, lo, hi)`` and read by the worker itself.  The worker pool uses
the **spawn** start method because callers tokenize from arbitrary
threads (see :func:`_get_executor`).
"""

from __future__ import annotations

import atexit
import mmap
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from sys import intern
from typing import Iterator

from repro.xmlio.lexer import XMLSyntaxError, XMLTokenizer, _ws_only
from repro.xmlio.tokens import (
    EndTag,
    LazyCData,
    LazyText,
    StartTag,
    Token,
)

__all__ = ["maybe_tokenize_sharded", "maybe_tokenize_file_sharded"]

DEFAULT_MIN_BYTES = 4 * 1024 * 1024

# Event kinds (worker -> parent).
_START, _END, _TEXT, _CDATA = 0, 1, 2, 3

# Bytes that may follow ``<`` at a legitimate tag boundary: ``/`` (end
# tag), an ASCII name-start character, or the lead byte of a multi-byte
# UTF-8 name.
_TAGISH = frozenset(b"/_:" + bytes(range(0x41, 0x5B)) + bytes(range(0x61, 0x7B)))


def _shard_count() -> int:
    # A multiprocessing child never shards, whatever the env says: its
    # parent already owns the parallelism (a SessionPool process worker,
    # or one of our own shard workers), and nesting executors would
    # oversubscribe the cores — or deadlock outright if the child was
    # *forked* while a parent thread held this module's executor lock.
    # The gate sits before any lock acquisition for exactly that reason.
    if multiprocessing.parent_process() is not None:
        return 1
    raw = os.environ.get("GCX_LEX_SHARDS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _min_shard_bytes() -> int:
    raw = os.environ.get("GCX_LEX_SHARD_MIN_BYTES", "")
    try:
        return int(raw) if raw else DEFAULT_MIN_BYTES
    except ValueError:
        return DEFAULT_MIN_BYTES


# ----------------------------------------------------------------------
# split planning
# ----------------------------------------------------------------------


def _plan_regions(data) -> "list[tuple[int, int]] | None":
    """Byte ranges the sequential lexer would skip as one construct.

    One sequential claim-scan over every ``<!``/``<?`` occurrence,
    resolving each the way the lexer does (comment, CDATA, PI, DOCTYPE
    with blind bracket counting).  Occurrences inside an already-claimed
    range (e.g. ``<!--`` within CDATA) are subsumed by it, so the result
    covers every construct the lexer would actually skip.  Returns None
    for an unterminated construct — the document is ill-formed and must be
    scanned sequentially for the exact error.
    """
    regions: list[tuple[int, int]] = []
    i = 0
    n = len(data)
    while True:
        bang = data.find(b"<!", i)
        qmark = data.find(b"<?", i)
        if bang == -1 and qmark == -1:
            return regions
        start = min(x for x in (bang, qmark) if x != -1)
        if data[start : start + 4] == b"<!--":
            end = data.find(b"-->", start + 4)
            if end == -1:
                return None
            i = end + 3
        elif data[start : start + 9] == b"<![CDATA[":
            end = data.find(b"]]>", start + 9)
            if end == -1:
                return None
            i = end + 3
        elif data[start + 1] == 0x3F:  # ``<?`` PI / XML declaration
            end = data.find(b"?>", start + 2)
            if end == -1:
                return None
            i = end + 2
        else:  # ``<!`` DOCTYPE-ish: blind bracket counting, like the lexer
            depth = 0
            j = start
            while True:
                if j >= n:
                    return None
                ch = data[j]
                if ch == 0x5B:  # ``[``
                    depth += 1
                elif ch == 0x5D:  # ``]``
                    depth -= 1
                elif ch == 0x3E and depth <= 0:  # ``>``
                    break
                j += 1
            i = j + 1
        regions.append((start, i))


def _next_split(data, target: int, regions) -> "int | None":
    """First safe split point at or after ``target``.

    A safe split is a ``<`` that opens a start or end tag outside every
    skipped region: the sequential scanner is guaranteed to be at a token
    boundary there.
    """
    n = len(data)
    i = target
    while True:
        i = data.find(b"<", i)
        if i == -1 or i + 1 >= n:
            return None
        containing = None
        for lo, hi in regions:
            if lo <= i < hi:
                containing = hi
            elif lo > i:
                break
        if containing is not None:
            i = containing
            continue
        nxt = data[i + 1]
        if nxt in _TAGISH or nxt >= 0xC2:
            return i
        i += 1


def _plan_splits(data, shards: int) -> "list[int] | None":
    """Strictly increasing shard boundaries ``[0, ..., len(data)]``."""
    regions = _plan_regions(data)
    if regions is None:
        return None
    n = len(data)
    bounds = [0]
    for k in range(1, shards):
        split = _next_split(data, k * n // shards, regions)
        if split is None:
            break
        if split > bounds[-1]:
            bounds.append(split)
    if len(bounds) < 2:
        return None
    bounds.append(n)
    return bounds


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------


def _scan_fragment(data, strip_whitespace: bool, convert_attributes: bool):
    events: list = []
    append = events.append
    try:
        for token in XMLTokenizer(
            data,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
            fragment=True,
        ):
            cls = token.__class__
            if cls is StartTag:
                append((_START, token.tag))
            elif cls is EndTag:
                append((_END, token.tag))
            elif cls is LazyCData:
                append((_CDATA, token._raw))
            else:  # LazyText (the bytes lexer emits no eager Text)
                append((_TEXT, token._raw))
    except XMLSyntaxError:
        # The shard saw something a fragment cannot absorb; the parent
        # falls back to one sequential scan for the exact error.
        return None
    return events


def _worker_lex_bytes(data, strip_whitespace: bool, convert_attributes: bool):
    return _scan_fragment(data, strip_whitespace, convert_attributes)


def _worker_lex_file(
    path: str, lo: int, hi: int, strip_whitespace: bool, convert_attributes: bool
):
    with open(path, "rb") as handle:
        handle.seek(lo)
        data = handle.read(hi - lo)
    return _scan_fragment(data, strip_whitespace, convert_attributes)


# ----------------------------------------------------------------------
# the merge
# ----------------------------------------------------------------------


def _merge_events(results) -> "list[Token] | None":
    """Concatenate per-shard events into tokens, re-validating structure.

    Returns None on any worker failure or document-level violation (tag
    mismatch, multiple roots, character data outside the root, unclosed
    elements): the caller then rescans sequentially, which reproduces the
    exact sequential error at its exact byte offset.
    """
    tokens: list[Token] = []
    append = tokens.append
    stack: list[str] = []
    push = stack.append
    pop = stack.pop
    seen_root = False
    starts: dict[str, StartTag] = {}
    ends: dict[str, EndTag] = {}
    lazy_new = LazyText.__new__
    for events in results:
        if events is None:
            return None
        for kind, value in events:
            if kind == _START:
                if not stack:
                    if seen_root:
                        return None
                    seen_root = True
                token = starts.get(value)
                if token is None:
                    tag = intern(value)
                    token = starts[tag] = StartTag(tag)
                    ends[tag] = EndTag(tag)
                push(token.tag)
                append(token)
            elif kind == _END:
                if not stack or stack[-1] != value:
                    return None
                pop()
                append(ends[value])
            elif kind == _TEXT:
                if not stack and not _ws_only(value):
                    return None
                token = lazy_new(LazyText)
                object.__setattr__(token, "_raw", value)
                append(token)
            else:  # _CDATA: outside the root it is an error even if blank
                if not stack:
                    return None
                append(LazyCData(value))
    if stack or not seen_root:
        return None
    return tokens


# ----------------------------------------------------------------------
# executor lifecycle
# ----------------------------------------------------------------------

_EXECUTOR: "ProcessPoolExecutor | None" = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_PID = 0
_EXECUTOR_LOCK = threading.Lock()


def _get_executor(workers: int) -> ProcessPoolExecutor:
    """The shared worker pool, (re)created under a lock at the widest
    width requested so far.

    Two process-level hazards shape this function:

    * Workers are **spawned**, not forked.  Tokenization runs on
      arbitrary caller threads (SessionPool evaluations, the serve
      layer), and a fork taken while a sibling thread holds an
      allocator or executor lock inherits that lock frozen forever —
      the child deadlocks before it reaches the worker function.
      Spawned children start clean; the interpreter startup is paid
      once per process, and the pool is shared across all sharded
      scans in the parent.
    * The global is **PID-guarded**.  A caller that is itself a forked
      worker (SessionPool's process executor) inherits this module's
      globals, including an executor object whose management threads
      and pipes exist only in the parent — submitting to it hangs
      forever.  When the remembered PID is not ours, the inherited
      reference is *dropped* (never shut down: the machinery belongs
      to the parent) and a fresh pool is built for this process.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_PID
    with _EXECUTOR_LOCK:
        pid = os.getpid()
        if _EXECUTOR is not None and _EXECUTOR_PID != pid:
            _EXECUTOR = None
        if _EXECUTOR is None or _EXECUTOR_WORKERS < workers:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False, cancel_futures=True)
            _EXECUTOR = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _EXECUTOR_WORKERS = workers
            _EXECUTOR_PID = pid
        return _EXECUTOR


@atexit.register
def _shutdown_executor() -> None:
    global _EXECUTOR, _EXECUTOR_WORKERS
    if _EXECUTOR is not None and _EXECUTOR_PID == os.getpid():
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_WORKERS = 0


def _reset_after_fork() -> None:
    """Reinitialize executor state in a freshly forked child.

    A fork can land while another thread holds ``_EXECUTOR_LOCK`` (every
    sharded scan takes it), and the child would inherit the lock frozen
    in the locked state.  Children never legitimately use the inherited
    executor (see the PID guard), so the safe reset is a brand-new lock
    and a dropped reference — never a shutdown, the machinery belongs to
    the parent.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_PID, _EXECUTOR_LOCK
    _EXECUTOR_LOCK = threading.Lock()
    _EXECUTOR = None
    _EXECUTOR_WORKERS = 0
    _EXECUTOR_PID = 0


os.register_at_fork(after_in_child=_reset_after_fork)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def maybe_tokenize_sharded(
    text,
    *,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> "Iterator[Token] | None":
    """Sharded scan of an in-memory document, or None to scan sequentially.

    None means "not applicable or not worth it": sharding disabled, the
    document below the size gate, no safe split points, a worker error, or
    a merge validation failure.  The caller's sequential path is always
    authoritative for errors.
    """
    shards = _shard_count()
    if shards < 2:
        return None
    if isinstance(text, str):
        data = text.encode("utf-8")
    elif isinstance(text, (bytearray, memoryview)):
        data = bytes(text)
    else:
        data = text
    if len(data) < max(_min_shard_bytes(), 16):
        return None
    bounds = _plan_splits(data, shards)
    if bounds is None:
        return None
    executor = _get_executor(shards)
    futures = [
        executor.submit(
            _worker_lex_bytes,
            bytes(data[lo:hi]),
            strip_whitespace,
            convert_attributes,
        )
        for lo, hi in zip(bounds, bounds[1:])
    ]
    merged = _merge_events([future.result() for future in futures])
    if merged is None:
        return None
    return iter(merged)


def maybe_tokenize_file_sharded(
    source: "str | Path",
    *,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> "Iterator[Token] | None":
    """Sharded scan of a file path, or None to scan sequentially.

    The parent maps the file only to plan split points; workers read their
    own ``(lo, hi)`` slice, so shard payloads never travel through pickle.
    """
    shards = _shard_count()
    if shards < 2:
        return None
    path = os.fspath(source)
    try:
        size = os.path.getsize(path)
    except OSError:
        return None
    if size < max(_min_shard_bytes(), 16):
        return None
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            return None
        with mapped:
            bounds = _plan_splits(mapped, shards)
    if bounds is None:
        return None
    executor = _get_executor(shards)
    futures = [
        executor.submit(
            _worker_lex_file,
            path,
            lo,
            hi,
            strip_whitespace,
            convert_attributes,
        )
        for lo, hi in zip(bounds, bounds[1:])
    ]
    merged = _merge_events([future.result() for future in futures])
    if merged is None:
        return None
    return iter(merged)
