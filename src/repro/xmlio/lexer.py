"""A streaming XML tokenizer that scans raw UTF-8 bytes.

The tokenizer is the lowest layer of the GCX architecture (Figure 11): the
stream preprojector pulls tokens from it one at a time, so the tokenizer must
never materialize the whole document.  It is deliberately written from
scratch (no ``xml.sax``) so the repository is self-contained and the token
boundaries match the paper's stream model exactly.

Bytes-domain hot path (see docs/PERFORMANCE.md)
-----------------------------------------------
The scanner operates on **bytes end to end** — ``str`` input is encoded
once up front, file input is mmap-mapped (:mod:`repro.xmlio.filelexer`) —
and decoding is deferred to the consumers that actually need characters:

* *``bytes.find`` jumps* — character data, tag bodies and skipped
  constructs are located by C-speed substring search over the raw buffer
  (an ``mmap`` works directly: it supports ``find`` and slicing), never by
  per-character stepping.  Every markup delimiter is ASCII, so a multi-byte
  UTF-8 sequence can never be split by a token boundary.
* *byte-interned tags* — ``StartTag``/``EndTag`` tokens are cached keyed by
  the **undecoded** tag slice; a tag name is UTF-8-decoded (and
  ``sys.intern``-ed, so the matcher's ``(state, tag)`` table keys share one
  cached hash) exactly once per distinct spelling per document.
* *decode-on-demand text* — character data is emitted as
  :class:`~repro.xmlio.tokens.LazyText` carrying the raw byte span; UTF-8
  decode and entity unescape run only when ``.content`` is first read,
  i.e. only for nodes that survive projection.  Skipped subtrees never pay
  ``str`` conversion at all (``text_decode_count`` proves it).
* *batch scanning* — as before the rewrite, the scanner fills token
  batches that ``next_token`` serves by index; a batch now stops after a
  byte budget (:data:`BATCH_BYTES`, or the chunk size in file mode, so the
  file-backed subclass can compact its window between batches) instead of
  a token count, which removes a length check from the per-token loop.
* *shard merge* — for large inputs the optional process-sharded scan
  (:mod:`repro.xmlio.shard`) splits the document at tag boundaries, lexes
  the shards in ``fragment`` mode in a process pool, and merges them with a
  structural re-validation pass; any disagreement falls back to this
  sequential scanner.

Positions (``XMLSyntaxError.position``) are document-absolute **byte**
offsets; ``.line``/``.column`` are computed lazily from the offending
window on first access.  The pre-batching implementation is preserved
verbatim in :mod:`repro.xmlio._reference_lexer` and the pre-bytes batch
lexer in :mod:`repro.xmlio._str_lexer`; differential tests assert all
three emit identical token streams, and the CI perf gate tracks the
speedups.

Supported XML subset
--------------------
* elements with start/end/bachelor tags,
* character data with the predefined entities,
* attributes, which are converted to leading subelements (the adaptation the
  paper applies to XMark: "we converted XML attributes into subelements"),
* comments, processing instructions, XML declarations and DOCTYPE clauses,
  which are skipped,
* CDATA sections, which become text.

Namespaces are treated literally (a tag ``a:b`` is just the name ``a:b``).
Input must be UTF-8; whitespace *inside markup* is ASCII whitespace (as the
XML grammar's ``S`` production requires).
"""

from __future__ import annotations

import os
import re
from sys import intern
from typing import Iterator

from repro.xmlio.tokens import EndTag, LazyCData, LazyText, StartTag, Token

__all__ = ["XMLSyntaxError", "XMLTokenizer", "tokenize", "BATCH_BYTES"]

#: Byte budget per scan batch for in-memory input: one internal scan
#: call advances at most this far before handing the batch to the
#: iterator.  Large enough to amortize the per-batch setup over thousands
#: of tokens, small enough that time-to-first-token and the token batch
#: stay bounded.  (The file-backed subclass overrides the budget with its
#: chunk size so window compaction keeps pace with scanning.)
BATCH_BYTES = 1 << 16

_LT = 0x3C  # ``<``
_SLASH = 0x2F  # ``/``
_BANG = 0x21  # ``!``
_QMARK = 0x3F  # ``?``

#: UTF-8 encodings of every code point ``str.strip()`` treats as
#: whitespace.  ``bytes.isspace()`` only knows the ASCII six; this pattern
#: covers the rest (NEL, NBSP, the U+2000 block, …) so whitespace-only
#: classification matches the str-domain reference *without decoding*.
_UNICODE_WS = re.compile(
    rb"(?:[ \t\n\r\x0b\x0c\x1c-\x1f]"
    rb"|\xc2[\x85\xa0]"
    rb"|\xe1\x9a\x80"
    rb"|\xe2\x80[\x80-\x8a\xa8\xa9\xaf]"
    rb"|\xe2\x81\x9f"
    rb"|\xe3\x80\x80)+\Z"
).match


#: One C-level scan for ASCII whitespace inside a tag body.  (``b" " in
#: body`` looks cheaper but is ~6x slower than the str equivalent on
#: CPython, which is exactly the kind of regression a bytes rewrite
#: invites; a single compiled-pattern search beats four of them.)
_WS_SEARCH = re.compile(rb"[ \t\r\n]").search


#: Slot-descriptor store for ``LazyText._raw``: the hot loop builds text
#: tokens as ``__new__`` + one descriptor call, bypassing both the
#: constructor frame and the frozen-dataclass ``__setattr__`` dispatch.
_SET_RAW = LazyText._raw.__set__


def _tag_entry(name_key: bytes) -> "tuple[StartTag, tuple]":
    """Intern one distinct tag spelling: build its table entry once.

    The entry pairs the shared :class:`StartTag` with its *closer*
    ``(b"name>", len, EndTag, "name")`` — the end-tag fast path compares
    upcoming bytes against ``closer[0]`` of the innermost open element, so
    one ``bytes.__eq__`` both resolves the token and proves the match.
    """
    tag = intern(name_key.decode("utf-8"))
    return (
        StartTag(tag),
        (name_key + b">", len(name_key) + 1, EndTag(tag), tag),
    )


def _ws_only(raw: bytes) -> bool:
    """True when ``raw`` decodes to whitespace-only text (without decoding).

    Mirrors the reference lexer's ``content.strip() == ""`` check in the
    bytes domain.  Shared with the shard merger's structural validation.
    """
    if not raw:
        return True
    first = raw[0]
    if first >= 33 and first < 0xC2:
        return False  # common case: text starts with a printable ASCII byte
    return raw.isspace() or _UNICODE_WS(raw) is not None


class XMLSyntaxError(ValueError):
    """Raised when the input is not well-formed within the supported subset.

    ``position`` is the document-absolute **byte** offset of the offending
    construct (for pure-ASCII documents this coincides with the character
    offset the pre-bytes lexers reported).  ``line`` and ``column`` (both
    1-based; the column counts bytes) are computed lazily from the window
    the lexer attached at raise time — ``None`` when no window is available
    (e.g. errors raised by the frozen reference lexer).
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self._message = message
        self.position = position
        self._window: bytes | None = None
        self._window_offset = 0
        self._nl_before = 0
        self._last_nl_abs = -1
        self._line: int | None = None
        self._column: int | None = None
        self._located = False

    def __reduce__(self):
        return (XMLSyntaxError, (self._message, self.position))

    @property
    def line(self) -> int | None:
        self.ensure_location()
        return self._line

    @property
    def column(self) -> int | None:
        self.ensure_location()
        return self._column

    def ensure_location(self) -> None:
        """Force the lazy line/column computation now.

        ``tokenize_file`` calls this before an error propagates out of an
        mmap-backed scan, because unwinding the generator closes the map
        the window points into.
        """
        if self._located:
            return
        self._located = True
        window = self._window
        rel = self.position - self._window_offset
        if window is None or rel < 0:
            return
        # ``bytes(...)`` also copies mmap windows, which lack ``count``.
        prefix = bytes(window[: min(rel, len(window))])
        self._line = self._nl_before + prefix.count(b"\n") + 1
        last = prefix.rfind(b"\n")
        if last != -1:
            self._column = rel - last
        elif self._last_nl_abs >= 0:
            self._column = self.position - self._last_nl_abs
        else:
            self._column = self.position + 1


class XMLTokenizer:
    """Incrementally tokenize an XML document held as UTF-8 bytes.

    The tokenizer checks well-formedness of tag nesting as it goes and
    raises :class:`XMLSyntaxError` on mismatched or dangling tags.  Errors
    surface in stream order: tokens scanned before the offending construct
    are delivered first, exactly like the pre-batching implementation.

    Parameters
    ----------
    text:
        The document: ``str`` (encoded to UTF-8 once), ``bytes``, a
        ``bytearray``/``memoryview`` (copied to ``bytes``), or an
        ``mmap.mmap`` (scanned in place; slices taken from it are plain
        ``bytes``, so emitted tokens never keep the map alive).
    strip_whitespace:
        When true (the default), text tokens consisting purely of whitespace
        between elements are dropped.  XMark documents carry no meaningful
        inter-element whitespace, and the paper's data model has no notion of
        ignorable whitespace either.
    convert_attributes:
        When true (the default), attributes are emitted as leading
        subelements in document order: ``<a x="1">`` becomes
        ``<a><x>1</x>...``.  This mirrors the paper's benchmark adaptation.
    fragment:
        Shard-worker mode (:mod:`repro.xmlio.shard`): structural checks
        that need the *document* context — root counting, text-outside-root,
        end-tag matching against elements opened in an earlier shard, and
        the EOF well-formedness checks — are suspended; the shard merger
        re-validates the merged stream.  Not part of the public contract.
    """

    def __init__(
        self,
        text: "str | bytes | bytearray | memoryview",
        *,
        strip_whitespace: bool = True,
        convert_attributes: bool = True,
        fragment: bool = False,
    ) -> None:
        if isinstance(text, str):
            data = text.encode("utf-8")
        elif isinstance(text, (bytearray, memoryview)):
            data = bytes(text)  # slices must be hashable bytes
        else:
            data = text  # bytes or mmap: find + slicing, scanned in place
        self._data = data
        self._pos = 0
        self._offset = 0  # bytes discarded by compaction (file mode)
        self._strip_whitespace = strip_whitespace
        self._convert_attributes = convert_attributes
        self._fragment = fragment
        # Innermost-first stack of *closers* (see :func:`_tag_entry`)
        # for the currently open elements; ``closer[3]`` is the tag.
        self._open_tags: list[tuple] = []
        self._seen_root = False
        self._done = False
        # Batch machinery: tokens are scanned a batch at a time into
        # ``_out`` and served by index.  ``_batch_bytes`` caps how far one
        # batch may advance (the file subclass sets it to the chunk size so
        # compaction keeps up with scanning).
        self._out: list[Token] = []
        self._out_pos = 0
        self._batch_bytes = BATCH_BYTES
        self._error: XMLSyntaxError | None = None
        # Interning tables keyed by the *undecoded* tag slice: one token
        # object — and one UTF-8 decode — per distinct tag spelling.
        # ``_start_tags`` values are :func:`_tag_entry` pairs; ``_end_tags``
        # caches the slow end-tag path (whitespace spellings and fragments).
        self._start_tags: dict[bytes, tuple[StartTag, tuple]] = {}
        self._end_tags: dict[bytes, EndTag] = {}
        # Newline bookkeeping for lazy line/column on errors: counts for
        # the compacted-away prefix (file mode keeps these current).
        self._nl_before = 0
        self._last_nl_abs = -1

    def _refill(self) -> bool:
        """Ask for more input.  The in-memory tokenizer has none; the
        file-backed subclass appends the next chunk and returns True."""
        return False

    def _before_batch(self) -> None:
        """Hook run before scanning a batch (the file subclass compacts)."""

    def __iter__(self) -> Iterator[Token]:
        # Iteration bypasses per-token method dispatch entirely: the
        # generator marks each batch served and delegates to the list
        # iterator, so the steady-state cost of one token is a generator
        # resume plus a list-iterator step.  Mixing ``next_token()`` calls
        # *into* an in-progress iteration is not supported (the engine
        # drives one or the other, never both).
        out = self._out
        pos = self._out_pos
        while pos < len(out):
            # Leftovers from earlier ``next_token()`` pulls, served first.
            self._out_pos = pos + 1
            yield out[pos]
            pos = self._out_pos
        while True:
            if not self._fill():
                if self._error is not None:
                    raise self._error
                self._finish_checks()
                return
            self._out_pos = len(self._out)
            yield from self._out

    def __next__(self) -> Token:
        # Token-at-a-time protocol for direct (non-``__iter__``) callers.
        out = self._out
        pos = self._out_pos
        if pos < len(out):
            self._out_pos = pos + 1
            return out[pos]
        token = self.next_token()
        if token is None:
            raise StopIteration
        return token

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` when the stream is exhausted."""
        out = self._out
        pos = self._out_pos
        if pos < len(out):
            self._out_pos = pos + 1
            return out[pos]
        while True:
            if not self._fill():
                if self._error is not None:
                    raise self._error
                self._finish_checks()
                return None
            if self._out:
                self._out_pos = 1
                return self._out[0]

    # ------------------------------------------------------------------
    # scanning machinery
    # ------------------------------------------------------------------

    def _fill(self) -> bool:
        """Scan the next batch of tokens into ``_out``.

        Returns False when the stream is exhausted (or a deferred syntax
        error is pending); True when the batch may hold tokens — possibly
        zero, when the byte budget was spent on skipped constructs.
        """
        if self._error is not None:
            return False
        self._before_batch()
        out = self._out
        out.clear()
        self._out_pos = 0
        append = out.append
        data = self._data
        find = data.find
        pos = self._pos
        scan_start = pos
        limit = pos + self._batch_bytes
        offset = self._offset
        strip_ws = self._strip_whitespace
        fragment = self._fragment
        seen_root = self._seen_root
        open_tags = self._open_tags
        pop = open_tags.pop
        push = open_tags.append
        start_tags = self._start_tags
        start_get = start_tags.get
        end_tags = self._end_tags
        lazy_new = LazyText.__new__
        lazy_cls = LazyText
        set_raw = _SET_RAW
        try:
            while pos <= limit:
                # EAFP bounds handling: indexing past the window raises
                # instead of paying a ``pos >= n`` compare per token
                # (zero-cost try on CPython 3.11+ exception tables).
                try:
                    first_byte = data[pos]
                except IndexError:
                    self._pos = pos
                    if not self._refill():
                        break
                    data = self._data
                    find = data.find
                    continue
                if first_byte != _LT:
                    # -- character data run ------------------------------
                    end = find(b"<", pos)
                    if end == -1:
                        self._pos = pos
                        while end == -1:
                            # Resume the search where the old data ended:
                            # rescanning from ``pos`` would make one long
                            # text run quadratic in the number of refills.
                            old_length = len(data)
                            if not self._refill():
                                break
                            data = self._data
                            find = data.find
                            end = find(b"<", old_length)
                        if end == -1:
                            end = len(data)
                    raw = data[pos:end]
                    start = pos
                    pos = end
                    if (first_byte < 33 or first_byte >= 0xC2) and (
                        raw.isspace() or _UNICODE_WS(raw) is not None
                    ):
                        if strip_ws:
                            continue
                    elif not open_tags and not fragment:
                        raise XMLSyntaxError(
                            "character data outside the root element",
                            start + offset,
                        )
                    # Inlined LazyText construction (``__new__`` plus one
                    # slot-descriptor store, no constructor frame): this
                    # runs once per text node in the document.
                    token = lazy_new(lazy_cls)
                    set_raw(token, raw)
                    append(token)
                    continue
                try:
                    second = data[pos + 1]
                except IndexError:
                    # ``<`` is the window's last byte: in file mode the
                    # construct continues in the next chunk.
                    self._pos = pos
                    while pos + 1 >= len(data) and self._refill():
                        data = self._data
                        find = data.find
                    second = data[pos + 1] if pos + 1 < len(data) else -1
                if second == _SLASH:
                    # -- end tag -----------------------------------------
                    # Fast path: compare the upcoming bytes against the
                    # precomputed ``name>`` closer of the innermost open
                    # element.  A hit resolves the token, proves the match
                    # and advances — no ``find``, no name parse.
                    if open_tags:
                        closer = open_tags[-1]
                        skip = closer[1]
                        if data[pos + 2 : pos + 2 + skip] == closer[0]:
                            pop()
                            pos = pos + 2 + skip
                            append(closer[2])
                            continue
                    # Slow path: whitespace inside the tag, a mismatch, a
                    # fragment-mode close, or a chunk boundary mid-tag.
                    end = find(b">", pos)
                    if end == -1:
                        self._pos = pos
                        end = self._find(b">", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated end tag", pos + offset
                            )
                        data = self._data
                        find = data.find
                    key = data[pos + 2 : end]
                    token = end_tags.get(key)
                    if token is None:
                        stripped = key.strip()
                        if not stripped:
                            raise XMLSyntaxError("empty end tag", pos + offset)
                        token = end_tags[key] = EndTag(
                            intern(stripped.decode("utf-8"))
                        )
                    name = token.tag
                    if not open_tags:
                        if not fragment:
                            raise XMLSyntaxError(
                                f"closing tag </{name}> with no open element",
                                pos + offset,
                            )
                    else:
                        expected = open_tags[-1][3]
                        if expected == name:
                            pop()
                        elif fragment:
                            # An outer element opened in an earlier shard
                            # may close here; the merger re-validates.
                            pass
                        else:
                            raise XMLSyntaxError(
                                f"mismatched closing tag </{name}>, "
                                f"expected </{expected}>",
                                pos + offset,
                            )
                    pos = end + 1
                    append(token)
                    continue
                if second == _BANG or second == _QMARK:
                    self._pos = pos
                    # Make the construct kind decidable even when a chunk
                    # boundary splits the prefix (longest is <![CDATA[);
                    # only this rare branch pays for the lookahead check.
                    if len(data) - pos < 9:
                        while len(data) - pos < 9 and self._refill():
                            data = self._data
                        find = data.find
                    if data[pos : pos + 4] == b"<!--":
                        end = self._find(b"-->", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated construct, expected '-->'",
                                pos + offset,
                            )
                        data = self._data
                        find = data.find
                        pos = end + 3
                        continue
                    if data[pos : pos + 9] == b"<![CDATA[":
                        end = self._find(b"]]>", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated CDATA section", pos + offset
                            )
                        data = self._data
                        find = data.find
                        content = data[pos + 9 : end]
                        if not open_tags and not fragment:
                            raise XMLSyntaxError(
                                "character data outside the root element",
                                pos + offset,
                            )
                        pos = end + 3
                        if strip_ws and _ws_only(content):
                            continue
                        append(LazyCData(content))
                        continue
                    if second == _QMARK:
                        end = self._find(b"?>", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated construct, expected '?>'",
                                pos + offset,
                            )
                        data = self._data
                        find = data.find
                        pos = end + 2
                        continue
                    pos = self._skip_doctype(pos)
                    data = self._data
                    find = data.find
                    continue
                # -- start tag -------------------------------------------
                end = find(b">", pos)
                if end == -1:
                    self._pos = pos
                    end = self._find(b">", pos)
                    if end == -1:
                        raise XMLSyntaxError(
                            "unterminated start tag", pos + offset
                        )
                    data = self._data
                    find = data.find
                if data[end - 1] == _SLASH:
                    self_closing = True
                    body = data[pos + 1 : end - 1]
                else:
                    self_closing = False
                    body = data[pos + 1 : end]
                # Interned fast path: every cached key is whitespace-free
                # (guarded at the insertion sites), so a hit proves the
                # body is a bare, already-seen tag name and the whitespace
                # scan and name parse can be skipped entirely.
                entry = start_get(body)
                if entry is not None:
                    token, closer = entry
                    attributes = ()
                elif _WS_SEARCH(body) is not None:
                    name_key, attributes = self._parse_tag_body(body, pos)
                    entry = start_get(name_key)
                    if entry is None:
                        entry = start_tags[name_key] = _tag_entry(name_key)
                    token, closer = entry
                else:
                    if not body:
                        raise XMLSyntaxError("empty start tag", pos + offset)
                    token, closer = start_tags[body] = _tag_entry(body)
                    attributes = ()
                if not open_tags:
                    if seen_root and not fragment:
                        raise XMLSyntaxError(
                            "document has more than one root element",
                            pos + offset,
                        )
                    seen_root = True
                pos = end + 1
                append(token)
                if attributes and self._convert_attributes:
                    for attr_name, attr_value in attributes:
                        attr_entry = start_get(attr_name)
                        if attr_entry is None:
                            attr_entry = _tag_entry(attr_name)
                            # Pathological attr names (empty, or containing
                            # whitespace) stay uncached: the start-tag fast
                            # path relies on cached keys being bare names.
                            if attr_name and _WS_SEARCH(attr_name) is None:
                                start_tags[attr_name] = attr_entry
                        append(attr_entry[0])
                        if attr_value:
                            append(LazyText(attr_value))
                        append(attr_entry[1][2])
                if self_closing:
                    append(closer[2])
                else:
                    push(closer)
        except XMLSyntaxError as error:
            # Deliver already-scanned tokens first, then the error — the
            # stream behaves exactly like the token-at-a-time oracle.
            self._attach_location(error)
            self._error = error
            self._pos = pos
            self._seen_root = seen_root
            return bool(out)
        self._pos = pos
        self._seen_root = seen_root
        if out:
            return True
        # No tokens: either the stream ended, or the budget went into
        # skipped constructs / stripped whitespace and scanning continues.
        # (``pos > scan_start``: every loop iteration that saw input either
        # appended a token or advanced the scan position.)
        return pos > scan_start and (pos < len(self._data) or not self._at_eof())

    def _at_eof(self) -> bool:
        return not self._refill()

    def _find(self, needle: bytes, start: int) -> int:
        """``bytes.find`` that refills until the needle appears or input ends."""
        end = self._data.find(needle, start)
        while end == -1:
            old_length = len(self._data)
            if not self._refill():
                return -1
            # The needle may straddle the old chunk boundary.
            rescan_from = max(start, old_length - len(needle) + 1)
            end = self._data.find(needle, rescan_from)
        return end

    def _skip_doctype(self, pos: int) -> int:
        # DOCTYPE may contain an internal subset in square brackets.
        depth = 0
        i = pos
        while True:
            while i >= len(self._data):
                if not self._refill():
                    raise XMLSyntaxError(
                        "unterminated <!DOCTYPE ...> clause", pos + self._offset
                    )
            ch = self._data[i]
            if ch == 0x5B:  # ``[``
                depth += 1
            elif ch == 0x5D:  # ``]``
                depth -= 1
            elif ch == 0x3E and depth <= 0:  # ``>``
                return i + 1
            i += 1

    def _parse_tag_body(
        self, body: bytes, pos: int
    ) -> tuple[bytes, list[tuple[bytes, bytes]]]:
        body = body.strip()
        if not body:
            raise XMLSyntaxError("empty start tag", pos + self._offset)
        i = 0
        length = len(body)
        while i < length and body[i] not in b" \t\r\n":
            i += 1
        name = body[:i]
        attributes: list[tuple[bytes, bytes]] = []
        while i < length:
            while i < length and body[i] in b" \t\r\n":
                i += 1
            if i >= length:
                break
            eq = body.find(b"=", i)
            if eq == -1:
                raise XMLSyntaxError(
                    f"malformed attribute in <{name.decode('utf-8')}>",
                    pos + self._offset,
                )
            attr_name = body[i:eq].strip()
            j = eq + 1
            while j < length and body[j] in b" \t\r\n":
                j += 1
            if j >= length or body[j] not in b"\"'":
                raise XMLSyntaxError(
                    f"unquoted attribute value in <{name.decode('utf-8')}>",
                    pos + self._offset,
                )
            quote = body[j]
            close = body.find(quote, j + 1)
            if close == -1:
                raise XMLSyntaxError(
                    "unterminated attribute value in "
                    f"<{name.decode('utf-8')}>",
                    pos + self._offset,
                )
            attributes.append((attr_name, body[j + 1 : close]))
            i = close + 1
        return name, attributes

    def _finish_checks(self) -> None:
        if self._done or self._fragment:
            self._done = True
            return
        self._done = True
        # ``_pos`` is window-relative in chunked file mode; add the
        # compacted-away prefix so positions stay document-absolute.
        position = self._pos + self._offset
        if self._open_tags:
            error = XMLSyntaxError(
                f"input exhausted with unclosed element <{self._open_tags[-1][3]}>",
                position,
            )
            self._attach_location(error)
            raise error
        if not self._seen_root:
            error = XMLSyntaxError("document has no root element", position)
            self._attach_location(error)
            raise error

    def _attach_location(self, error: XMLSyntaxError) -> None:
        """Give the error what lazy line/column needs: the current window
        (which contains the offending byte) and the newline counts for the
        prefix that compaction already discarded."""
        error._window = self._data
        error._window_offset = self._offset
        error._nl_before = self._nl_before
        error._last_nl_abs = self._last_nl_abs


def tokenize(
    text: "str | bytes | bytearray | memoryview",
    *,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> Iterator[Token]:
    """Tokenize ``text`` into a stream of :class:`~repro.xmlio.tokens.Token`.

    Accepts ``str`` (encoded once) or raw UTF-8 bytes.  When
    ``GCX_LEX_SHARDS`` requests it and the document is large enough, the
    scan is sharded across the process pool (see :mod:`repro.xmlio.shard`);
    the token stream is identical either way.
    """
    if os.environ.get("GCX_LEX_SHARDS", "1") not in ("", "0", "1"):
        from repro.xmlio import shard

        sharded = shard.maybe_tokenize_sharded(
            text,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
        if sharded is not None:
            return sharded
    return iter(
        XMLTokenizer(
            text,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
    )
