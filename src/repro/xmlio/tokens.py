"""XML stream tokens.

The paper (Section 2) views an XML document dually as an unranked ordered
labeled tree and as a stream of opening tags, closing tags, and character
sequences.  This module defines the token vocabulary shared by the lexer,
the stream preprojector, and the serializers.

XML attributes are not part of the data model; the paper converts attributes
into subelements (Section 7), and :mod:`repro.xmlio.lexer` performs the same
conversion when it encounters attributes in input documents.

Decode-on-demand text
---------------------
The bytes-domain lexer never decodes character data eagerly: it emits
:class:`LazyText`, a :class:`Text` whose UTF-8 decode and entity unescape
run the first time ``.content`` is read.  Tokens for subtrees the
preprojector prunes are simply dropped, so skipped text never pays ``str``
conversion at all.  Every decode increments a module counter
(:func:`text_decode_count`), which is how tests *prove* the skipped
subtrees stayed in the bytes domain.  ``LazyText`` compares equal to an
eager ``Text`` with the same content, so the differential oracle suites
are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Token",
    "StartTag",
    "EndTag",
    "Text",
    "LazyText",
    "LazyCData",
    "text_decode_count",
    "token_stream_to_string",
]


@dataclass(frozen=True, slots=True)
class Token:
    """Base class of all stream tokens."""


@dataclass(frozen=True, slots=True)
class StartTag(Token):
    """An opening tag ``<tag>``."""

    tag: str

    def __str__(self) -> str:
        return f"<{self.tag}>"


@dataclass(frozen=True, slots=True)
class EndTag(Token):
    """A closing tag ``</tag>``."""

    tag: str

    def __str__(self) -> str:
        return f"</{self.tag}>"


@dataclass(frozen=True, slots=True)
class Text(Token):
    """A run of character data between tags."""

    content: str

    def __str__(self) -> str:
        return escape_text(self.content)


#: Total lazy-text decodes performed in this process.  The counter exists
#: so the decode-on-demand guarantee is testable: project a document whose
#: projection prunes a subtree, and the delta must not include its text.
_decode_count = 0


def text_decode_count() -> int:
    """Number of :class:`LazyText` decodes performed so far (this process).

    Monotonic; tests snapshot it before a run and assert on the delta.
    Under threads the counter is approximate (unsynchronized increment) —
    the provability tests are single-threaded.
    """
    return _decode_count


class LazyText(Text):
    """A text token carried as an undecoded UTF-8 byte span.

    Emitted by the bytes-domain lexer.  ``raw`` is the byte slice exactly
    as it appeared in the document; the UTF-8 decode and the
    predefined-entity unescape are deferred until the first ``.content``
    access and cached.  Equality and hashing match an eager :class:`Text`
    with the same decoded content, so token streams mixing the two compare
    element-wise — which is what keeps the frozen reference-lexer
    differential suites valid.

    The frozen-dataclass write guard stays in force (no ``__setattr__``
    override: defining one would force every attribute store through the
    slow ``slot_tp_setattro`` dispatch); the constructor and the decode
    cache write through the slot descriptors instead, and the lexer's hot
    path builds instances the same way (``__new__`` plus one descriptor
    store — measurably cheaper than a constructor call).

    ``_unescape`` is a class attribute, not a per-instance slot: character
    data always unescapes, and :class:`LazyCData` overrides it for CDATA
    content, where entity references are literal text.
    """

    __slots__ = ("_raw", "_decoded")

    _unescape = True

    def __init__(self, raw: bytes) -> None:
        # ``_decoded`` is deliberately left unset (an unset slot raises
        # AttributeError on read): one attribute write fewer is measurable.
        object.__setattr__(self, "_raw", raw)

    @property
    def content(self) -> str:  # shadows the base class slot
        try:
            return self._decoded
        except AttributeError:
            pass
        global _decode_count
        _decode_count += 1
        decoded = self._raw.decode("utf-8")
        if self._unescape and "&" in decoded:
            decoded = unescape_text(decoded)
        object.__setattr__(self, "_decoded", decoded)
        return decoded

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Text):
            return self.content == other.content
        return NotImplemented

    def __hash__(self) -> int:
        # Matches the tuple hash the frozen dataclass generates for Text.
        return hash((self.content,))

    def __reduce__(self):
        # Pickle as an eager Text: the raw bytes would survive, but the
        # decode counter would silently reset semantics across processes.
        return (Text, (self.content,))


class LazyCData(LazyText):
    """CDATA section content: decoded on demand, never entity-unescaped."""

    __slots__ = ()

    _unescape = False


def escape_text(content: str) -> str:
    """Escape character data for serialization."""
    return content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def unescape_text(content: str) -> str:
    """Resolve the predefined XML entities in character data."""
    return (
        content.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def token_stream_to_string(tokens) -> str:
    """Serialize an iterable of tokens back into document text.

    Adjacent open/close pairs are *not* collapsed into bachelor tags here;
    use :func:`repro.xmlio.serialize.serialize_tokens` for pretty output.
    """
    return "".join(str(token) for token in tokens)
