"""XML stream tokens.

The paper (Section 2) views an XML document dually as an unranked ordered
labeled tree and as a stream of opening tags, closing tags, and character
sequences.  This module defines the token vocabulary shared by the lexer,
the stream preprojector, and the serializers.

XML attributes are not part of the data model; the paper converts attributes
into subelements (Section 7), and :mod:`repro.xmlio.lexer` performs the same
conversion when it encounters attributes in input documents.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "StartTag", "EndTag", "Text", "token_stream_to_string"]


@dataclass(frozen=True, slots=True)
class Token:
    """Base class of all stream tokens."""


@dataclass(frozen=True, slots=True)
class StartTag(Token):
    """An opening tag ``<tag>``."""

    tag: str

    def __str__(self) -> str:
        return f"<{self.tag}>"


@dataclass(frozen=True, slots=True)
class EndTag(Token):
    """A closing tag ``</tag>``."""

    tag: str

    def __str__(self) -> str:
        return f"</{self.tag}>"


@dataclass(frozen=True, slots=True)
class Text(Token):
    """A run of character data between tags."""

    content: str

    def __str__(self) -> str:
        return escape_text(self.content)


def escape_text(content: str) -> str:
    """Escape character data for serialization."""
    return content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def unescape_text(content: str) -> str:
    """Resolve the predefined XML entities in character data."""
    return (
        content.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def token_stream_to_string(tokens) -> str:
    """Serialize an iterable of tokens back into document text.

    Adjacent open/close pairs are *not* collapsed into bachelor tags here;
    use :func:`repro.xmlio.serialize.serialize_tokens` for pretty output.
    """
    return "".join(str(token) for token in tokens)
