"""The pre-optimization tokenizer, kept verbatim as a differential oracle.

This is the character-stepping tokenizer that :mod:`repro.xmlio.lexer`
replaced with a chunk-scanning implementation.  It is retained for two
purposes only:

* the differential tests assert that the optimized tokenizer emits a
  byte-identical token stream over the XMark corpus, adversarial inputs and
  hypothesis-generated documents (``tests/xmlio/test_differential_lexer.py``);
* the performance baseline measures the optimized tokenizer's speedup
  against it (``repro.bench.baseline``), which the CI perf gate enforces.

It must not be used by the engine; import :mod:`repro.xmlio.lexer` instead.
The class and function names carry a ``Reference`` prefix so the two
implementations cannot be confused at call sites.
"""

from __future__ import annotations

from typing import Iterator

from repro.xmlio.lexer import XMLSyntaxError
from repro.xmlio.tokens import EndTag, StartTag, Text, Token, unescape_text

__all__ = ["ReferenceTokenizer", "reference_tokenize"]

_WHITESPACE = " \t\r\n"


class ReferenceTokenizer:
    """Incrementally tokenize an XML document held in a string.

    The tokenizer checks well-formedness of tag nesting as it goes and
    raises :class:`XMLSyntaxError` on mismatched or dangling tags.

    Parameters
    ----------
    text:
        The document text.
    strip_whitespace:
        When true (the default), text tokens consisting purely of whitespace
        between elements are dropped.  XMark documents carry no meaningful
        inter-element whitespace, and the paper's data model has no notion of
        ignorable whitespace either.
    convert_attributes:
        When true (the default), attributes are emitted as leading
        subelements in document order: ``<a x="1">`` becomes
        ``<a><x>1</x>...``.  This mirrors the paper's benchmark adaptation.
    """

    def __init__(
        self,
        text: str,
        *,
        strip_whitespace: bool = True,
        convert_attributes: bool = True,
    ) -> None:
        self._text = text
        self._pos = 0
        self._offset = 0  # characters discarded by compaction (file mode)
        self._strip_whitespace = strip_whitespace
        self._convert_attributes = convert_attributes
        self._open_tags: list[str] = []
        self._pending: list[Token] = []
        self._seen_root = False
        self._done = False

    def _refill(self) -> bool:
        """Ask for more input.  The in-memory tokenizer has none; the
        file-backed subclass appends the next chunk and returns True."""
        return False

    def __iter__(self) -> Iterator[Token]:
        return self

    def __next__(self) -> Token:
        token = self.next_token()
        if token is None:
            raise StopIteration
        return token

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` when the stream is exhausted."""
        if self._pending:
            return self._pending.pop(0)
        while True:
            token = self._scan()
            if token is None:
                self._finish_checks()
                return None
            if (
                self._strip_whitespace
                and isinstance(token, Text)
                and not token.content.strip()
            ):
                continue
            return token

    # ------------------------------------------------------------------
    # scanning machinery
    # ------------------------------------------------------------------

    def _scan(self) -> Token | None:
        while self._pos >= len(self._text):
            if not self._refill():
                return None
        text, pos = self._text, self._pos
        if text[pos] != "<":
            end = text.find("<", pos)
            while end == -1 and self._refill():
                text = self._text
                end = text.find("<", pos)
            if end == -1:
                end = len(text)
            raw = text[pos:end]
            self._pos = end
            if not self._open_tags and raw.strip():
                raise XMLSyntaxError(
                    "character data outside the root element", pos + self._offset
                )
            return Text(unescape_text(raw))
        # A markup construct starts here.  Ensure the construct kind is
        # decidable even when a chunk boundary splits the prefix.
        while len(self._text) - pos < 9 and self._refill():
            pass
        text = self._text
        if text.startswith("<!--", pos):
            return self._skip_until("-->", pos)
        if text.startswith("<![CDATA[", pos):
            return self._scan_cdata(pos)
        if text.startswith("<?", pos):
            return self._skip_until("?>", pos)
        if text.startswith("<!", pos):
            return self._skip_doctype(pos)
        if text.startswith("</", pos):
            return self._scan_end_tag(pos)
        return self._scan_start_tag(pos)

    def _find(self, needle: str, start: int) -> int:
        """``str.find`` that refills until the needle appears or input ends."""
        end = self._text.find(needle, start)
        while end == -1:
            old_length = len(self._text)
            if not self._refill():
                return -1
            # The needle may straddle the old chunk boundary.
            rescan_from = max(start, old_length - len(needle) + 1)
            end = self._text.find(needle, rescan_from)
        return end

    def _skip_until(self, terminator: str, pos: int) -> Token | None:
        end = self._find(terminator, pos)
        if end == -1:
            raise XMLSyntaxError(
                f"unterminated construct, expected {terminator!r}", pos + self._offset
            )
        self._pos = end + len(terminator)
        return self._scan()

    def _scan_cdata(self, pos: int) -> Token:
        end = self._find("]]>", pos)
        if end == -1:
            raise XMLSyntaxError("unterminated CDATA section", pos + self._offset)
        content = self._text[pos + len("<![CDATA[") : end]
        self._pos = end + len("]]>")
        if not self._open_tags:
            raise XMLSyntaxError(
                "character data outside the root element", pos + self._offset
            )
        return Text(content)

    def _skip_doctype(self, pos: int) -> Token | None:
        # DOCTYPE may contain an internal subset in square brackets.
        depth = 0
        i = pos
        while True:
            while i >= len(self._text):
                if not self._refill():
                    raise XMLSyntaxError(
                        "unterminated <!DOCTYPE ...> clause", pos + self._offset
                    )
            ch = self._text[i]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self._pos = i + 1
                return self._scan()
            i += 1

    def _scan_end_tag(self, pos: int) -> Token:
        end = self._find(">", pos)
        if end == -1:
            raise XMLSyntaxError("unterminated end tag", pos + self._offset)
        name = self._text[pos + 2 : end].strip()
        if not name:
            raise XMLSyntaxError("empty end tag", pos + self._offset)
        self._pos = end + 1
        if not self._open_tags:
            raise XMLSyntaxError(
                f"closing tag </{name}> with no open element", pos + self._offset
            )
        expected = self._open_tags.pop()
        if expected != name:
            raise XMLSyntaxError(
                f"mismatched closing tag </{name}>, expected </{expected}>",
                pos + self._offset,
            )
        return EndTag(name)

    def _scan_start_tag(self, pos: int) -> Token:
        end = self._find(">", pos)
        if end == -1:
            raise XMLSyntaxError("unterminated start tag", pos + self._offset)
        self._pos = end + 1
        body = self._text[pos + 1 : end]
        self_closing = body.endswith("/")
        if self_closing:
            body = body[:-1]
        name, attributes = self._parse_tag_body(body, pos)
        if self._seen_root and not self._open_tags:
            raise XMLSyntaxError(
                "document has more than one root element", pos + self._offset
            )
        self._seen_root = True
        tokens: list[Token] = [StartTag(name)]
        if self._convert_attributes:
            for attr_name, attr_value in attributes:
                tokens.append(StartTag(attr_name))
                if attr_value:
                    tokens.append(Text(attr_value))
                tokens.append(EndTag(attr_name))
        if self_closing:
            tokens.append(EndTag(name))
        else:
            self._open_tags.append(name)
        self._pending = tokens[1:]
        return tokens[0]

    def _parse_tag_body(self, body: str, pos: int) -> tuple[str, list[tuple[str, str]]]:
        body = body.strip()
        if not body:
            raise XMLSyntaxError("empty start tag", pos + self._offset)
        i = 0
        while i < len(body) and body[i] not in _WHITESPACE:
            i += 1
        name = body[:i]
        attributes: list[tuple[str, str]] = []
        while i < len(body):
            while i < len(body) and body[i] in _WHITESPACE:
                i += 1
            if i >= len(body):
                break
            eq = body.find("=", i)
            if eq == -1:
                raise XMLSyntaxError(f"malformed attribute in <{name}>", pos)
            attr_name = body[i:eq].strip()
            j = eq + 1
            while j < len(body) and body[j] in _WHITESPACE:
                j += 1
            if j >= len(body) or body[j] not in "\"'":
                raise XMLSyntaxError(f"unquoted attribute value in <{name}>", pos)
            quote = body[j]
            close = body.find(quote, j + 1)
            if close == -1:
                raise XMLSyntaxError(f"unterminated attribute value in <{name}>", pos)
            attributes.append((attr_name, unescape_text(body[j + 1 : close])))
            i = close + 1
        return name, attributes

    def _finish_checks(self) -> None:
        if self._done:
            return
        self._done = True
        if self._open_tags:
            raise XMLSyntaxError(
                f"input exhausted with unclosed element <{self._open_tags[-1]}>",
                self._pos,
            )
        if not self._seen_root:
            raise XMLSyntaxError("document has no root element", self._pos)


def reference_tokenize(
    text: str,
    *,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> Iterator[Token]:
    """Tokenize ``text`` with the pre-optimization reference implementation."""
    return iter(
        ReferenceTokenizer(
            text,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
    )
