"""File-backed streaming tokenizer: mmap scanning with a chunked fallback.

:class:`XMLTokenizer` scans one contiguous byte buffer; for file input there
are two ways to provide one:

* **mmap** — :func:`tokenize_file` maps a *path* read-only and hands the map
  straight to the in-memory scanner: ``bytes.find`` jumps run over the page
  cache with zero copying, and resident memory is whatever the OS keeps
  paged in, not the file size.  Token byte spans are sliced out of the map
  as plain ``bytes``, so emitted tokens never pin the mapping.
* **chunked reads** — :class:`FileTokenizer` wraps any open file object
  (binary preferred; text mode is accepted and encoded chunk-by-chunk,
  which is safe because a ``str`` chunk boundary can never split a code
  point).  It reads fixed-size chunks on demand (the ``_refill`` hook) and
  periodically *compacts* the consumed prefix away, so the resident window
  stays proportional to the chunk size — this is the path for sockets,
  pipes, and anything else that cannot be mapped.

The interaction with the batch scanner (see :mod:`repro.xmlio.lexer`) is
what keeps the chunked window bounded: a batch may advance at most
``chunk_size`` bytes (``_batch_bytes``), and the consumed prefix is
compacted in the ``_before_batch`` hook, between batches, when no scan
positions point into the window.  Compaction also maintains the newline
counts that make ``XMLSyntaxError.line``/``.column`` computable after the
prefix is gone, while ``position`` stays a document-absolute byte offset.

When ``GCX_LEX_SHARDS`` requests it and the file is large enough,
``tokenize_file`` hands the path to the process-sharded scan
(:mod:`repro.xmlio.shard`) instead.

``tokenize_file`` accepts a path or any open (binary or text) file object.
"""

from __future__ import annotations

import mmap
import os
from pathlib import Path
from typing import IO, Iterator

from repro.xmlio.lexer import XMLSyntaxError, XMLTokenizer
from repro.xmlio.tokens import Token

__all__ = ["FileTokenizer", "tokenize_file"]

DEFAULT_CHUNK_SIZE = 64 * 1024


class FileTokenizer(XMLTokenizer):
    """Tokenize from a file object, keeping only a sliding window in memory."""

    def __init__(
        self,
        stream: IO,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        strip_whitespace: bool = True,
        convert_attributes: bool = True,
    ) -> None:
        super().__init__(
            b"",
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
        self._stream = stream
        self._chunk_size = max(chunk_size, 16)
        # Cap batch scanning at one chunk so compaction keeps pace and the
        # resident window stays O(chunk) regardless of document length.
        self._batch_bytes = self._chunk_size
        self._eof = False

    def _refill(self) -> bool:
        if self._eof:
            return False
        chunk = self._stream.read(self._chunk_size)
        if not chunk:
            self._eof = True
            return False
        if isinstance(chunk, str):
            # Text-mode stream: encode per chunk.  A ``str`` boundary can
            # never split a code point, so the concatenation is identical
            # to encoding the whole document at once.
            chunk = chunk.encode("utf-8")
        self._data += chunk
        return True

    def _before_batch(self) -> None:
        # Compact between batches only: mid-batch scans hold local
        # positions into the window, which compaction would invalidate.
        pos = self._pos
        if pos > self._chunk_size:
            discarded = self._data[:pos]
            # Keep lazy line/column computable after the prefix is gone.
            self._nl_before += discarded.count(b"\n")
            last = discarded.rfind(b"\n")
            if last != -1:
                self._last_nl_abs = self._offset + last
            self._offset += pos
            self._data = self._data[pos:]
            self._pos = 0

    @property
    def window_size(self) -> int:
        """Bytes currently resident (for tests and diagnostics)."""
        return len(self._data)


def tokenize_file(
    source: str | Path | IO,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> Iterator[Token]:
    """Tokenize an XML file (path, or open binary/text file) incrementally.

    Paths are mmap-scanned (``chunk_size`` is then irrelevant: the OS pages
    the file in and out as the scan advances); file objects go through the
    chunked :class:`FileTokenizer`.  When given a path the underlying file
    is opened and closed by the iterator.
    """
    if isinstance(source, (str, Path)):
        if os.environ.get("GCX_LEX_SHARDS", "1") not in ("", "0", "1"):
            from repro.xmlio import shard

            sharded = shard.maybe_tokenize_file_sharded(
                source,
                strip_whitespace=strip_whitespace,
                convert_attributes=convert_attributes,
            )
            if sharded is not None:
                return sharded

        def generate() -> Iterator[Token]:
            with open(source, "rb") as handle:
                try:
                    mapped = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except (ValueError, OSError):
                    # Empty or unmappable (e.g. a FIFO): chunked fallback.
                    yield from FileTokenizer(
                        handle,
                        chunk_size=chunk_size,
                        strip_whitespace=strip_whitespace,
                        convert_attributes=convert_attributes,
                    )
                    return
                with mapped:
                    try:
                        yield from XMLTokenizer(
                            mapped,
                            strip_whitespace=strip_whitespace,
                            convert_attributes=convert_attributes,
                        )
                    except XMLSyntaxError as error:
                        # Unwinding closes the map the error's window
                        # points into; materialize line/column first.
                        error.ensure_location()
                        raise

        return generate()
    return iter(
        FileTokenizer(
            source,
            chunk_size=chunk_size,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
    )
