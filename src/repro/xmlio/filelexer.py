"""File-backed streaming tokenizer with bounded memory.

:class:`XMLTokenizer` holds the whole document in a string; for a streaming
engine that defeats the purpose when the input is a multi-gigabyte file.
:class:`FileTokenizer` reads fixed-size chunks on demand (the ``_refill``
hook) and periodically *compacts* the consumed prefix away, so the resident
window stays proportional to the chunk size — the engine's end-to-end memory
then really is the buffer high watermark plus O(chunk).

The interaction with the batch scanner (see :mod:`repro.xmlio.lexer`) is
what keeps the window bounded: a batch may advance at most ``chunk_size``
characters (``_batch_chars``), and the consumed prefix is compacted in the
``_before_batch`` hook, between batches, when no scan positions point into
the window.  The whole document is therefore never concatenated: at any
moment the window holds at most one batch span plus one in-flight construct
plus one read-ahead chunk.

``tokenize_file`` accepts a path or any text-mode file object.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, TextIO

from repro.xmlio.lexer import XMLTokenizer
from repro.xmlio.tokens import Token

__all__ = ["FileTokenizer", "tokenize_file"]

DEFAULT_CHUNK_SIZE = 64 * 1024


class FileTokenizer(XMLTokenizer):
    """Tokenize from a file object, keeping only a sliding window in memory."""

    def __init__(
        self,
        stream: TextIO,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        strip_whitespace: bool = True,
        convert_attributes: bool = True,
    ) -> None:
        super().__init__(
            "",
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
        self._stream = stream
        self._chunk_size = max(chunk_size, 16)
        # Cap batch scanning at one chunk so compaction keeps pace and the
        # resident window stays O(chunk) regardless of document length.
        self._batch_chars = self._chunk_size
        self._eof = False

    def _refill(self) -> bool:
        if self._eof:
            return False
        chunk = self._stream.read(self._chunk_size)
        if not chunk:
            self._eof = True
            return False
        self._text += chunk
        return True

    def _before_batch(self) -> None:
        # Compact between batches only: mid-batch scans hold local
        # positions into the window, which compaction would invalidate.
        if self._pos > self._chunk_size:
            self._offset += self._pos
            self._text = self._text[self._pos :]
            self._pos = 0

    @property
    def window_size(self) -> int:
        """Characters currently resident (for tests and diagnostics)."""
        return len(self._text)


def tokenize_file(
    source: str | Path | TextIO,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> Iterator[Token]:
    """Tokenize an XML file (path or open text file) incrementally.

    When given a path the file is opened and closed by the iterator.
    """
    if isinstance(source, (str, Path)):
        def generate() -> Iterator[Token]:
            with open(source, "r", encoding="utf-8") as handle:
                yield from FileTokenizer(
                    handle,
                    chunk_size=chunk_size,
                    strip_whitespace=strip_whitespace,
                    convert_attributes=convert_attributes,
                )

        return generate()
    return iter(
        FileTokenizer(
            source,
            chunk_size=chunk_size,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
    )
