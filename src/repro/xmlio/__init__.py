"""XML substrate: tokens, streaming lexer, DOM trees, serialization.

This subpackage implements the paper's data model (Section 2): XML documents
viewed both as streams of opening/closing tags and character data, and as
unranked ordered labeled trees, plus the document projection of Definition 1.
"""

from repro.xmlio.filelexer import FileTokenizer, tokenize_file
from repro.xmlio.lexer import XMLSyntaxError, XMLTokenizer, tokenize
from repro.xmlio.serialize import (
    GeneratorSink,
    IncrementalSerializer,
    StringSink,
    TokenSink,
    WriterSink,
    serialize_stream,
    serialize_tokens,
)
from repro.xmlio.tokens import (
    EndTag,
    LazyCData,
    LazyText,
    StartTag,
    Text,
    Token,
    text_decode_count,
)
from repro.xmlio.tree import (
    DocumentNode,
    ElementNode,
    TextNode,
    XMLNode,
    build_tree,
    parse_tree,
    project,
    serialize_tree,
    tree_tokens,
)

__all__ = [
    "Token",
    "StartTag",
    "EndTag",
    "Text",
    "LazyText",
    "LazyCData",
    "text_decode_count",
    "XMLTokenizer",
    "XMLSyntaxError",
    "tokenize",
    "FileTokenizer",
    "tokenize_file",
    "serialize_tokens",
    "serialize_stream",
    "IncrementalSerializer",
    "TokenSink",
    "StringSink",
    "WriterSink",
    "GeneratorSink",
    "XMLNode",
    "ElementNode",
    "TextNode",
    "DocumentNode",
    "parse_tree",
    "build_tree",
    "project",
    "serialize_tree",
    "tree_tokens",
]
