"""In-memory XML trees and the document projection of Definition 1.

The baselines (naive DOM engine, projection-only engine) evaluate queries on
these trees, and the tests use them as the reference data model.  Nodes carry
stable identities so node-set comparisons work the way the paper requires
("when comparing node-sets ... we compare node-identifiers only").
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.xmlio.lexer import tokenize
from repro.xmlio.tokens import EndTag, StartTag, Text, Token, escape_text

__all__ = [
    "XMLNode",
    "ElementNode",
    "TextNode",
    "DocumentNode",
    "parse_tree",
    "project",
    "tree_tokens",
]


class XMLNode:
    """Base class of DOM nodes.

    Document order is materialized in ``order``; parents hold children in a
    list.  ``size`` (|T| in the paper) counts all nodes in the subtree.
    """

    __slots__ = ("parent", "children", "order")

    def __init__(self) -> None:
        self.parent: XMLNode | None = None
        self.children: list[XMLNode] = []
        self.order: int = -1

    # -- structure ------------------------------------------------------

    def append(self, child: "XMLNode") -> None:
        child.parent = self
        self.children.append(child)

    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def descendants(self) -> Iterator["XMLNode"]:
        for child in self.children:
            yield from child.iter_subtree()

    def ancestors(self) -> Iterator["XMLNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    # -- values ---------------------------------------------------------

    def string_value(self) -> str:
        """The concatenated text content of the subtree (XPath string value)."""
        parts: list[str] = []
        for node in self.iter_subtree():
            if isinstance(node, TextNode):
                parts.append(node.content)
        return "".join(parts)

    def is_element(self) -> bool:
        return isinstance(self, ElementNode)


class ElementNode(XMLNode):
    """An element with a tag name."""

    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        super().__init__()
        self.tag = tag

    def __repr__(self) -> str:
        return f"ElementNode({self.tag!r}, order={self.order})"


class TextNode(XMLNode):
    """A character-data node."""

    __slots__ = ("content",)

    def __init__(self, content: str) -> None:
        super().__init__()
        self.content = content

    def __repr__(self) -> str:
        return f"TextNode({self.content!r}, order={self.order})"


class DocumentNode(XMLNode):
    """The document root (the node the paper calls ``root``).

    Its single element child is the root element; XPath ``/bib`` selects
    ``bib`` children of this node.
    """

    def __repr__(self) -> str:
        return f"DocumentNode(order={self.order})"

    @property
    def root_element(self) -> ElementNode | None:
        for child in self.children:
            if isinstance(child, ElementNode):
                return child
        return None


def parse_tree(
    text: str,
    *,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> DocumentNode:
    """Parse document text into a DOM tree."""
    return build_tree(
        tokenize(
            text,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
    )


def build_tree(tokens: Iterable[Token]) -> DocumentNode:
    """Build a DOM tree from a token stream."""
    document = DocumentNode()
    document.order = 0
    stack: list[XMLNode] = [document]
    counter = 1
    for token in tokens:
        if isinstance(token, StartTag):
            element = ElementNode(token.tag)
            element.order = counter
            counter += 1
            stack[-1].append(element)
            stack.append(element)
        elif isinstance(token, EndTag):
            stack.pop()
        elif isinstance(token, Text):
            text_node = TextNode(token.content)
            text_node.order = counter
            counter += 1
            stack[-1].append(text_node)
    return document


def tree_tokens(node: XMLNode) -> Iterator[Token]:
    """Serialize a subtree back into a token stream (document order)."""
    if isinstance(node, DocumentNode):
        for child in node.children:
            yield from tree_tokens(child)
    elif isinstance(node, ElementNode):
        yield StartTag(node.tag)
        for child in node.children:
            yield from tree_tokens(child)
        yield EndTag(node.tag)
    elif isinstance(node, TextNode):
        yield Text(node.content)


def serialize_tree(node: XMLNode) -> str:
    """Serialize a subtree to text, using bachelor tags for empty elements."""
    parts: list[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node: XMLNode, parts: list[str]) -> None:
    if isinstance(node, DocumentNode):
        for child in node.children:
            _serialize_into(child, parts)
    elif isinstance(node, ElementNode):
        if node.children:
            parts.append(f"<{node.tag}>")
            for child in node.children:
                _serialize_into(child, parts)
            parts.append(f"</{node.tag}>")
        else:
            parts.append(f"<{node.tag}/>")
    elif isinstance(node, TextNode):
        parts.append(escape_text(node.content))


def project(
    document: DocumentNode, keep: set[XMLNode] | Callable[[XMLNode], bool]
) -> DocumentNode:
    """Compute the projection Pi_S(T) of Definition 1.

    ``keep`` is either the node-set S (the document root is always kept) or a
    predicate over nodes.  The projected tree consists of copies of the
    selected nodes with ancestor-descendant and following relationships
    preserved: a kept node becomes a child of its nearest kept ancestor, in
    document order.  The original tree is left untouched; copies keep the
    original ``order`` values so node identity can be traced across the
    projection.
    """
    if callable(keep):
        predicate = keep
    else:
        kept_set = keep
        predicate = lambda node: node in kept_set  # noqa: E731 - tiny closure

    new_document = DocumentNode()
    new_document.order = document.order

    def copy_of(node: XMLNode) -> XMLNode:
        if isinstance(node, ElementNode):
            clone = ElementNode(node.tag)
        elif isinstance(node, TextNode):
            clone = TextNode(node.content)
        else:  # pragma: no cover - the document root is handled outside
            raise TypeError(f"cannot project node {node!r}")
        clone.order = node.order
        return clone

    def walk(original: XMLNode, attach_to: XMLNode) -> None:
        for child in original.children:
            if predicate(child):
                clone = copy_of(child)
                attach_to.append(clone)
                walk(child, clone)
            else:
                # The child is discarded; its kept descendants are promoted.
                walk(child, attach_to)

    walk(document, new_document)
    return new_document
