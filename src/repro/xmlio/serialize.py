"""Serialization of token streams.

Query results in GCX are produced as token streams; this module renders them
as document text.  Empty elements are rendered as bachelor tags (``<a/>``),
matching the notation used throughout the paper (e.g. ``<title/>`` in
Figure 2).
"""

from __future__ import annotations

from typing import Iterable

from repro.xmlio.tokens import EndTag, StartTag, Text, Token, escape_text

__all__ = ["serialize_tokens", "TokenSink", "StringSink"]


def serialize_tokens(tokens: Iterable[Token], *, indent: str | None = None) -> str:
    """Render a token stream as text.

    With ``indent`` set (e.g. ``"  "``), output is pretty-printed with one
    element per line; text content suppresses pretty-printing inside its
    parent to avoid changing the document's string values.
    """
    sink = StringSink(indent=indent)
    for token in tokens:
        sink.write(token)
    return sink.getvalue()


class TokenSink:
    """Interface for receiving output tokens from the evaluator."""

    def write(self, token: Token) -> None:
        raise NotImplementedError

    def write_all(self, tokens: Iterable[Token]) -> None:
        for token in tokens:
            self.write(token)


class StringSink(TokenSink):
    """A sink that accumulates serialized text.

    A one-token lookahead collapses ``<a></a>`` into ``<a/>``.
    """

    def __init__(self, *, indent: str | None = None) -> None:
        self._parts: list[str] = []
        self._pending_start: str | None = None
        self._indent = indent
        self._depth = 0
        self._token_count = 0

    @property
    def token_count(self) -> int:
        return self._token_count

    def write(self, token: Token) -> None:
        self._token_count += 1
        if isinstance(token, StartTag):
            self._flush_pending()
            self._pending_start = token.tag
        elif isinstance(token, EndTag):
            if self._pending_start == token.tag:
                self._emit(f"<{token.tag}/>")
                self._pending_start = None
            else:
                self._flush_pending()
                self._depth = max(0, self._depth - 1)
                self._emit(f"</{token.tag}>", closing=True)
        elif isinstance(token, Text):
            self._flush_pending()
            self._emit_text(escape_text(token.content))

    def _flush_pending(self) -> None:
        if self._pending_start is not None:
            self._emit(f"<{self._pending_start}>")
            self._depth += 1
            self._pending_start = None

    def _emit(self, fragment: str, *, closing: bool = False) -> None:
        if self._indent is not None:
            prefix = "\n" + self._indent * self._depth if self._parts else ""
            self._parts.append(prefix + fragment)
        else:
            self._parts.append(fragment)

    def _emit_text(self, fragment: str) -> None:
        self._parts.append(fragment)

    def getvalue(self) -> str:
        self._flush_pending()
        return "".join(self._parts)
