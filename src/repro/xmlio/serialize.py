"""Serialization of token streams — buffered, incremental, and bridged.

Query results in GCX are produced as token streams; this module renders
them as document text.  Empty elements are rendered as bachelor tags
(``<a/>``), matching the notation used throughout the paper (e.g.
``<title/>`` in Figure 2).

The module is organized around three layers:

* :class:`IncrementalSerializer` — the token-to-text state machine.  It is
  *incremental*: each token fed in returns the text fragment it completes,
  so a streaming consumer sees output bytes as soon as the one-token
  bachelor-tag lookahead allows.
* :class:`TokenSink` — the explicit protocol through which the evaluator
  emits output tokens.  Three implementations ship: :class:`StringSink`
  (accumulate everything; the classic buffered result),
  :class:`WriterSink` (serialize incrementally to any writable, e.g.
  ``sys.stdout`` — this is what gives ``gcx run`` bounded-memory output),
  and :class:`GeneratorSink` (bridge a push-based producer to a pull-based
  consumer by draining buffered tokens as an iterator).
* module functions — :func:`serialize_tokens` (joined string) and
  :func:`serialize_stream` (generator of text fragments).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.xmlio.tokens import EndTag, StartTag, Text, Token, escape_text

__all__ = [
    "serialize_tokens",
    "serialize_stream",
    "IncrementalSerializer",
    "TokenSink",
    "StringSink",
    "WriterSink",
    "GeneratorSink",
]


def serialize_tokens(tokens: Iterable[Token], *, indent: str | None = None) -> str:
    """Render a token stream as text.

    With ``indent`` set (e.g. ``"  "``), output is pretty-printed with one
    element per line; text content suppresses pretty-printing inside its
    parent to avoid changing the document's string values.
    """
    return "".join(serialize_stream(tokens, indent=indent))


def serialize_stream(
    tokens: Iterable[Token], *, indent: str | None = None
) -> Iterator[str]:
    """Render a token stream as an iterator of text fragments.

    The lazy counterpart of :func:`serialize_tokens`: fragments are yielded
    as soon as the bachelor-tag lookahead resolves, so joining a prefix of
    the iterator gives a well-formed prefix of the final text.  This is the
    serialization path of ``GCXEngine.run_streaming`` and the streaming CLI.
    """
    serializer = IncrementalSerializer(indent=indent)
    for token in tokens:
        fragment = serializer.feed(token)
        if fragment:
            yield fragment
    tail = serializer.flush()
    if tail:
        yield tail


class IncrementalSerializer:
    """Token-to-text state machine with bachelor-tag lookahead.

    A one-token lookahead collapses ``<a></a>`` into ``<a/>``; consequently
    :meth:`feed` may return the empty string for a ``StartTag`` (the text is
    withheld until the next token decides between ``<a>`` and ``<a/>``).
    Call :meth:`flush` once the stream ends to release a trailing pending
    start tag.
    """

    def __init__(self, *, indent: str | None = None) -> None:
        self._pending_start: str | None = None
        self._indent = indent
        self._depth = 0
        self._started = False

    def feed(self, token: Token) -> str:
        """Consume one token, returning the text fragment it completes."""
        if isinstance(token, StartTag):
            fragment = self._release_pending()
            self._pending_start = token.tag
            return fragment
        if isinstance(token, EndTag):
            if self._pending_start == token.tag:
                self._pending_start = None
                return self._format(f"<{token.tag}/>")
            fragment = self._release_pending()
            self._depth = max(0, self._depth - 1)
            return fragment + self._format(f"</{token.tag}>")
        if isinstance(token, Text):
            fragment = self._release_pending()
            escaped = escape_text(token.content)
            if escaped:
                self._started = True
            return fragment + escaped
        raise TypeError(f"cannot serialize {token!r}")

    def flush(self) -> str:
        """Release a pending start tag at end of stream (``<a>`` stays open)."""
        return self._release_pending()

    def _release_pending(self) -> str:
        if self._pending_start is None:
            return ""
        fragment = self._format(f"<{self._pending_start}>")
        self._depth += 1
        self._pending_start = None
        return fragment

    def _format(self, fragment: str) -> str:
        if self._indent is not None:
            prefix = "\n" + self._indent * self._depth if self._started else ""
            self._started = True
            return prefix + fragment
        self._started = True
        return fragment


class TokenSink:
    """The protocol through which the evaluator emits output tokens.

    Implementations receive one :class:`~repro.xmlio.tokens.Token` per
    :meth:`write` call, in document order; :meth:`close` is called (by
    owners that manage the sink's lifecycle, e.g. ``GCXEngine.run``) when
    the result stream is complete, so buffering implementations can flush.
    Subclasses must implement :meth:`write`; :meth:`close` defaults to a
    no-op.
    """

    def write(self, token: Token) -> None:
        raise NotImplementedError

    def write_all(self, tokens: Iterable[Token]) -> None:
        for token in tokens:
            self.write(token)

    def close(self) -> None:
        """The result stream is complete; flush any buffered state."""


class StringSink(TokenSink):
    """A sink that accumulates the fully serialized text in memory.

    The classic buffered result: ``getvalue()`` after the run returns the
    whole output.  Prefer :class:`WriterSink` (or ``run_streaming``) when
    the result may be large — this sink's memory is proportional to the
    output size by construction.
    """

    def __init__(self, *, indent: str | None = None) -> None:
        self._serializer = IncrementalSerializer(indent=indent)
        self._parts: list[str] = []
        self._token_count = 0

    @property
    def token_count(self) -> int:
        """Number of tokens written so far (used by tests and traces)."""
        return self._token_count

    def write(self, token: Token) -> None:
        self._token_count += 1
        fragment = self._serializer.feed(token)
        if fragment:
            self._parts.append(fragment)

    def getvalue(self) -> str:
        """The text serialized so far (flushing any pending start tag)."""
        tail = self._serializer.flush()
        if tail:
            self._parts.append(tail)
        return "".join(self._parts)


class WriterSink(TokenSink):
    """A sink that serializes incrementally to a writable object.

    ``writable`` is anything with a ``write(str)`` method — an open text
    file, ``sys.stdout``, a socket wrapper.  Fragments are written as soon
    as the lookahead resolves, so the memory held by the sink is O(1)
    regardless of result size: this is the output half of the paper's
    constant-memory claim, complementing the buffer bound on the input
    half.  The CLI's ``gcx run`` streams through this sink.
    """

    def __init__(self, writable, *, indent: str | None = None) -> None:
        self._writable = writable
        self._serializer = IncrementalSerializer(indent=indent)
        self._bytes_written = 0

    @property
    def chars_written(self) -> int:
        """Number of characters written to the underlying writable."""
        return self._bytes_written

    def write(self, token: Token) -> None:
        fragment = self._serializer.feed(token)
        if fragment:
            self._writable.write(fragment)
            self._bytes_written += len(fragment)

    def close(self) -> None:
        tail = self._serializer.flush()
        if tail:
            self._writable.write(tail)
            self._bytes_written += len(tail)


class GeneratorSink(TokenSink):
    """A sink that bridges push-based producers to pull-based consumers.

    Push-based code (the DOM baseline's interpreter, custom traversals)
    writes tokens in; a consumer drains them with :meth:`drain` or by
    iterating the sink.  Draining interleaved with writing yields exactly
    the tokens written since the previous drain, which is how a push
    producer can be adapted to the streaming-session API without threads.
    """

    def __init__(self) -> None:
        self._queue: deque[Token] = deque()
        self.closed = False

    def write(self, token: Token) -> None:
        if self.closed:
            raise ValueError("cannot write to a closed GeneratorSink")
        self._queue.append(token)

    def close(self) -> None:
        self.closed = True

    def drain(self) -> Iterator[Token]:
        """Yield (and remove) every token buffered so far."""
        while self._queue:
            yield self._queue.popleft()

    def __iter__(self) -> Iterator[Token]:
        return self.drain()

    def __len__(self) -> int:
        return len(self._queue)
