"""The PR-3 str-domain batch lexer, frozen as the bytes-rewrite baseline.

This is the chunk-scanning ``str`` tokenizer exactly as it shipped before
the bytes-domain rewrite of :mod:`repro.xmlio.lexer`.  It exists for two
reasons:

1. the machine-independent ``tokenizer_bytes_vs_str_speedup`` benchmark in
   :mod:`repro.bench.baseline` measures the bytes hot path against this
   implementation, run in the same process on the same document;
2. it doubles as a second differential oracle: it shares the batch-scanning
   shape of the live lexer (unlike the token-at-a-time
   :mod:`repro.xmlio._reference_lexer`), so a bug in the *batching* logic
   that both the bytes lexer and the char-stepping reference somehow agree
   on would still be caught.

Do not modify this module except to track changes in the shared token
vocabulary; it must keep emitting eager :class:`~repro.xmlio.tokens.Text`
tokens and ``str``-domain offsets.  It must not be used by the engine;
import :mod:`repro.xmlio.lexer` instead.
"""


from __future__ import annotations

from typing import Iterator

from repro.xmlio.lexer import XMLSyntaxError
from repro.xmlio.tokens import EndTag, StartTag, Text, Token, unescape_text

__all__ = ["StrXMLTokenizer", "str_tokenize"]

_WHITESPACE = " \t\r\n"

#: Maximum number of tokens scanned ahead per batch.  Large enough to
#: amortize the per-batch setup, small enough that time-to-first-token and
#: the file lexer's resident window stay bounded.
BATCH_TOKENS = 256

#: Character budget sentinel for in-memory scanning (effectively unbounded).
_NO_BUDGET = 1 << 62


class StrXMLTokenizer:
    """Incrementally tokenize an XML document held in a string.

    The tokenizer checks well-formedness of tag nesting as it goes and
    raises :class:`XMLSyntaxError` on mismatched or dangling tags.  Errors
    surface in stream order: tokens scanned before the offending construct
    are delivered first, exactly like the pre-batching implementation.

    Parameters
    ----------
    text:
        The document text.
    strip_whitespace:
        When true (the default), text tokens consisting purely of whitespace
        between elements are dropped.  XMark documents carry no meaningful
        inter-element whitespace, and the paper's data model has no notion of
        ignorable whitespace either.
    convert_attributes:
        When true (the default), attributes are emitted as leading
        subelements in document order: ``<a x="1">`` becomes
        ``<a><x>1</x>...``.  This mirrors the paper's benchmark adaptation.
    """

    def __init__(
        self,
        text: str,
        *,
        strip_whitespace: bool = True,
        convert_attributes: bool = True,
    ) -> None:
        self._text = text
        self._pos = 0
        self._offset = 0  # characters discarded by compaction (file mode)
        self._strip_whitespace = strip_whitespace
        self._convert_attributes = convert_attributes
        self._open_tags: list[str] = []
        self._seen_root = False
        self._done = False
        # Batch machinery: tokens are scanned BATCH_TOKENS at a time into
        # ``_out`` and served by index.  ``_batch_chars`` caps how far one
        # batch may advance (the file subclass sets it to the chunk size so
        # compaction keeps up with scanning).
        self._out: list[Token] = []
        self._out_pos = 0
        self._batch_chars = _NO_BUDGET
        self._error: XMLSyntaxError | None = None
        # Interning tables: one token object per distinct tag name.
        self._start_tags: dict[str, StartTag] = {}
        self._end_tags: dict[str, EndTag] = {}

    def _refill(self) -> bool:
        """Ask for more input.  The in-memory tokenizer has none; the
        file-backed subclass appends the next chunk and returns True."""
        return False

    def _before_batch(self) -> None:
        """Hook run before scanning a batch (the file subclass compacts)."""

    def __iter__(self) -> Iterator[Token]:
        return self

    def __next__(self) -> Token:
        # Inline the batch fast path: one bounds check and a list index.
        out = self._out
        pos = self._out_pos
        if pos < len(out):
            self._out_pos = pos + 1
            return out[pos]
        token = self.next_token()
        if token is None:
            raise StopIteration
        return token

    def next_token(self) -> Token | None:
        """Return the next token, or ``None`` when the stream is exhausted."""
        out = self._out
        pos = self._out_pos
        if pos < len(out):
            self._out_pos = pos + 1
            return out[pos]
        while True:
            if not self._fill():
                if self._error is not None:
                    raise self._error
                self._finish_checks()
                return None
            if self._out:
                self._out_pos = 1
                return self._out[0]

    # ------------------------------------------------------------------
    # scanning machinery
    # ------------------------------------------------------------------

    def _fill(self) -> bool:
        """Scan the next batch of tokens into ``_out``.

        Returns False when the stream is exhausted (or a deferred syntax
        error is pending); True when the batch may hold tokens — possibly
        zero, when the character budget was spent on skipped constructs.
        """
        if self._error is not None:
            return False
        self._before_batch()
        out = self._out
        out.clear()
        self._out_pos = 0
        append = out.append
        text = self._text
        n = len(text)
        pos = self._pos
        limit = pos + self._batch_chars
        offset = self._offset
        strip_ws = self._strip_whitespace
        open_tags = self._open_tags
        start_tags = self._start_tags
        end_tags = self._end_tags
        progressed = False
        try:
            while len(out) < BATCH_TOKENS and pos <= limit:
                if pos >= n:
                    self._pos = pos
                    if not self._refill():
                        break
                    text = self._text
                    n = len(text)
                    continue
                progressed = True
                if text[pos] != "<":
                    # -- character data run ------------------------------
                    end = text.find("<", pos)
                    if end == -1:
                        self._pos = pos
                        while end == -1:
                            # Resume the search where the old text ended:
                            # rescanning from ``pos`` would make one long
                            # text run quadratic in the number of refills.
                            old_length = len(text)
                            if not self._refill():
                                break
                            text = self._text
                            end = text.find("<", old_length)
                        n = len(text)
                        if end == -1:
                            end = n
                    raw = text[pos:end]
                    start = pos
                    pos = end
                    if raw.isspace():
                        if strip_ws:
                            continue
                        append(Text(raw))
                        continue
                    if not open_tags:
                        raise XMLSyntaxError(
                            "character data outside the root element",
                            start + offset,
                        )
                    if "&" in raw:
                        raw = unescape_text(raw)
                    append(Text(raw))
                    continue
                # -- markup: make the construct kind decidable even when a
                # chunk boundary splits the prefix (longest is <![CDATA[).
                if n - pos < 9:
                    self._pos = pos
                    while n - pos < 9 and self._refill():
                        text = self._text
                        n = len(text)
                second = text[pos + 1] if pos + 1 < n else ""
                if second == "/":
                    # -- end tag -----------------------------------------
                    end = text.find(">", pos)
                    if end == -1:
                        self._pos = pos
                        end = self._find(">", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated end tag", pos + offset
                            )
                        text = self._text
                        n = len(text)
                    name = text[pos + 2 : end].strip()
                    if not name:
                        raise XMLSyntaxError("empty end tag", pos + offset)
                    if not open_tags:
                        raise XMLSyntaxError(
                            f"closing tag </{name}> with no open element",
                            pos + offset,
                        )
                    expected = open_tags.pop()
                    if expected != name:
                        raise XMLSyntaxError(
                            f"mismatched closing tag </{name}>, "
                            f"expected </{expected}>",
                            pos + offset,
                        )
                    pos = end + 1
                    token = end_tags.get(name)
                    if token is None:
                        token = end_tags[name] = EndTag(name)
                    append(token)
                    continue
                if second == "!" or second == "?":
                    self._pos = pos
                    if text.startswith("<!--", pos):
                        end = self._find("-->", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated construct, expected '-->'",
                                pos + offset,
                            )
                        text = self._text
                        n = len(text)
                        pos = end + 3
                        continue
                    if text.startswith("<![CDATA[", pos):
                        end = self._find("]]>", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated CDATA section", pos + offset
                            )
                        text = self._text
                        n = len(text)
                        content = text[pos + 9 : end]
                        if not open_tags:
                            raise XMLSyntaxError(
                                "character data outside the root element",
                                pos + offset,
                            )
                        pos = end + 3
                        if strip_ws and not content.strip():
                            continue
                        append(Text(content))
                        continue
                    if second == "?":
                        end = self._find("?>", pos)
                        if end == -1:
                            raise XMLSyntaxError(
                                "unterminated construct, expected '?>'",
                                pos + offset,
                            )
                        text = self._text
                        n = len(text)
                        pos = end + 2
                        continue
                    pos = self._skip_doctype(pos)
                    text = self._text
                    n = len(text)
                    continue
                # -- start tag -------------------------------------------
                end = text.find(">", pos)
                if end == -1:
                    self._pos = pos
                    end = self._find(">", pos)
                    if end == -1:
                        raise XMLSyntaxError(
                            "unterminated start tag", pos + offset
                        )
                    text = self._text
                    n = len(text)
                body = text[pos + 1 : end]
                if body.endswith("/"):
                    self_closing = True
                    body = body[:-1]
                else:
                    self_closing = False
                if (
                    " " in body
                    or "\t" in body
                    or "\n" in body
                    or "\r" in body
                ):
                    name, attributes = self._parse_tag_body(body, pos)
                else:
                    if not body:
                        raise XMLSyntaxError("empty start tag", pos + offset)
                    name, attributes = body, ()
                if self._seen_root and not open_tags:
                    raise XMLSyntaxError(
                        "document has more than one root element", pos + offset
                    )
                self._seen_root = True
                pos = end + 1
                token = start_tags.get(name)
                if token is None:
                    token = start_tags[name] = StartTag(name)
                append(token)
                if attributes and self._convert_attributes:
                    for attr_name, attr_value in attributes:
                        attr_start = start_tags.get(attr_name)
                        if attr_start is None:
                            attr_start = start_tags[attr_name] = StartTag(
                                attr_name
                            )
                        attr_end = end_tags.get(attr_name)
                        if attr_end is None:
                            attr_end = end_tags[attr_name] = EndTag(attr_name)
                        append(attr_start)
                        if attr_value:
                            append(Text(attr_value))
                        append(attr_end)
                if self_closing:
                    token = end_tags.get(name)
                    if token is None:
                        token = end_tags[name] = EndTag(name)
                    append(token)
                else:
                    open_tags.append(name)
        except XMLSyntaxError as error:
            # Deliver already-scanned tokens first, then the error — the
            # stream behaves exactly like the token-at-a-time oracle.
            self._error = error
            self._pos = pos
            return bool(out)
        self._pos = pos
        if out:
            return True
        # No tokens: either the stream ended, or the budget went into
        # skipped constructs / stripped whitespace and scanning continues.
        return progressed and (pos < len(self._text) or not self._at_eof())

    def _at_eof(self) -> bool:
        return not self._refill()

    def _find(self, needle: str, start: int) -> int:
        """``str.find`` that refills until the needle appears or input ends."""
        end = self._text.find(needle, start)
        while end == -1:
            old_length = len(self._text)
            if not self._refill():
                return -1
            # The needle may straddle the old chunk boundary.
            rescan_from = max(start, old_length - len(needle) + 1)
            end = self._text.find(needle, rescan_from)
        return end

    def _skip_doctype(self, pos: int) -> int:
        # DOCTYPE may contain an internal subset in square brackets.
        depth = 0
        i = pos
        while True:
            while i >= len(self._text):
                if not self._refill():
                    raise XMLSyntaxError(
                        "unterminated <!DOCTYPE ...> clause", pos + self._offset
                    )
            ch = self._text[i]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return i + 1
            i += 1

    def _parse_tag_body(
        self, body: str, pos: int
    ) -> tuple[str, list[tuple[str, str]]]:
        body = body.strip()
        if not body:
            raise XMLSyntaxError("empty start tag", pos + self._offset)
        i = 0
        while i < len(body) and body[i] not in _WHITESPACE:
            i += 1
        name = body[:i]
        attributes: list[tuple[str, str]] = []
        while i < len(body):
            while i < len(body) and body[i] in _WHITESPACE:
                i += 1
            if i >= len(body):
                break
            eq = body.find("=", i)
            if eq == -1:
                raise XMLSyntaxError(
                    f"malformed attribute in <{name}>", pos + self._offset
                )
            attr_name = body[i:eq].strip()
            j = eq + 1
            while j < len(body) and body[j] in _WHITESPACE:
                j += 1
            if j >= len(body) or body[j] not in "\"'":
                raise XMLSyntaxError(
                    f"unquoted attribute value in <{name}>", pos + self._offset
                )
            quote = body[j]
            close = body.find(quote, j + 1)
            if close == -1:
                raise XMLSyntaxError(
                    f"unterminated attribute value in <{name}>", pos + self._offset
                )
            attributes.append((attr_name, unescape_text(body[j + 1 : close])))
            i = close + 1
        return name, attributes

    def _finish_checks(self) -> None:
        if self._done:
            return
        self._done = True
        # ``_pos`` is window-relative in chunked file mode; add the
        # compacted-away prefix so positions stay document-absolute.
        position = self._pos + self._offset
        if self._open_tags:
            raise XMLSyntaxError(
                f"input exhausted with unclosed element <{self._open_tags[-1]}>",
                position,
            )
        if not self._seen_root:
            raise XMLSyntaxError("document has no root element", position)


def str_tokenize(
    text: str,
    *,
    strip_whitespace: bool = True,
    convert_attributes: bool = True,
) -> Iterator[Token]:
    """Tokenize ``text`` into a stream of :class:`~repro.xmlio.tokens.Token`."""
    return iter(
        StrXMLTokenizer(
            text,
            strip_whitespace=strip_whitespace,
            convert_attributes=convert_attributes,
        )
    )
