"""If-pushdown rewriting (Figure 7): rules DECOMP, SEQ, NC, FOR.

The static analysis inserts signOff statements at the end of for-loop bodies
(Section 4).  Because role assignment happens during projection, before
conditions can be decided, no signOff may end up inside an if-expression.
Pushing all if-expressions down into for-loops guarantees this:

* DECOMP splits ``if X then a else b`` into two one-sided ifs,
* SEQ distributes an if over a sequence,
* NC decomposes a node constructor under an if into bare open/close tag
  emissions guarded by the same condition (the grammar's third production),
* FOR pushes an if inside a for-loop body.

DECOMP is applied once to every if-expression; the remaining rules are
applied in arbitrary order until a fixpoint is reached.  The paper remarks
that in practice only if-expressions containing a for-loop need processing;
:func:`push_ifs_down` exposes that choice via ``only_over_loops``.
"""

from __future__ import annotations

from repro.xquery.ast import (
    CloseTag,
    Element,
    Empty,
    Expr,
    ForLoop,
    IfThenElse,
    Not,
    OpenTag,
    Query,
    Sequence,
    sequence_of,
    walk,
)
from repro.xquery.normalize import map_expr

__all__ = ["push_ifs_down", "decompose_ifs"]


def decompose_ifs(expr: Expr) -> Expr:
    """Apply rule DECOMP to every if-then-else with a non-empty else branch.

    ``if X then a else b`` becomes
    ``(if X then a else (), if (not X) then b else ())``.
    """

    def transform(node: Expr) -> Expr:
        if isinstance(node, IfThenElse) and not isinstance(node.else_branch, Empty):
            positive = IfThenElse(node.cond, node.then_branch, Empty())
            negative = IfThenElse(Not(node.cond), node.else_branch, Empty())
            return sequence_of([positive, negative])
        return node

    return map_expr(expr, transform)


def _contains_for(expr: Expr) -> bool:
    return any(isinstance(sub, ForLoop) for sub in walk(expr))


def push_ifs_down(expr: Expr, *, only_over_loops: bool = False) -> Expr:
    """Rewrite with DECOMP once, then SEQ/NC/FOR to a fixpoint.

    With ``only_over_loops`` true, an if-expression is only decomposed when
    a for-loop occurs below it (the paper's practical variant); otherwise
    all if-expressions are pushed down fully.
    """
    expr = decompose_ifs(expr)

    def transform(node: Expr) -> Expr:
        if not isinstance(node, IfThenElse) or not isinstance(node.else_branch, Empty):
            return node
        if only_over_loops and not _contains_for(node.then_branch):
            return node
        cond, body = node.cond, node.then_branch
        if isinstance(body, Sequence):  # rule SEQ
            return sequence_of(
                [_push(IfThenElse(cond, item, Empty())) for item in body.items]
            )
        if isinstance(body, Element):  # rule NC
            return sequence_of(
                [
                    IfThenElse(cond, OpenTag(body.tag), Empty()),
                    _push(IfThenElse(cond, body.body, Empty())),
                    IfThenElse(cond, CloseTag(body.tag), Empty()),
                ]
            )
        if isinstance(body, ForLoop):  # rule FOR
            inner = _push(IfThenElse(cond, body.body, Empty()))
            return ForLoop(body.var, body.source, body.path, inner, body.where)
        if isinstance(body, Empty):
            return Empty()
        return node

    def _push(node: Expr) -> Expr:
        return map_expr(node, transform)

    return _push(expr)


def push_ifs_down_query(query: Query, *, only_over_loops: bool = False) -> Query:
    """Apply :func:`push_ifs_down` to a whole query."""
    root = push_ifs_down(query.root, only_over_loops=only_over_loops)
    if not isinstance(root, Element):
        raise TypeError("if-pushdown must preserve the root constructor")
    return Query(root)
