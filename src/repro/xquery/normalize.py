"""Normalization of surface queries into core XQ (Section 3).

The paper notes that "many syntactically richer fragments of XQuery can be
rewritten into our fragment": let-expressions are removed [10], queries are
normalized [11, 13] by rewriting where-conditions to if-then-else expressions
and replacing for-loops with multi-step paths by nested single-step
for-loops.  This module implements those rewritings:

1. :func:`inline_lets` — path-valued ``let`` bindings are substituted away.
2. :func:`where_to_if` — ``for ... where c return q`` becomes
   ``for ... return if c then q else ()``.
3. :func:`expand_multistep` — multi-step for-loop paths and multi-step
   output paths become nested single-step for-loops over fresh variables.

Conditions keep multi-step paths: the paper's own XMark adaptation rewrites
only for-loop paths to single steps, and the dependency analysis (Def. 2)
generalizes to condition paths of any length.

:func:`normalize` runs the full pipeline and :func:`validate_core` checks
the result is inside core XQ (single-step for-loops, no let, no where).
"""

from __future__ import annotations

from typing import Callable

from repro.xquery.ast import (
    Aggregate,
    And,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LetBinding,
    Not,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    SignOff,
    Sequence,
    VarRef,
    sequence_of,
)
from repro.xquery.paths import Path

__all__ = [
    "normalize",
    "inline_lets",
    "where_to_if",
    "expand_multistep",
    "validate_core",
    "NormalizationError",
    "FreshVariables",
]


class NormalizationError(ValueError):
    """Raised when a query cannot be brought into core XQ."""


class FreshVariables:
    """Generates fresh variable names that do not collide with used ones."""

    def __init__(self, used: set[str]) -> None:
        self._used = set(used)
        self._counter = 0

    def fresh(self, hint: str = "v") -> str:
        while True:
            self._counter += 1
            name = f"${hint}{self._counter}"
            if name not in self._used:
                self._used.add(name)
                return name


def used_variables(expr: Expr) -> set[str]:
    """All variable names appearing anywhere in ``expr``."""
    names: set[str] = set()

    def visit(node: Expr) -> Expr:
        if isinstance(node, (ForLoop, LetBinding)):
            names.add(node.var)
            names.add(node.source)
        elif isinstance(node, (VarRef, PathOutput, SignOff, Aggregate)):
            names.add(node.var)
        elif isinstance(node, IfThenElse):
            _visit_condition_vars(node.cond, names)
        if isinstance(node, ForLoop) and node.where is not None:
            _visit_condition_vars(node.where, names)
        return node

    map_expr(expr, visit)
    return names


def _visit_condition_vars(cond: Condition, names: set[str]) -> None:
    if isinstance(cond, Exists):
        names.add(cond.var)
    elif isinstance(cond, Comparison):
        for operand in (cond.left, cond.right):
            if isinstance(operand, PathOperand):
                names.add(operand.var)
    elif isinstance(cond, Quantified):
        names.add(cond.var)
        names.add(cond.source)
        _visit_condition_vars(cond.inner, names)
    elif isinstance(cond, (And, Or)):
        _visit_condition_vars(cond.left, names)
        _visit_condition_vars(cond.right, names)
    elif isinstance(cond, Not):
        _visit_condition_vars(cond.operand, names)


def map_expr(expr: Expr, transform: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``transform`` to every node."""
    if isinstance(expr, Sequence):
        rebuilt: Expr = sequence_of([map_expr(item, transform) for item in expr.items])
    elif isinstance(expr, Element):
        rebuilt = Element(expr.tag, map_expr(expr.body, transform))
    elif isinstance(expr, ForLoop):
        rebuilt = ForLoop(
            expr.var,
            expr.source,
            expr.path,
            map_expr(expr.body, transform),
            expr.where,
        )
    elif isinstance(expr, LetBinding):
        rebuilt = LetBinding(
            expr.var, expr.source, expr.path, map_expr(expr.body, transform)
        )
    elif isinstance(expr, IfThenElse):
        rebuilt = IfThenElse(
            expr.cond,
            map_expr(expr.then_branch, transform),
            map_expr(expr.else_branch, transform),
        )
    else:
        rebuilt = expr
    return transform(rebuilt)


# ---------------------------------------------------------------------------
# 1. let inlining
# ---------------------------------------------------------------------------


def inline_lets(expr: Expr) -> Expr:
    """Remove ``let $y := $x/path return q`` by substituting ``$y``.

    Only path-valued lets exist in the surface syntax, so substitution
    extends paths: ``$y/more`` becomes ``$x/path/more`` and a bare ``$y``
    output becomes the output expression ``$x/path``.
    """

    def transform(node: Expr) -> Expr:
        if isinstance(node, LetBinding):
            if _rebinds(node.body, node.var):
                raise NormalizationError(
                    f"variable {node.var} is rebound inside its let scope"
                )
            return _substitute(node.body, node.var, node.source, node.path)
        return node

    return map_expr(expr, transform)


def _rebinds(expr: Expr, var: str) -> bool:
    found = False

    def check(node: Expr) -> Expr:
        nonlocal found
        if isinstance(node, (ForLoop, LetBinding)) and node.var == var:
            found = True
        return node

    map_expr(expr, check)
    return found


def _substitute(expr: Expr, var: str, source: str, prefix: Path) -> Expr:
    def rewrite_cond(cond: Condition) -> Condition:
        if isinstance(cond, Exists) and cond.var == var:
            return Exists(source, prefix + cond.path)
        if isinstance(cond, Comparison):
            left, right = cond.left, cond.right
            if isinstance(left, PathOperand) and left.var == var:
                left = PathOperand(source, prefix + left.path)
            if isinstance(right, PathOperand) and right.var == var:
                right = PathOperand(source, prefix + right.path)
            return Comparison(left, cond.op, right)
        if isinstance(cond, Quantified):
            new_source = source if cond.source == var else cond.source
            new_path = (prefix + cond.path) if cond.source == var else cond.path
            # The quantified variable shadows ``var`` inside the satisfies
            # clause, so substitution must not descend there.
            inner = cond.inner if cond.var == var else rewrite_cond(cond.inner)
            return Quantified(cond.quantifier, cond.var, new_source, new_path, inner)
        if isinstance(cond, And):
            return And(rewrite_cond(cond.left), rewrite_cond(cond.right))
        if isinstance(cond, Or):
            return Or(rewrite_cond(cond.left), rewrite_cond(cond.right))
        if isinstance(cond, Not):
            return Not(rewrite_cond(cond.operand))
        return cond

    def transform(node: Expr) -> Expr:
        if isinstance(node, ForLoop):
            new_source = source if node.source == var else node.source
            new_path = (prefix + node.path) if node.source == var else node.path
            new_where = rewrite_cond(node.where) if node.where is not None else None
            if (new_source, new_path, new_where) != (
                node.source,
                node.path,
                node.where,
            ):
                return ForLoop(node.var, new_source, new_path, node.body, new_where)
            return node
        if isinstance(node, LetBinding) and node.source == var:
            return LetBinding(node.var, source, prefix + node.path, node.body)
        if isinstance(node, VarRef) and node.var == var:
            if not prefix:
                return VarRef(source)
            return PathOutput(source, prefix)
        if isinstance(node, PathOutput) and node.var == var:
            return PathOutput(source, prefix + node.path)
        if isinstance(node, SignOff) and node.var == var:
            return SignOff(source, prefix + node.path, node.role)
        if isinstance(node, Aggregate) and node.var == var:
            return Aggregate(node.func, source, prefix + node.path)
        if isinstance(node, IfThenElse):
            return IfThenElse(
                rewrite_cond(node.cond), node.then_branch, node.else_branch
            )
        return node

    return map_expr(expr, transform)


# ---------------------------------------------------------------------------
# 2. where -> if
# ---------------------------------------------------------------------------


def where_to_if(expr: Expr) -> Expr:
    """Rewrite ``for ... where c return q`` to ``for ... return if c ...``."""

    def transform(node: Expr) -> Expr:
        if isinstance(node, ForLoop) and node.where is not None:
            body = IfThenElse(node.where, node.body, Empty())
            return ForLoop(node.var, node.source, node.path, body, None)
        return node

    return map_expr(expr, transform)


# ---------------------------------------------------------------------------
# 3. multi-step expansion
# ---------------------------------------------------------------------------


def expand_multistep(expr: Expr, fresh: FreshVariables) -> Expr:
    """Lower multi-step for-loop paths and output paths to nested loops."""

    def transform(node: Expr) -> Expr:
        if isinstance(node, ForLoop) and len(node.path) > 1:
            inner_source = node.source
            body = node.body
            *prefix_steps, last = node.path
            loops: list[tuple[str, str, Path]] = []
            for step in prefix_steps:
                var = fresh.fresh()
                loops.append((var, inner_source, (step,)))
                inner_source = var
            result: Expr = ForLoop(node.var, inner_source, (last,), body, None)
            for var, source, path in reversed(loops):
                result = ForLoop(var, source, path, result, None)
            return result
        if isinstance(node, PathOutput) and len(node.path) > 1:
            inner_source = node.var
            steps = node.path
            loops = []
            # Peel leading steps into loops, stopping at the first
            # positional predicate: core XQ loops cannot carry [1] or
            # [last()], so the positional step and everything below it
            # stay on the output path (the evaluator resolves them over
            # the buffered matches).
            index = 0
            while index < len(steps) - 1 and not (
                steps[index].first or steps[index].last
            ):
                var = fresh.fresh()
                loops.append((var, inner_source, (steps[index],)))
                inner_source = var
                index += 1
            result = PathOutput(inner_source, steps[index:])
            for var, source, path in reversed(loops):
                result = ForLoop(var, source, path, result, None)
            return result
        return node

    return map_expr(expr, transform)


# ---------------------------------------------------------------------------
# pipeline + validation
# ---------------------------------------------------------------------------


def normalize(query: Query) -> Query:
    """Run the full normalization pipeline on a parsed query."""
    expr: Expr = query.root
    expr = inline_lets(expr)
    expr = where_to_if(expr)
    fresh = FreshVariables(used_variables(expr))
    expr = expand_multistep(expr, fresh)
    if not isinstance(expr, Element):
        raise NormalizationError("normalization must preserve the root constructor")
    result = Query(expr)
    validate_core(result)
    return result


def validate_core(query: Query) -> None:
    """Check that ``query`` lies in core XQ (plus benign extensions).

    Allowed beyond Figure 6: literal text in constructors, multi-step paths
    in conditions, and signOff statements.  Disallowed: let, where clauses,
    multi-step for-loop or output paths.
    """

    def check(node: Expr) -> Expr:
        if isinstance(node, LetBinding):
            raise NormalizationError("let bindings must be inlined before analysis")
        if isinstance(node, ForLoop):
            if node.where is not None:
                raise NormalizationError("where clauses must be rewritten to if")
            if len(node.path) != 1:
                raise NormalizationError(
                    "for-loops must use single-step paths in core XQ"
                )
            if node.path[0].first or node.path[0].last:
                raise NormalizationError(
                    "for-loops cannot carry positional predicates"
                )
        if isinstance(node, PathOutput) and len(node.path) != 1:
            # The only multi-step outputs left are positional tails the
            # multi-step expansion could not lower into loops.
            if not (node.path[0].first or node.path[0].last):
                raise NormalizationError(
                    "output expressions must use single-step paths"
                )
        return node

    map_expr(query.root, check)
