"""Variable relationships and well-formedness checks for XQ queries.

Implements the notions of Section 3: the set ``VarsQ`` of variables, the
parent-variable relation ``parVarQ`` (defined by for-loops ``for $x in
$y/axis::nu``, *not* by lexical nesting), ancestor variables, and scoping
checks (every used variable must be bound, the only free variable is
``$root``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xquery.ast import (
    Aggregate,
    And,
    Comparison,
    Condition,
    Element,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LetBinding,
    Not,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    ROOT_VAR,
    Sequence,
    SignOff,
    VarRef,
)
from repro.xquery.paths import Path

__all__ = ["VariableInfo", "QueryVariables", "analyze_variables", "ScopeError"]


class ScopeError(ValueError):
    """Raised when a query uses an unbound or rebound variable."""


@dataclass
class VariableInfo:
    """Everything known about one variable of the query."""

    name: str
    parent: str | None  # parVarQ; None for $root
    path: Path  # the single step (or steps) of the defining for-loop
    loop: ForLoop | None  # the defining for-loop; None for $root
    enclosing_loops: tuple[str, ...]  # variables of lexically enclosing loops


class QueryVariables:
    """The variable structure of a query (VarsQ, parVarQ, ancestors)."""

    def __init__(self, infos: dict[str, VariableInfo], order: list[str]) -> None:
        self._infos = infos
        self._order = order  # document (syntactic) order of introduction

    def __contains__(self, name: str) -> bool:
        return name in self._infos

    def __iter__(self):
        return iter(self._order)

    def info(self, name: str) -> VariableInfo:
        return self._infos[name]

    @property
    def names(self) -> list[str]:
        return list(self._order)

    def parent(self, name: str) -> str | None:
        """``parVarQ``: the variable the defining for-loop iterates from."""
        return self._infos[name].parent

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """``descendant <Q ancestor`` (proper ancestor via parVar chain)."""
        node = self.parent(descendant)
        while node is not None:
            if node == ancestor:
                return True
            node = self.parent(node)
        return False

    def is_ancestor_or_self(self, ancestor: str, descendant: str) -> bool:
        return ancestor == descendant or self.is_ancestor(ancestor, descendant)

    def children(self, name: str) -> list[str]:
        """Variables whose parent is ``name``, in syntactic order."""
        return [v for v in self._order if self._infos[v].parent == name]

    def variable_path(self, ancestor: str, descendant: str) -> Path:
        """``varpathQ(ancestor, descendant)``: concatenated for-loop steps."""
        if not self.is_ancestor_or_self(ancestor, descendant):
            raise ValueError(f"{ancestor} is not an ancestor of {descendant}")
        steps: list = []
        node = descendant
        while node != ancestor:
            info = self._infos[node]
            steps = list(info.path) + steps
            node = info.parent  # type: ignore[assignment]
        return tuple(steps)


def analyze_variables(query: Query) -> QueryVariables:
    """Collect VarsQ with parent and scope information, checking scoping."""
    infos: dict[str, VariableInfo] = {
        ROOT_VAR: VariableInfo(ROOT_VAR, None, (), None, ())
    }
    order = [ROOT_VAR]

    def visit(expr: Expr, scope: tuple[str, ...]) -> None:
        if isinstance(expr, Sequence):
            for item in expr.items:
                visit(item, scope)
        elif isinstance(expr, Element):
            visit(expr.body, scope)
        elif isinstance(expr, ForLoop):
            _check_use(expr.source, scope)
            if expr.var in infos:
                raise ScopeError(f"variable {expr.var} is bound more than once")
            if expr.var == ROOT_VAR:
                raise ScopeError("$root cannot be rebound")
            infos[expr.var] = VariableInfo(
                expr.var, expr.source, expr.path, expr, scope
            )
            order.append(expr.var)
            if expr.where is not None:
                _check_condition(expr.where, scope + (expr.var,))
            visit(expr.body, scope + (expr.var,))
        elif isinstance(expr, LetBinding):
            raise ScopeError("let bindings must be normalized away before analysis")
        elif isinstance(expr, IfThenElse):
            _check_condition(expr.cond, scope)
            visit(expr.then_branch, scope)
            visit(expr.else_branch, scope)
        elif isinstance(expr, (VarRef, PathOutput, SignOff, Aggregate)):
            _check_use(expr.var, scope)

    def _check_use(name: str, scope: tuple[str, ...]) -> None:
        if name != ROOT_VAR and name not in scope:
            raise ScopeError(f"variable {name} used outside its scope")

    def _check_condition(cond: Condition, scope: tuple[str, ...]) -> None:
        if isinstance(cond, Exists):
            _check_use(cond.var, scope)
        elif isinstance(cond, Comparison):
            for operand in (cond.left, cond.right):
                if isinstance(operand, PathOperand):
                    _check_use(operand.var, scope)
        elif isinstance(cond, Quantified):
            _check_use(cond.source, scope)
            # The quantified variable is local to the satisfies clause;
            # shadowing an in-scope name would make the dependency
            # analysis's variable references ambiguous, so reject it.
            if cond.var == ROOT_VAR or cond.var in scope or cond.var in infos:
                raise ScopeError(
                    f"quantified variable {cond.var} shadows an in-scope variable"
                )
            _check_condition(cond.inner, scope + (cond.var,))
        elif isinstance(cond, (And, Or)):
            _check_condition(cond.left, scope)
            _check_condition(cond.right, scope)
        elif isinstance(cond, Not):
            _check_condition(cond.operand, scope)

    visit(query.root, ())
    # Rebind lexically-enclosing loop info now that all loops are known.
    return QueryVariables(infos, order)
