"""Abstract syntax of the XQ fragment (Figure 6) plus signOff statements.

The core grammar is::

    Q    ::= <a> q </a>
    q    ::= () | <a> q </a> | var | var/axis::nu | (q, ..., q)
           | (if cond then <a> else (), q, if cond then </a> else ())
           | for var in var/axis::nu return q
           | if cond then q else q
    cond ::= true() | exists var/axis::nu | var/axis::nu RelOp string
           | var/axis::nu RelOp var/axis::nu | cond and cond
           | cond or cond | not cond

Two extensions appear in this AST:

* ``SignOff`` statements (Section 3), which the static analysis inserts and
  the evaluator interprets as buffer-manager notifications, and
* surface-level conveniences that the normalizer removes before analysis:
  multi-step paths in for-loops and ``where`` clauses (both handled by
  :mod:`repro.xquery.normalize`), and bare open/close tag emissions produced
  by the NC if-pushdown rule.

All node classes are immutable; rewriting builds new trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.xquery.paths import Path, Step, format_path

__all__ = [
    "Expr",
    "Empty",
    "Sequence",
    "Element",
    "OpenTag",
    "CloseTag",
    "VarRef",
    "PathOutput",
    "Aggregate",
    "AGGREGATE_FUNCS",
    "ForLoop",
    "LetBinding",
    "IfThenElse",
    "SignOff",
    "Condition",
    "TrueCond",
    "Exists",
    "Quantified",
    "Comparison",
    "PathOperand",
    "LiteralOperand",
    "And",
    "Or",
    "Not",
    "Query",
    "ROOT_VAR",
    "TextLiteral",
    "Operand",
    "REL_OPS",
    "sequence_of",
    "children_of",
    "walk",
    "conditions_of",
    "atomic_conditions",
]

ROOT_VAR = "$root"


class Expr:
    """Base class of query expressions."""


class Condition:
    """Base class of conditions."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Empty(Expr):
    """The empty sequence ``()``."""


@dataclass(frozen=True, slots=True)
class Sequence(Expr):
    """A sequence ``(q, ..., q)``; kept flat (no nested Sequence items)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Element(Expr):
    """A node constructor ``<a> q </a>``."""

    tag: str
    body: Expr


@dataclass(frozen=True, slots=True)
class OpenTag(Expr):
    """A bare opening tag emission, produced by the NC pushdown rule."""

    tag: str


@dataclass(frozen=True, slots=True)
class CloseTag(Expr):
    """A bare closing tag emission, produced by the NC pushdown rule."""

    tag: str


@dataclass(frozen=True, slots=True)
class TextLiteral(Expr):
    """Literal character content inside a constructor (surface syntax)."""

    content: str


@dataclass(frozen=True, slots=True)
class VarRef(Expr):
    """An output expression ``$x``: the node bound to the variable."""

    var: str


@dataclass(frozen=True, slots=True)
class PathOutput(Expr):
    """An output expression ``$x/axis::nu`` (single step in core XQ)."""

    var: str
    path: Path

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("PathOutput requires at least one step")


AGGREGATE_FUNCS = ("count", "sum", "avg")


@dataclass(frozen=True, slots=True)
class Aggregate(Expr):
    """An aggregate call ``count($x/path)`` / ``sum(...)`` / ``avg(...)``.

    Aggregates are output expressions: they emit one text token carrying
    the aggregated value of the nodes reachable from ``$x`` via ``path``
    (embedding multiplicity, like every path evaluation in the fragment).
    The runtime never buffers the aggregated subtrees — an O(1)
    accumulator in the projection lane replaces them
    (:mod:`repro.engine.relops.aggregates`).
    """

    func: str
    var: str
    path: Path

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unsupported aggregate function {self.func!r}")
        if not self.path:
            raise ValueError("aggregates require a non-empty path")


@dataclass(frozen=True, slots=True)
class ForLoop(Expr):
    """``for var in source/axis::nu return body``.

    In core XQ the path has exactly one step and ``where`` is ``None``;
    the surface syntax allows multi-step paths and a where clause, which
    the normalizer lowers.
    """

    var: str
    source: str
    path: Path
    body: Expr
    where: Condition | None = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("for-loop requires a non-empty path")

    @property
    def step(self) -> Step:
        if len(self.path) != 1:
            raise ValueError("core-XQ for-loop expected a single-step path")
        return self.path[0]


@dataclass(frozen=True, slots=True)
class LetBinding(Expr):
    """``let var := source/path return body`` (surface syntax, inlined away)."""

    var: str
    source: str
    path: Path
    body: Expr


@dataclass(frozen=True, slots=True)
class IfThenElse(Expr):
    """``if cond then q else q``."""

    cond: Condition
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True, slots=True)
class SignOff(Expr):
    """``signOff($x/path, role)`` — nodes reachable via the path lose a role.

    ``role`` is a role name (string) after parsing and a
    :class:`repro.analysis.roles.Role` after static analysis; both are
    accepted so rewritten queries round-trip through the unparser.
    """

    var: str
    path: Path
    role: object

    def path_str(self) -> str:
        if not self.path:
            return self.var
        return self.var + format_path(self.path)


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TrueCond(Condition):
    """``true()``."""


@dataclass(frozen=True, slots=True)
class Exists(Condition):
    """``exists $x/axis::nu``."""

    var: str
    path: Path

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("exists requires a non-empty path")


@dataclass(frozen=True, slots=True)
class Quantified(Condition):
    """``some/every $v in $x/path satisfies cond``.

    ``quantifier`` is ``"some"`` or ``"every"``; ``var`` is bound to each
    node reachable from ``source`` via ``path`` while ``inner`` is tested.
    Kept as a first-class condition (not lowered to ``exists``) because
    the witness variable correlates subexpressions of ``inner``.
    """

    quantifier: str
    var: str
    source: str
    path: Path
    inner: Condition

    def __post_init__(self) -> None:
        if self.quantifier not in ("some", "every"):
            raise ValueError(f"unsupported quantifier {self.quantifier!r}")
        if not self.path:
            raise ValueError("quantified conditions require a non-empty path")


@dataclass(frozen=True, slots=True)
class PathOperand:
    """A comparison operand ``$x/axis::nu``."""

    var: str
    path: Path


@dataclass(frozen=True, slots=True)
class LiteralOperand:
    """A string literal comparison operand."""

    value: str


Operand = PathOperand | LiteralOperand

REL_OPS = ("<=", "<", "=", ">=", ">")


@dataclass(frozen=True, slots=True)
class Comparison(Condition):
    """``operand RelOp operand`` with existential (any-match) semantics."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in REL_OPS:
            raise ValueError(f"unsupported RelOp {self.op!r}")


@dataclass(frozen=True, slots=True)
class And(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True, slots=True)
class Or(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True, slots=True)
class Not(Condition):
    operand: Condition


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Query:
    """A complete XQ query ``<a> q </a>`` with free variable ``$root``."""

    root: Element


# ---------------------------------------------------------------------------
# Helpers shared by rewriters and analyses
# ---------------------------------------------------------------------------


def sequence_of(items: list[Expr]) -> Expr:
    """Build a flat sequence, dropping ``()`` and splicing nested sequences."""
    flat: list[Expr] = []
    for item in items:
        if isinstance(item, Empty):
            continue
        if isinstance(item, Sequence):
            flat.extend(item.items)
        else:
            flat.append(item)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Sequence(tuple(flat))


def children_of(expr: Expr) -> Iterator[Expr]:
    """Yield the direct subexpressions of ``expr``."""
    if isinstance(expr, Sequence):
        yield from expr.items
    elif isinstance(expr, Element):
        yield expr.body
    elif isinstance(expr, (ForLoop, LetBinding)):
        yield expr.body
    elif isinstance(expr, IfThenElse):
        yield expr.then_branch
        yield expr.else_branch


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all subexpressions, pre-order."""
    yield expr
    for child in children_of(expr):
        yield from walk(child)


def conditions_of(expr: Expr) -> Iterator[Condition]:
    """Yield every condition appearing in ``expr`` (including where clauses)."""
    for sub in walk(expr):
        if isinstance(sub, IfThenElse):
            yield sub.cond
        elif isinstance(sub, ForLoop) and sub.where is not None:
            yield sub.where


def atomic_conditions(cond: Condition) -> Iterator[Condition]:
    """Yield the atomic (non-boolean-combinator) conditions inside ``cond``."""
    if isinstance(cond, (And, Or)):
        yield from atomic_conditions(cond.left)
        yield from atomic_conditions(cond.right)
    elif isinstance(cond, Not):
        yield from atomic_conditions(cond.operand)
    else:
        yield cond
