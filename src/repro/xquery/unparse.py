"""Render XQ ASTs back to surface syntax.

Used for golden tests against the paper's rewritten queries and for
debugging output of the static analysis.  ``unparse(parse_expr(s))`` is
guaranteed to re-parse to an equal AST (a property test enforces this).
"""

from __future__ import annotations

from repro.xquery.ast import (
    Aggregate,
    And,
    CloseTag,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LetBinding,
    LiteralOperand,
    Not,
    OpenTag,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    SignOff,
    Sequence,
    TextLiteral,
    TrueCond,
    VarRef,
)
from repro.xquery.paths import format_path

__all__ = ["unparse", "unparse_condition"]


def unparse(node: Expr | Query, *, indent: int | None = None) -> str:
    """Render an expression or query; ``indent`` pretty-prints."""
    if isinstance(node, Query):
        node = node.root
    if indent is None:
        return _flat(node)
    return _pretty(node, 0, indent)


def _path_of(var: str, path) -> str:
    if not path:
        return var
    return var + format_path(path)


def _flat(expr: Expr) -> str:
    if isinstance(expr, Empty):
        return "()"
    if isinstance(expr, Sequence):
        return "(" + ", ".join(_flat(item) for item in expr.items) + ")"
    if isinstance(expr, Element):
        if isinstance(expr.body, Empty):
            return f"<{expr.tag}/>"
        return f"<{expr.tag}>{{{_flat(expr.body)}}}</{expr.tag}>"
    if isinstance(expr, OpenTag):
        return f"open(<{expr.tag}>)"
    if isinstance(expr, CloseTag):
        return f"close(</{expr.tag}>)"
    if isinstance(expr, TextLiteral):
        return f'text("{expr.content}")'
    if isinstance(expr, VarRef):
        return expr.var
    if isinstance(expr, PathOutput):
        return _path_of(expr.var, expr.path)
    if isinstance(expr, Aggregate):
        return f"{expr.func}({_path_of(expr.var, expr.path)})"
    if isinstance(expr, ForLoop):
        where = f" where {unparse_condition(expr.where)}" if expr.where else ""
        return (
            f"for {expr.var} in {_path_of(expr.source, expr.path)}{where} "
            f"return {_flat(expr.body)}"
        )
    if isinstance(expr, LetBinding):
        return (
            f"let {expr.var} := {_path_of(expr.source, expr.path)} "
            f"return {_flat(expr.body)}"
        )
    if isinstance(expr, IfThenElse):
        return (
            f"if ({unparse_condition(expr.cond)}) "
            f"then {_flat(expr.then_branch)} else {_flat(expr.else_branch)}"
        )
    if isinstance(expr, SignOff):
        return f"signOff({expr.path_str()}, {_role_name(expr.role)})"
    raise TypeError(f"cannot unparse {expr!r}")


def _role_name(role: object) -> str:
    name = getattr(role, "name", None)
    return name if isinstance(name, str) else str(role)


def unparse_condition(cond: Condition) -> str:
    """Render a condition in the paper's surface syntax (Figure 6)."""
    if isinstance(cond, TrueCond):
        return "true()"
    if isinstance(cond, Exists):
        return f"exists({_path_of(cond.var, cond.path)})"
    if isinstance(cond, Comparison):
        return f"{_operand(cond.left)} {cond.op} {_operand(cond.right)}"
    if isinstance(cond, And):
        return f"{_cond_group(cond.left)} and {_cond_group(cond.right)}"
    if isinstance(cond, Or):
        return f"{_cond_group(cond.left)} or {_cond_group(cond.right)}"
    if isinstance(cond, Not):
        return f"not({unparse_condition(cond.operand)})"
    if isinstance(cond, Quantified):
        # Always parenthesized: the satisfies clause parses greedily, so
        # an unwrapped rendering inside ``and``/``or`` would re-parse with
        # the conjunct captured by the quantifier.
        return (
            f"({cond.quantifier} {cond.var} in {_path_of(cond.source, cond.path)} "
            f"satisfies {unparse_condition(cond.inner)})"
        )
    raise TypeError(f"cannot unparse condition {cond!r}")


def _cond_group(cond: Condition) -> str:
    rendered = unparse_condition(cond)
    if isinstance(cond, (And, Or)):
        return f"({rendered})"
    return rendered


def _operand(operand) -> str:
    if isinstance(operand, PathOperand):
        return _path_of(operand.var, operand.path)
    if isinstance(operand, LiteralOperand):
        return f'"{operand.value}"'
    raise TypeError(f"cannot unparse operand {operand!r}")


def _pretty(expr: Expr, depth: int, indent: int) -> str:
    pad = " " * (depth * indent)
    if isinstance(expr, Sequence):
        inner = ",\n".join(_pretty(item, depth + 1, indent) for item in expr.items)
        return f"{pad}(\n{inner}\n{pad})"
    if isinstance(expr, Element) and not isinstance(expr.body, Empty):
        body = _pretty(expr.body, depth + 1, indent)
        return f"{pad}<{expr.tag}>{{\n{body}\n{pad}}}</{expr.tag}>"
    if isinstance(expr, ForLoop):
        where = f" where {unparse_condition(expr.where)}" if expr.where else ""
        body = _pretty(expr.body, depth + 1, indent)
        return (
            f"{pad}for {expr.var} in {_path_of(expr.source, expr.path)}{where} "
            f"return\n{body}"
        )
    if isinstance(expr, IfThenElse):
        then_branch = _pretty(expr.then_branch, depth + 1, indent)
        if isinstance(expr.else_branch, Empty):
            return (
                f"{pad}if ({unparse_condition(expr.cond)}) then\n"
                f"{then_branch}\n{pad}else ()"
            )
        else_branch = _pretty(expr.else_branch, depth + 1, indent)
        return (
            f"{pad}if ({unparse_condition(expr.cond)}) then\n{then_branch}\n"
            f"{pad}else\n{else_branch}"
        )
    return pad + _flat(expr)
