"""Recursive-descent parser for the XQ fragment (Figure 6) and extensions.

The accepted surface syntax is a practical superset of core XQ:

* element constructors ``<a>{ ... }</a>``, ``<a/>``, with literal text and
  multiple enclosed expressions,
* ``for $x in $y/p1/p2/... [where cond] return q`` with multi-step paths
  (the normalizer lowers them to nested single-step loops),
* ``let $y := $x/path return q`` (inlined away by the normalizer),
* absolute paths (``/bib``, ``//item``), which are rooted at ``$root``,
* attribute steps ``@id``, which parse as child steps ``id`` because the
  data model converts attributes to subelements (Section 7),
* conditions with ``exists(...)``, ``not(...)``, ``and``, ``or``, RelOps,
* ``signOff($x/path, r)`` statements, so rewritten queries round-trip.

The parser is scannerless: a cursor over the text with mode-aware helpers,
because XQuery mixes XML constructor syntax with expression syntax.
"""

from __future__ import annotations

from repro.xquery.ast import (
    AGGREGATE_FUNCS,
    Aggregate,
    And,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LetBinding,
    LiteralOperand,
    Not,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    REL_OPS,
    SignOff,
    TextLiteral,
    TrueCond,
    VarRef,
    sequence_of,
)
from repro.xquery.paths import (
    Axis,
    NODE_TEST,
    NodeTest,
    Path,
    STAR_TEST,
    Step,
    TEXT_TEST,
    tag_test,
)

__all__ = ["XQSyntaxError", "parse_query", "parse_expr"]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_KEYWORDS = {
    "for",
    "in",
    "return",
    "if",
    "then",
    "else",
    "where",
    "let",
    "and",
    "or",
    "not",
    "exists",
    "signOff",
    "count",
    "sum",
    "avg",
    "some",
    "every",
    "satisfies",
}


class XQSyntaxError(ValueError):
    """Raised on malformed query text."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position


class _Cursor:
    """A character cursor with the low-level scanning primitives."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- basic inspection ------------------------------------------------

    def error(self, message: str) -> XQSyntaxError:
        return XQSyntaxError(message, self.pos, self.text)

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif text.startswith("(:", self.pos):
                end = text.find(":)", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated comment (: ... :)")
                self.pos = end + 2
            else:
                break

    def peek(self, literal: str) -> bool:
        self.skip_ws()
        return self.text.startswith(literal, self.pos)

    def peek_raw(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def accept(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise self.error(f"expected {literal!r}")

    # -- names, keywords, strings -----------------------------------------

    def peek_name(self) -> str | None:
        self.skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] in _NAME_START:
            end = self.pos
            while end < len(self.text) and self.text[end] in _NAME_CHARS:
                end += 1
            return self.text[self.pos : end]
        return None

    def read_name(self, what: str = "name") -> str:
        name = self.peek_name()
        if name is None:
            raise self.error(f"expected {what}")
        self.pos += len(name)
        return name

    def peek_keyword(self, keyword: str) -> bool:
        return self.peek_name() == keyword

    def accept_keyword(self, keyword: str) -> bool:
        if self.peek_keyword(keyword):
            self.pos += len(keyword)
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise self.error(f"expected keyword {keyword!r}")

    def read_string(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            raise self.error("expected string literal")
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end == -1:
            raise self.error("unterminated string literal")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value

    def read_variable(self) -> str:
        self.skip_ws()
        self.expect("$")
        return "$" + self.read_name("variable name")


class _Parser:
    def __init__(self, text: str) -> None:
        self.cursor = _Cursor(text)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def parse_query(self) -> Query:
        expr = self.parse_expr()
        if not self.cursor.at_end():
            raise self.cursor.error("trailing input after query")
        if isinstance(expr, Element):
            return Query(expr)
        raise self.cursor.error("an XQ query must be a single element constructor")

    def parse_expr(self) -> Expr:
        """Parse a (possibly comma-separated) expression."""
        items = [self.parse_single()]
        while self.cursor.accept(","):
            items.append(self.parse_single())
        if len(items) == 1:
            return items[0]
        return sequence_of(items)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_single(self) -> Expr:
        cur = self.cursor
        cur.skip_ws()
        if cur.peek("("):
            return self.parse_parenthesized()
        if cur.peek("<"):
            return self.parse_constructor()
        if cur.peek("$"):
            return self.parse_variable_expr()
        if cur.peek_keyword("for"):
            return self.parse_for()
        if cur.peek_keyword("let"):
            return self.parse_let()
        if cur.peek_keyword("if"):
            return self.parse_if()
        if cur.peek_keyword("signOff"):
            return self.parse_signoff()
        name = cur.peek_name()
        if name in AGGREGATE_FUNCS:
            return self.parse_aggregate()
        raise cur.error("expected an expression")

    def parse_parenthesized(self) -> Expr:
        cur = self.cursor
        cur.expect("(")
        if cur.accept(")"):
            return Empty()
        expr = self.parse_expr()
        cur.expect(")")
        return expr

    def parse_constructor(self) -> Expr:
        cur = self.cursor
        cur.expect("<")
        tag = cur.read_name("tag name")
        cur.skip_ws()
        if cur.accept("/>"):
            return Element(tag, Empty())
        cur.expect(">")
        body = self.parse_constructor_content(tag)
        return Element(tag, body)

    def parse_constructor_content(self, tag: str) -> Expr:
        """Parse mixed constructor content until ``</tag>``."""
        cur = self.cursor
        items: list[Expr] = []
        while True:
            # Literal character content runs to the next '{' or '<'.
            start = cur.pos
            while cur.pos < len(cur.text) and cur.text[cur.pos] not in "{<":
                cur.pos += 1
            literal = cur.text[start : cur.pos]
            if literal.strip():
                items.append(TextLiteral(literal.strip()))
            if cur.pos >= len(cur.text):
                raise cur.error(f"unterminated constructor <{tag}>")
            if cur.peek_raw("</"):
                cur.pos += 2
                closing = cur.read_name("closing tag name")
                cur.expect(">")
                if closing != tag:
                    raise cur.error(
                        f"mismatched constructor: <{tag}> closed by </{closing}>"
                    )
                return sequence_of(items)
            if cur.text[cur.pos] == "<":
                items.append(self.parse_constructor())
            else:  # '{'
                cur.pos += 1
                items.append(self.parse_expr())
                cur.expect("}")

    def parse_variable_expr(self) -> Expr:
        var = self.cursor.read_variable()
        path = self.parse_relative_path()
        if not path:
            return VarRef(var)
        return PathOutput(var, path)

    def parse_for(self) -> Expr:
        cur = self.cursor
        cur.expect_keyword("for")
        var = cur.read_variable()
        cur.expect_keyword("in")
        source, path = self.parse_path_expr()
        where: Condition | None = None
        if cur.accept_keyword("where"):
            where = self.parse_condition()
        cur.expect_keyword("return")
        body = self.parse_single()
        return ForLoop(var, source, path, body, where)

    def parse_let(self) -> Expr:
        cur = self.cursor
        cur.expect_keyword("let")
        var = cur.read_variable()
        cur.expect(":=")
        source, path = self.parse_path_expr()
        cur.expect_keyword("return")
        body = self.parse_single()
        return LetBinding(var, source, path, body)

    def parse_if(self) -> Expr:
        cur = self.cursor
        cur.expect_keyword("if")
        cond = self.parse_condition()
        cur.expect_keyword("then")
        then_branch = self.parse_single()
        cur.expect_keyword("else")
        else_branch = self.parse_single()
        return IfThenElse(cond, then_branch, else_branch)

    def parse_aggregate(self) -> Expr:
        cur = self.cursor
        func = cur.read_name("aggregate function")
        cur.expect("(")
        var, path = self.parse_path_expr()
        cur.expect(")")
        return Aggregate(func, var, path)

    def parse_signoff(self) -> Expr:
        cur = self.cursor
        cur.expect_keyword("signOff")
        cur.expect("(")
        var = cur.read_variable()
        path = self.parse_relative_path(allow_first=True)
        cur.expect(",")
        role = cur.read_name("role name")
        cur.expect(")")
        return SignOff(var, path, role)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def parse_path_expr(self) -> tuple[str, Path]:
        """Parse ``$x/path`` or an absolute ``/path`` rooted at ``$root``."""
        cur = self.cursor
        cur.skip_ws()
        if cur.peek("$"):
            var = cur.read_variable()
            path = self.parse_relative_path()
            if not path:
                raise cur.error("expected a path after the variable")
            return var, path
        if cur.peek("/"):
            path = self.parse_relative_path()
            if not path:
                raise cur.error("expected an absolute path")
            return "$root", path
        raise cur.error("expected a path expression")

    def parse_relative_path(self, *, allow_first: bool = True) -> Path:
        """Parse zero or more ``/step`` or ``//step`` items."""
        cur = self.cursor
        steps: list[Step] = []
        while True:
            cur.skip_ws()
            if not cur.peek_raw("/"):
                break
            if cur.peek_raw("//"):
                cur.pos += 2
                axis = Axis.DESCENDANT
            else:
                cur.pos += 1
                axis = Axis.CHILD
            steps.append(self.parse_step(axis, allow_first=allow_first))
        return tuple(steps)

    def parse_step(self, axis: Axis, *, allow_first: bool) -> Step:
        cur = self.cursor
        cur.skip_ws()
        if cur.accept("@"):
            # Attribute steps become child steps (attributes are subelements).
            name = cur.read_name("attribute name")
            return self._with_predicate(Step(Axis.CHILD, tag_test(name)), allow_first)
        if cur.accept("*"):
            return self._with_predicate(Step(axis, STAR_TEST), allow_first)
        name = cur.read_name("node test")
        # Explicit axes: child::x, descendant::x, descendant-or-self::x, dos::x.
        if cur.peek_raw("::"):
            cur.pos += 2
            axis = {
                "child": Axis.CHILD,
                "descendant": Axis.DESCENDANT,
                "descendant-or-self": Axis.DOS,
                "dos": Axis.DOS,
            }.get(name)
            if axis is None:
                raise cur.error(f"unknown axis {name!r}")
            return self.parse_step(axis, allow_first=allow_first)
        test = self._finish_test(name)
        return self._with_predicate(Step(axis, test), allow_first)

    def _finish_test(self, name: str) -> NodeTest:
        cur = self.cursor
        if name in ("text", "node") and cur.peek_raw("()"):
            cur.pos += 2
            return TEXT_TEST if name == "text" else NODE_TEST
        return tag_test(name)

    def _with_predicate(self, step: Step, allow_first: bool) -> Step:
        cur = self.cursor
        if cur.peek_raw("["):
            if not allow_first:
                raise cur.error("positional predicates are not allowed here")
            cur.pos += 1
            cur.skip_ws()
            if cur.accept_keyword("last"):
                cur.expect("()")
                cur.expect("]")
                return Step(step.axis, step.test, last=True)
            if cur.accept_keyword("position"):
                cur.expect("()")
                cur.expect("=")
            if not cur.accept("1"):
                raise cur.error("only the predicates [1] and [last()] are supported")
            cur.expect("]")
            return Step(step.axis, step.test, first=True)
        return step

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def parse_condition(self) -> Condition:
        left = self.parse_and_condition()
        while self.cursor.accept_keyword("or"):
            left = Or(left, self.parse_and_condition())
        return left

    def parse_and_condition(self) -> Condition:
        left = self.parse_not_condition()
        while self.cursor.accept_keyword("and"):
            left = And(left, self.parse_not_condition())
        return left

    def parse_not_condition(self) -> Condition:
        cur = self.cursor
        if cur.accept_keyword("not"):
            cur.skip_ws()
            if cur.accept("("):
                operand = self.parse_condition()
                cur.expect(")")
                return Not(operand)
            return Not(self.parse_not_condition())
        return self.parse_atomic_condition()

    def parse_atomic_condition(self) -> Condition:
        cur = self.cursor
        cur.skip_ws()
        if cur.peek_keyword("true"):
            cur.read_name()
            cur.expect("()")
            return TrueCond()
        if cur.accept_keyword("exists"):
            cur.skip_ws()
            parenthesized = cur.accept("(")
            var, path = self.parse_exists_path()
            if parenthesized:
                cur.expect(")")
            return Exists(var, path)
        if cur.peek_keyword("some") or cur.peek_keyword("every"):
            return self.parse_quantified()
        if cur.peek("("):
            # A parenthesized condition.
            cur.expect("(")
            cond = self.parse_condition()
            cur.expect(")")
            return cond
        left = self.parse_operand()
        op = self.parse_relop()
        right = self.parse_operand()
        return Comparison(left, op, right)

    def parse_quantified(self) -> Condition:
        """``some/every $v in $x/path satisfies cond``.

        The satisfies clause parses greedily (XQuery's ExprSingle rule):
        ``some ... satisfies A and B`` quantifies over ``A and B``;
        parenthesize the whole quantifier to bound it.
        """
        cur = self.cursor
        quantifier = cur.read_name("quantifier")
        var = cur.read_variable()
        cur.expect_keyword("in")
        source, path = self.parse_path_expr()
        cur.expect_keyword("satisfies")
        inner = self.parse_condition()
        return Quantified(quantifier, var, source, path, inner)

    def parse_exists_path(self) -> tuple[str, Path]:
        cur = self.cursor
        cur.skip_ws()
        if cur.peek("$"):
            var = cur.read_variable()
            path = self.parse_relative_path()
            if not path:
                raise cur.error("exists requires a path, not a bare variable")
            return var, path
        var, path = self.parse_path_expr()
        return var, path

    def parse_operand(self):
        cur = self.cursor
        cur.skip_ws()
        if cur.peek("$") or cur.peek("/"):
            var, path = self.parse_path_expr()
            return PathOperand(var, path)
        return LiteralOperand(cur.read_string())

    def parse_relop(self) -> str:
        cur = self.cursor
        cur.skip_ws()
        for op in ("<=", ">=", "<", ">", "="):
            if cur.accept(op):
                return op
        raise cur.error(f"expected a comparison operator {REL_OPS}")


def parse_query(text: str) -> Query:
    """Parse a complete XQ query (an element constructor)."""
    return _Parser(text).parse_query()


def parse_expr(text: str) -> Expr:
    """Parse a standalone XQ expression (useful in tests)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    if not parser.cursor.at_end():
        raise parser.cursor.error("trailing input after expression")
    return expr
