"""XPath steps and relative paths for the XQ fragment.

The paper's path language (Sections 2 and 3) consists of location steps
``axis::x[p]`` where the axis is ``child``, ``descendant`` or
``descendant-or-self`` (abbreviated ``dos``), the node test ``x`` is a tag
name, ``*`` (any element), ``text()`` or the wildcard ``node()``, and the
predicate ``p`` is either ``true`` (omitted) or ``position() = 1`` (written
``[1]``), used for existence checks where only the first witness matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "Axis",
    "NodeTest",
    "Step",
    "Path",
    "child",
    "descendant",
    "dos_node",
    "format_path",
    "TAG",
    "STAR",
    "TEXT",
    "NODE",
]


class Axis(enum.Enum):
    """The XPath axes of the fragment (forward axes only, cf. [15])."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DOS = "descendant-or-self"

    def __str__(self) -> str:
        return self.value


class TestKind(enum.Enum):
    TAG = "tag"
    STAR = "star"
    TEXT = "text"
    NODE = "node"


TAG = TestKind.TAG
STAR = TestKind.STAR
TEXT = TestKind.TEXT
NODE = TestKind.NODE


@dataclass(frozen=True, slots=True)
class NodeTest:
    """A node test: a tag name, ``*``, ``text()`` or ``node()``."""

    kind: TestKind
    name: str | None = None

    def __post_init__(self) -> None:
        if (self.kind is TestKind.TAG) != (self.name is not None):
            raise ValueError("tag tests carry a name; others must not")

    def matches_element(self, tag: str) -> bool:
        """Does this test accept an element labeled ``tag``?"""
        if self.kind is TestKind.TAG:
            return self.name == tag
        return self.kind in (TestKind.STAR, TestKind.NODE)

    def matches_text(self) -> bool:
        """Does this test accept a text node?"""
        return self.kind in (TestKind.TEXT, TestKind.NODE)

    def overlaps(self, other: "NodeTest") -> bool:
        """Can some node satisfy both tests?  Used by preservation checks."""
        if self.kind is TestKind.TEXT:
            return other.matches_text()
        if other.kind is TestKind.TEXT:
            return self.matches_text()
        if self.kind is TestKind.TAG and other.kind is TestKind.TAG:
            return self.name == other.name
        return True

    def contains(self, other: "NodeTest") -> bool:
        """Does every node matched by ``other`` also match ``self``?"""
        if self.kind is TestKind.NODE:
            return True
        if self.kind is TestKind.STAR:
            return other.kind in (TestKind.STAR, TestKind.TAG)
        if self.kind is TestKind.TEXT:
            return other.kind is TestKind.TEXT
        return other.kind is TestKind.TAG and other.name == self.name

    def __str__(self) -> str:
        if self.kind is TestKind.TAG:
            return self.name or ""
        if self.kind is TestKind.STAR:
            return "*"
        if self.kind is TestKind.TEXT:
            return "text()"
        return "node()"


def tag_test(name: str) -> NodeTest:
    return NodeTest(TestKind.TAG, name)


STAR_TEST = NodeTest(TestKind.STAR)
TEXT_TEST = NodeTest(TestKind.TEXT)
NODE_TEST = NodeTest(TestKind.NODE)


@dataclass(frozen=True, slots=True)
class Step:
    """A location step ``axis::test`` with an optional positional predicate.

    ``first`` is the paper's ``[1]`` (also written ``[position()=1]``);
    ``last`` is the ``[last()]`` counterpart added with the fragment
    widening.  They are mutually exclusive at parse time.
    """

    axis: Axis
    test: NodeTest
    first: bool = False
    last: bool = False

    def __str__(self) -> str:
        suffix = "[1]" if self.first else "[last()]" if self.last else ""
        if self.axis is Axis.CHILD:
            return f"{self.test}{suffix}"
        if self.axis is Axis.DESCENDANT:
            return f"descendant::{self.test}{suffix}"
        return f"dos::{self.test}{suffix}"

    def without_first(self) -> "Step":
        return Step(self.axis, self.test, last=self.last) if self.first else self


Path = tuple[Step, ...]


def child(test: NodeTest | str, *, first: bool = False) -> Step:
    """Construct a ``child`` axis step (string arguments become tag tests)."""
    return Step(Axis.CHILD, _coerce(test), first)


def descendant(test: NodeTest | str, *, first: bool = False) -> Step:
    """Construct a ``descendant`` axis step."""
    return Step(Axis.DESCENDANT, _coerce(test), first)


def dos_node() -> Step:
    """The ``dos::node()`` step that keeps whole subtrees."""
    return Step(Axis.DOS, NODE_TEST)


def _coerce(test: NodeTest | str) -> NodeTest:
    if isinstance(test, NodeTest):
        return test
    if test == "*":
        return STAR_TEST
    if test == "text()":
        return TEXT_TEST
    if test == "node()":
        return NODE_TEST
    return tag_test(test)


def format_path(steps: Iterable[Step], *, leading_slash: bool = True) -> str:
    """Render a path the way the paper does, e.g. ``/title/dos::node()``."""
    rendered = "/".join(str(step) for step in steps)
    return ("/" + rendered) if leading_slash else rendered
