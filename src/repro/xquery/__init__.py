"""The XQ query language: AST, parser, normalization, if-pushdown.

This subpackage implements Section 3 of the paper: the composition-free
XQuery fragment XQ (Figure 6), its sequential semantics, the normalization
rewritings that bring practical queries into the fragment, and the
if-pushdown rules of Figure 7.
"""

from repro.xquery.ast import (
    And,
    CloseTag,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LetBinding,
    LiteralOperand,
    Not,
    OpenTag,
    Or,
    PathOperand,
    PathOutput,
    Query,
    ROOT_VAR,
    Sequence,
    SignOff,
    TextLiteral,
    TrueCond,
    VarRef,
    sequence_of,
)
from repro.xquery.ifpushdown import push_ifs_down, push_ifs_down_query
from repro.xquery.normalize import NormalizationError, normalize, validate_core
from repro.xquery.parser import XQSyntaxError, parse_expr, parse_query
from repro.xquery.paths import Axis, NodeTest, Path, Step, child, descendant, dos_node
from repro.xquery.semantics import (
    QueryVariables,
    ScopeError,
    VariableInfo,
    analyze_variables,
)
from repro.xquery.unparse import unparse, unparse_condition

__all__ = [
    # paths
    "Axis",
    "NodeTest",
    "Step",
    "Path",
    "child",
    "descendant",
    "dos_node",
    # ast
    "Expr",
    "Empty",
    "Sequence",
    "Element",
    "OpenTag",
    "CloseTag",
    "TextLiteral",
    "VarRef",
    "PathOutput",
    "ForLoop",
    "LetBinding",
    "IfThenElse",
    "SignOff",
    "Condition",
    "TrueCond",
    "Exists",
    "Comparison",
    "PathOperand",
    "LiteralOperand",
    "And",
    "Or",
    "Not",
    "Query",
    "ROOT_VAR",
    "sequence_of",
    # parser / printer
    "parse_query",
    "parse_expr",
    "XQSyntaxError",
    "unparse",
    "unparse_condition",
    # rewriting
    "normalize",
    "validate_core",
    "NormalizationError",
    "push_ifs_down",
    "push_ifs_down_query",
    # semantics
    "analyze_variables",
    "QueryVariables",
    "VariableInfo",
    "ScopeError",
]
