"""The GCX engine: pull-based evaluator over the managed buffer.

Layer map (Figure 11): :mod:`repro.engine.evaluator` interprets the
rewritten query, pulling input on demand and yielding output tokens;
:mod:`repro.engine.session` packages compile-once/run-many sessions with
incremental output; :mod:`repro.engine.multi` evaluates N compiled
queries in a single shared document scan; :mod:`repro.engine.pool` serves
compiled queries to many concurrent clients; :mod:`repro.engine.gcx` is
the user-facing engine.
"""

from repro.engine.evaluator import EvaluationError, Evaluator
from repro.engine.gcx import GCXEngine
from repro.engine.multi import MultiQuerySession, MultiRunStats, MultiStreamingRun
from repro.engine.pool import PoolResult, PoolStats, SessionPool
from repro.engine.session import (
    EngineOptions,
    QuerySession,
    RunResult,
    StreamingRun,
    check_safety,
)

__all__ = [
    "Evaluator",
    "EvaluationError",
    "GCXEngine",
    "EngineOptions",
    "RunResult",
    "QuerySession",
    "MultiQuerySession",
    "MultiRunStats",
    "MultiStreamingRun",
    "SessionPool",
    "PoolResult",
    "PoolStats",
    "StreamingRun",
    "check_safety",
]
