"""The GCX engine: pull-based evaluator over the managed buffer."""

from repro.engine.evaluator import EvaluationError, Evaluator
from repro.engine.gcx import EngineOptions, GCXEngine, RunResult

__all__ = ["Evaluator", "EvaluationError", "GCXEngine", "EngineOptions", "RunResult"]
