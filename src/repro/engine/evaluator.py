"""The pull-based query evaluator (Sections 5 and 6, Figure 11).

The evaluator interprets the rewritten query strictly sequentially.  When it
needs data that is not yet buffered — binding the next node of a for-loop,
deciding a condition, serializing an output subtree — it blocks and asks the
buffer manager for input, which in turn drives the stream preprojector one
token at a time.  When it encounters a signOff statement it notifies the
buffer manager, which performs the role update and invokes active garbage
collection (Figure 10).

The interpreter is written as a *generator* of output tokens:
:meth:`Evaluator.iter_tokens` lazily yields each output token the moment the
query semantics determine it, interleaved with the demand-driven input
reads.  This is what makes the engine incremental on the output side — a
consumer holding the generator receives the first result fragment as soon
as the first match is decided, long before the input stream is exhausted.
:meth:`Evaluator.run` is the buffered wrapper: it drains the generator into
the configured :class:`~repro.xmlio.serialize.TokenSink`.

Iteration discipline: for-loop cursors remember the sequence number of the
last binding and rescan from the context node, so garbage collection may
purge already-processed siblings without invalidating iteration.  Nodes
marked deleted are transparent: they are never yielded (they are logically
absent) but are traversed, because unfinished marked nodes may still gain
relevant descendants.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

from repro.analysis.roles import Role
from repro.buffer.buffer import BufferTree
from repro.buffer.node import BufferNode, DOC, ELEMENT, TEXT
from repro.engine.relops.aggregates import accumulable, format_number
from repro.engine.relops.hashjoin import JoinIndex, canon_key
from repro.stream.preprojector import StreamPreprojector
from repro.xmlio.serialize import TokenSink
from repro.xmlio.tokens import EndTag, StartTag, Text, Token
from repro.xquery.ast import (
    Aggregate,
    And,
    CloseTag,
    Comparison,
    Condition,
    Element,
    Empty,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    LiteralOperand,
    Not,
    OpenTag,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    ROOT_VAR,
    Sequence,
    SignOff,
    TextLiteral,
    TrueCond,
    VarRef,
)
from repro.xquery.paths import Axis, Path, Step, dos_node

__all__ = ["Evaluator", "EvaluationError"]

_DOS_STEP = dos_node()

Env = dict[str, BufferNode]


class EvaluationError(RuntimeError):
    """Raised when evaluation hits an inconsistent state."""


class Evaluator:
    """Sequential evaluation of a rewritten XQ query over the buffer."""

    def __init__(
        self,
        query: Query,
        buffer: BufferTree,
        preprojector: StreamPreprojector,
        sink: TokenSink | None = None,
        *,
        aggregate_roles: bool = True,
        execute_signoffs: bool = True,
        eager_leaf_bindings: bool = False,
        earliness_sites: "frozenset[tuple[str, Path]] | None" = None,
        single_match_loops: "frozenset[str] | None" = None,
        join_plan: "object | None" = None,
        on_event: Callable[[str], None] | None = None,
    ) -> None:
        self.query = query
        self.buffer = buffer
        self.preprojector = preprojector
        self.sink = sink
        self.aggregate = aggregate_roles
        self.execute_signoffs = execute_signoffs
        self.on_event = on_event
        # Decided-watermark plan (docs/EARLINESS.md).  ``earliness_sites``
        # holds the (var, path) output sites whose ``open`` watermark lets
        # the subtree stream out as tokens arrive; ``None`` disables the
        # pass entirely (conservative emission, no first-witness
        # short-circuit), which is what direct constructions in tests get.
        self._early_sites = earliness_sites
        self._earliness = earliness_sites is not None
        # Schema-certified at-most-once loops (trusted mode only): the
        # session passes these exclusively under trust_schema=True.
        self._single_match = single_match_loops or frozenset()
        # Compile-time join plan (repro.analysis.joinplan): loops it names
        # dispatch to the hash build/probe path instead of re-evaluating
        # the equi-condition per binding pair.  Indexes are cached per
        # (loop, context) and evicted via the buffer's purge listener.
        self._join_plan = join_plan
        self._join_indexes: dict[tuple[int, int], JoinIndex] = {}
        self._join_listener_installed = False
        # Push-based engines (the flux-like baseline) cannot short-circuit
        # within a binding: by the time they may emit, the binding's subtree
        # has streamed through their buffers.  Model this by reading leaf
        # for-loop bindings (loops without nested loops) to their closing
        # tag before evaluating the body.
        self._eager_loops: set[int] = set()
        if eager_leaf_bindings:
            from repro.xquery.ast import walk

            for node in walk(query.root):
                if isinstance(node, ForLoop) and not any(
                    isinstance(sub, ForLoop)
                    for sub in walk(node.body)
                ):
                    self._eager_loops.add(id(node))

    # ------------------------------------------------------------------

    def run(self) -> None:
        """Evaluate to completion, pushing every output token into the sink.

        The buffered entry point: equivalent to draining
        :meth:`iter_tokens`, kept for callers that provide a
        :class:`~repro.xmlio.serialize.TokenSink` up front.
        """
        if self.sink is None:
            raise EvaluationError("run() requires a sink; use iter_tokens()")
        for token in self.iter_tokens():
            self.sink.write(token)

    def iter_tokens(self) -> Iterator[Token]:
        """Lazily evaluate the query, yielding output tokens as decided.

        Input is consumed on demand between yields, so the consumer
        controls the pace of the whole Figure 11 pipeline: not pulling the
        next token means not reading more input.
        """
        env: Env = {ROOT_VAR: self.buffer.document}
        yield from self._eval(self.query.root, env)

    # ------------------------------------------------------------------
    # expression dispatch
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, env: Env) -> Iterator[Token]:
        if isinstance(expr, Empty):
            return
        if isinstance(expr, Sequence):
            for item in expr.items:
                yield from self._eval(item, env)
            return
        if isinstance(expr, Element):
            yield StartTag(expr.tag)
            yield from self._eval(expr.body, env)
            yield EndTag(expr.tag)
            return
        if isinstance(expr, OpenTag):
            yield StartTag(expr.tag)
            return
        if isinstance(expr, CloseTag):
            yield EndTag(expr.tag)
            return
        if isinstance(expr, TextLiteral):
            yield Text(expr.content)
            return
        if isinstance(expr, VarRef):
            if self._early_sites is not None and (expr.var, ()) in self._early_sites:
                yield from self._output_streaming(env[expr.var])
            else:
                yield from self._output_subtree(env[expr.var])
            return
        if isinstance(expr, PathOutput):
            early = (
                self._early_sites is not None
                and (expr.var, expr.path) in self._early_sites
            )
            for node in self._iter_path(env[expr.var], expr.path):
                if early:
                    yield from self._output_streaming(node)
                else:
                    yield from self._output_subtree(node)
            return
        if isinstance(expr, ForLoop):
            context = env[expr.source]
            step = expr.path[0] if len(expr.path) == 1 else None
            if step is None:
                raise EvaluationError("for-loops must be single-step at runtime")
            eager = id(expr) in self._eager_loops
            if (
                self._join_plan is not None
                and not eager
                and expr.var not in self._single_match
            ):
                site = self._join_plan.site_for(expr)
                if site is not None:
                    yield from self._eval_hash_join(expr, site, env)
                    return
            nodes = self._iter_step(context, step)
            if expr.var in self._single_match:
                # at-most-once watermark (docs/EARLINESS.md): the schema
                # proves a second match cannot occur, so do not drain the
                # binding scanning for one.
                nodes = itertools.islice(nodes, 1)
            for node in nodes:
                if eager:
                    self._ensure_finished(node)
                env[expr.var] = node
                yield from self._eval(expr.body, env)
            env.pop(expr.var, None)
            return
        if isinstance(expr, IfThenElse):
            if self._eval_condition(expr.cond, env):
                yield from self._eval(expr.then_branch, env)
            else:
                yield from self._eval(expr.else_branch, env)
            return
        if isinstance(expr, Aggregate):
            yield from self._eval_aggregate(expr, env)
            return
        if isinstance(expr, SignOff):
            if self.execute_signoffs:
                self._execute_signoff(env[expr.var], expr.path, expr.role)
            return
        raise EvaluationError(f"cannot evaluate {expr!r}")

    # ------------------------------------------------------------------
    # relational operators (repro.engine.relops)
    # ------------------------------------------------------------------

    def _eval_aggregate(self, expr: Aggregate, env: Env) -> Iterator[Token]:
        """Emit the aggregate's value for the current binding.

        Accumulable paths read the O(1) state the projection lane's
        :class:`~repro.engine.relops.aggregates.AccumulatorRuntime`
        maintained on the anchor node — nothing below the anchor was
        buffered for it.  Positional paths (``[1]``/``[last()]``) navigate
        their buffered dependency subtree instead.
        """
        anchor = env[expr.var]
        self._ensure_finished(anchor)
        if accumulable(expr.path):
            state = anchor.acc.get((expr.var, expr.path)) if anchor.acc else None
            if state is None:
                raise EvaluationError(
                    f"no accumulator state for {expr.func}() on {expr.var}: "
                    "the run was built without an AccumulatorRuntime"
                )
            count, total, numeric_n = state
        else:
            count, total, numeric_n = 0, 0.0, 0
            for node in self._iter_path(anchor, expr.path):
                count += 1
                if expr.func != "count":
                    self._ensure_finished(node)
                    try:
                        value = float(node.string_value())
                    except ValueError:
                        continue
                    total += value
                    numeric_n += 1
        if expr.func == "count":
            yield Text(str(count))
        elif expr.func == "sum":
            yield Text(format_number(total))
        elif numeric_n:  # avg of an empty/non-numeric sequence emits nothing
            yield Text(format_number(total / numeric_n))

    def _eval_hash_join(self, expr: ForLoop, site, env: Env) -> Iterator[Token]:
        """Probe the loop's equi-join index instead of nested re-testing.

        Byte-identical to the nested loop: probe results come back in
        document order, the gate condition is true for exactly the
        returned bindings (``canon_key`` mirrors ``=``), and the gated
        body — which produces nothing for non-matching bindings — is
        evaluated per match with its own condition checks intact.
        """
        context = env[expr.source]
        index = self._join_index(expr, site, context)
        stats = self.buffer.stats
        keys = set()
        for node in self._iter_path(env[site.outer_var], site.outer_path):
            self._ensure_finished(node)
            keys.add(canon_key(node.string_value()))
        stats.join_probes += 1
        matches = index.probe(keys) if keys else []
        stats.join_probe_hits += len(matches)
        for node in matches:
            env[expr.var] = node
            yield from self._eval(site.body, env)
        env.pop(expr.var, None)

    def _join_index(self, expr: ForLoop, site, context: BufferNode) -> JoinIndex:
        cache_key = (id(expr), context.seq)
        index = self._join_indexes.get(cache_key)
        if index is not None:
            return index
        # Build over the finished context: every binding the nested loop
        # would ever see is buffered (or already purged/marked — which the
        # nested loop would skip too).
        self._ensure_finished(context)
        index = JoinIndex()
        stats = self.buffer.stats
        for node in self._buffered_step(context, expr.path[0]):
            keys = set()
            for target in self._iter_path(node, site.inner_path):
                keys.add(canon_key(target.string_value()))
            if not keys:
                # No key values: the equi-condition is false for every
                # probe, exactly as the nested loop would decide.
                continue
            stats.join_keys += index.add(node, keys)
        stats.join_indexes_built += 1
        self._join_indexes[cache_key] = index
        if not self._join_listener_installed:
            self.buffer.add_purge_listener(self._on_join_purge)
            self._join_listener_installed = True
        return index

    def _on_join_purge(self, node: BufferNode) -> None:
        for index in self._join_indexes.values():
            index.evict(node.seq)

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def _eval_condition(self, cond: Condition, env: Env) -> bool:
        if isinstance(cond, TrueCond):
            return True
        if isinstance(cond, Exists):
            for _node in self._iter_path(env[cond.var], cond.path):
                return True
            return False
        if isinstance(cond, Comparison):
            return self._eval_comparison(cond, env)
        if isinstance(cond, And):
            return self._eval_condition(cond.left, env) and self._eval_condition(
                cond.right, env
            )
        if isinstance(cond, Or):
            return self._eval_condition(cond.left, env) or self._eval_condition(
                cond.right, env
            )
        if isinstance(cond, Not):
            return not self._eval_condition(cond.operand, env)
        if isinstance(cond, Quantified):
            some = cond.quantifier == "some"
            for witness in self._iter_path(env[cond.source], cond.path):
                env[cond.var] = witness
                try:
                    holds = self._eval_condition(cond.inner, env)
                finally:
                    env.pop(cond.var, None)
                if some:
                    if holds:
                        return True
                elif not holds:
                    return False
            return not some  # some over nothing: False; every: vacuously True
        raise EvaluationError(f"cannot evaluate condition {cond!r}")

    def _eval_comparison(self, cond: Comparison, env: Env) -> bool:
        """General comparison: existential over both operand sequences."""
        if self._earliness:
            return self._eval_comparison_early(cond, env)
        left_values = list(self._operand_values(cond.left, env))
        if not left_values:
            return False
        for right_value in self._operand_values(cond.right, env):
            for left_value in left_values:
                if _compare(left_value, cond.op, right_value):
                    return True
        return False

    def _eval_comparison_early(self, cond: Comparison, env: Env) -> bool:
        """First-witness comparison (the earliness pass's second watermark).

        A comparison is existential, so it is *decided true* at the first
        witnessing pair: no future token can flip it.  Iterating the
        operands lazily and returning at that witness means a satisfied
        condition stops pulling input immediately — the conservative
        version above materializes the left operand, which drags the scan
        to the end of the binding's subtree (every ``_iter_children``
        cursor runs until its context is finished).  A false result still
        drains both operands, exactly like the conservative path, so the
        boolean — and therefore the output — is identical either way.
        """
        left_iter = self._operand_values(cond.left, env)
        left_values: list[str] = []
        for right_value in self._operand_values(cond.right, env):
            for left_value in left_values:
                if _compare(left_value, cond.op, right_value):
                    return True
            for left_value in left_iter:
                left_values.append(left_value)
                if _compare(left_value, cond.op, right_value):
                    return True
        return False

    def _operand_values(self, operand, env: Env) -> Iterator[str]:
        if isinstance(operand, LiteralOperand):
            yield operand.value
            return
        assert isinstance(operand, PathOperand)
        for node in self._iter_path(env[operand.var], operand.path):
            self._ensure_finished(node)
            yield node.string_value()

    # ------------------------------------------------------------------
    # path iteration with demand-driven input
    # ------------------------------------------------------------------

    def _iter_path(self, context: BufferNode, path: Path) -> Iterator[BufferNode]:
        """All nodes reachable from ``context`` via ``path``, document order
        per step (descendant steps in multi-step paths may revisit nodes,
        which is harmless for the existential conditions that use them)."""
        if not path:
            yield context
            return
        step, rest = path[0], path[1:]
        if step.last:
            # [last()]: drain the step (the scan pulls input until the
            # context is finished), then continue from the final match.
            final: BufferNode | None = None
            for node in self._iter_step(context, step):
                final = node
            if final is not None:
                yield from self._iter_path(final, rest)
            return
        if step.first:
            # [1]: the witness is the first match in *document* order, not
            # the first still-buffered one — navigate through the record
            # the projection lane pinned at the witness's arrival.
            witness = self._first_witness(context, step)
            if witness is not None:
                yield from self._iter_path(witness, rest)
            return
        for node in self._iter_step(context, step):
            yield from self._iter_path(node, rest)

    def _first_witness(
        self, context: BufferNode, step: Step
    ) -> BufferNode | None:
        """The [1] witness of ``step`` below ``context``, pulling on demand.

        The projection lane records the witness at the arrival that
        consumed the step's first-witness transition, so a missing record
        means no match has streamed yet: keep pulling until it appears or
        the context finishes without one.  A recorded witness that was
        dropped or garbage-collected yields nothing — rebinding the [1] to
        the first still-buffered match would step into a later sibling's
        subtree and read another binding's data.
        """
        while True:
            witness = self._buffered_witness(context, step)
            if witness is not None:
                return witness
            table = context.witnesses
            if table is not None and step in table:
                return None  # witness recorded but dropped or collected
            if context.finished:
                return None
            if not self.preprojector.pull():
                return None

    def _buffered_witness(
        self, context: BufferNode, step: Step
    ) -> BufferNode | None:
        """The recorded [1] witness, if it is still live in the buffer."""
        table = context.witnesses
        rec = table.get(step) if table is not None else None
        if rec is None:
            return None
        node, seq = rec
        if (
            node is None
            or node.seq != seq  # recycled: the witness was purged
            or node.parent is None
            or node.marked_deleted
        ):
            return None
        return node

    def _iter_step(self, context: BufferNode, step: Step) -> Iterator[BufferNode]:
        if step.axis is Axis.CHILD:
            yield from self._iter_children(context, step)
        elif step.axis is Axis.DESCENDANT:
            yield from self._iter_descendants(context, step)
        else:  # DOS: self and descendants
            if _matches(context, step, self.buffer):
                yield context
            yield from self._iter_descendants(context, step)

    def _iter_children(self, context: BufferNode, step: Step) -> Iterator[BufferNode]:
        last_seq = -1
        while True:
            found: BufferNode | None = None
            child = context.first_child
            while child is not None:
                if (
                    child.seq > last_seq
                    and not child.marked_deleted
                    and _matches(child, step, self.buffer)
                ):
                    found = child
                    break
                child = child.next_sibling
            if found is not None:
                last_seq = found.seq
                yield found
                continue
            if context.finished:
                return
            if not self.preprojector.pull():
                return

    def _iter_descendants(
        self, context: BufferNode, step: Step
    ) -> Iterator[BufferNode]:
        last_seq = -1
        while True:
            found = self._scan_descendants(context, step, last_seq)
            if found is not None:
                last_seq = found.seq
                yield found
                continue
            if context.finished:
                return
            if not self.preprojector.pull():
                return

    def _scan_descendants(
        self, context: BufferNode, step: Step, last_seq: int
    ) -> BufferNode | None:
        """First descendant (document order) with seq > last_seq matching."""
        child = context.first_child
        while child is not None:
            if not child.marked_deleted:
                if child.seq > last_seq and _matches(child, step, self.buffer):
                    return child
                found = self._scan_descendants(child, step, last_seq)
                if found is not None:
                    return found
            child = child.next_sibling
        return None

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def _output_subtree(self, node: BufferNode) -> Iterator[Token]:
        self._ensure_finished(node)
        yield from self._serialize(node)

    def _serialize(self, node: BufferNode) -> Iterator[Token]:
        stats = self.buffer.stats
        stats.tokens_held_before_emit += stats.tokens_read - node.born_tokens
        if node.kind == TEXT:
            yield Text(node.text)
            return
        if node.kind == DOC:
            raise EvaluationError("cannot output the document node")
        # Interned per-tag tokens from the buffer's symbol table: emitting a
        # subtree allocates no tag objects (docs/PERFORMANCE.md).
        buffer = self.buffer
        yield buffer.start_token(node.tag_id)
        child = node.first_child
        while child is not None:
            if not child.marked_deleted:
                yield from self._serialize(child)
            child = child.next_sibling
        yield buffer.end_token(node.tag_id)

    def _output_streaming(self, node: BufferNode) -> Iterator[Token]:
        """Emit an ``open``-watermark site as its tokens arrive.

        The static certificate (an aggregate dep role on the target) is
        re-checked on the concrete buffer node: under trusted-schema
        pruning or a cancellation racing the node's arrival the cover may
        be absent, and then the conservative path is the only sound one.
        The check is purely structural — it never consults schema facts —
        so streaming stays sound on schema-violating documents.
        """
        if node.finished or node.kind != ELEMENT or not self._aggregate_covered(node):
            yield from self._output_subtree(node)
            return
        self.buffer.stats.early_flushes += 1
        yield from self._stream_node(node)

    def _aggregate_covered(self, node: BufferNode) -> bool:
        current: BufferNode | None = node
        while current is not None:
            if current.aggregate_roles:
                return True
            current = current.parent
        return False

    def _stream_node(self, node: BufferNode) -> Iterator[Token]:
        """Serialize ``node`` in arrival order, pulling input as needed.

        Sound because the aggregate cover freezes the region: every
        arriving descendant is preserved (``_maybe_buffer`` keeps covered
        nodes even when cancelled), ``collect_from`` skips covered nodes
        before marking, ``finish`` never purges them, children only ever
        append, and no signoff runs while one output expression is being
        emitted — so arrival order *is* the final serialization order.
        """
        stats = self.buffer.stats
        stats.tokens_held_before_emit += stats.tokens_read - node.born_tokens
        if node.kind == TEXT:
            yield Text(node.text)
            return
        buffer = self.buffer
        yield buffer.start_token(node.tag_id)
        last: BufferNode | None = None
        while True:
            nxt = node.first_child if last is None else last.next_sibling
            if nxt is None:
                if node.finished:
                    break
                if not self.preprojector.pull():
                    raise EvaluationError("input exhausted with an unfinished node")
                continue
            last = nxt
            if not nxt.marked_deleted:
                yield from self._stream_node(nxt)
        yield buffer.end_token(node.tag_id)

    def _ensure_finished(self, node: BufferNode) -> None:
        while not node.finished:
            if not self.preprojector.pull():
                # The final pull is the one that marks the document node
                # finished, so re-check before declaring the input short.
                if node.finished:
                    return
                raise EvaluationError("input exhausted with an unfinished node")

    # ------------------------------------------------------------------
    # signOff execution (Figure 10's entry point)
    # ------------------------------------------------------------------

    def _execute_signoff(self, binding: BufferNode, path: Path, role) -> None:
        if not isinstance(role, Role):
            raise EvaluationError(
                f"signOff role {role!r} was not resolved by static analysis"
            )
        self.buffer.stats.signoffs_executed += 1
        aggregate = False
        match_path = path
        if self.aggregate and path and path[-1] == _DOS_STEP:
            match_path = path[:-1]
            aggregate = True
        for node, count in self._match_path_counts(binding, match_path).items():
            self.buffer.remove_role(node, role, count, aggregate=aggregate)
        if self.on_event is not None:
            self.on_event(f"signOff path={match_path} role={role.name}")
        # Future arrivals inside the unfinished region must not keep the role.
        if not binding.finished and match_path:
            self.buffer.register_cancellation(
                binding, match_path, role, aggregate=aggregate
            )

    def _match_path_counts(
        self, binding: BufferNode, path: Path
    ) -> dict[BufferNode, int]:
        """Nodes reachable via ``path`` with embedding counts (multiset P)."""
        positions: dict[BufferNode, int] = {binding: 1}
        for step in path:
            next_positions: dict[BufferNode, int] = {}
            for node, count in positions.items():
                if step.first:
                    # The recorded document-order witness, never the first
                    # buffered match (see _first_witness).
                    witness = self._buffered_witness(node, step)
                    targets: Iterator[BufferNode] | list[BufferNode] = (
                        [] if witness is None else [witness]
                    )
                else:
                    targets = self._buffered_step(node, step)
                for target in targets:
                    next_positions[target] = next_positions.get(target, 0) + count
            positions = next_positions
            if not positions:
                break
        return positions

    def _buffered_step(self, node: BufferNode, step: Step) -> Iterator[BufferNode]:
        """Step evaluation on buffered data only (signOff never pulls)."""
        if step.axis is Axis.CHILD:
            child = node.first_child
            while child is not None:
                if not child.marked_deleted and _matches(child, step, self.buffer):
                    yield child
                child = child.next_sibling
        elif step.axis is Axis.DESCENDANT:
            yield from self._buffered_descendants(node, step)
        else:  # DOS
            if _matches(node, step, self.buffer):
                yield node
            yield from self._buffered_descendants(node, step)

    def _buffered_descendants(
        self, node: BufferNode, step: Step
    ) -> Iterator[BufferNode]:
        child = node.first_child
        while child is not None:
            if not child.marked_deleted:
                if _matches(child, step, self.buffer):
                    yield child
                yield from self._buffered_descendants(child, step)
            child = child.next_sibling


# ---------------------------------------------------------------------------


def _matches(node: BufferNode, step: Step, buffer: BufferTree) -> bool:
    if node.kind == TEXT:
        return step.test.matches_text()
    if node.kind == ELEMENT:
        return step.test.matches_element(buffer.tag_name(node.tag_id))
    return False


def _compare(left: str, op: str, right: str) -> bool:
    """Numeric comparison when both operands parse as numbers, else string.

    The paper's grammar compares against string literals; XMark Q20's income
    brackets need numeric order, matching how untyped atomics compare in
    practice.
    """
    try:
        left_key: object = float(left)
        right_key: object = float(right)
    except ValueError:
        left_key, right_key = left, right
    if op == "=":
        return left_key == right_key
    if op == "<":
        return left_key < right_key
    if op == "<=":
        return left_key <= right_key
    if op == ">":
        return left_key > right_key
    if op == ">=":
        return left_key >= right_key
    raise EvaluationError(f"unknown operator {op!r}")
