"""The multi-query shared-stream engine: N queries, one document scan.

A :class:`~repro.engine.pool.SessionPool` amortizes *compilation* across
requests, but serving K standing queries over the same document still
costs K full parses — on a single core the dominant cost.
:class:`MultiQuerySession` kills that: it evaluates N compiled queries in
a *single* token pass.  The document is tokenized exactly once; a
:class:`~repro.stream.shared.SharedPreprojector` routes each surviving
token to the subset of per-query lanes whose membership bitmask still
includes it (the dynamic form of the union projection tree's static
masks, :mod:`repro.analysis.union_tree`).

Everything per-query is reused from the single-query engine, unchanged:

* each query gets its own :class:`~repro.engine.session.QuerySession`
  (compile-once artifacts, warm lazy-DFA matcher, recycled buffers),
* each in-flight evaluation is an ordinary
  :class:`~repro.engine.session.StreamingRun` owned by its session, so
  the release-guard machinery applies verbatim — a crashed or abandoned
  multi-run cannot leak a single buffer checkout,
* strict safety (:func:`~repro.engine.session.check_safety`) holds per
  query: role accounting balances lane by lane.

Single-query evaluation is literally the N=1 case of this path: a
:class:`~repro.stream.preprojector.StreamPreprojector` is one pump
driving one :class:`~repro.stream.preprojector.ProjectionLane`; this
module drives N lanes from one pump.

A shared-pass aggregate accountant (via the
:attr:`~repro.buffer.stats.BufferStats.accountant` hook) observes every
lane's buffer, so :class:`MultiRunStats` reports the *combined* residency
peak of the whole pass — the multi-query analogue of the paper's per-run
buffer high watermark.

Like :class:`~repro.engine.session.QuerySession`, a multi session is a
single-client object; use :meth:`~repro.engine.pool.SessionPool.map_multi`
to fan a multi-query workload over pool workers.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.analysis.compile import CompiledQuery
from repro.analysis.schema import Schema
from repro.analysis.union_tree import UnionProjection, build_union_projection
from repro.engine.evaluator import Evaluator
from repro.engine.session import (
    EngineOptions,
    QuerySession,
    RunResult,
    StreamingRun,
    build_accumulators,
    document_tokens,
    earliness_sites,
    single_match_loops,
)
from repro.stream.preprojector import ProjectionLane
from repro.stream.shared import SharedPreprojector
from repro.xmlio.serialize import StringSink, TokenSink
from repro.xmlio.tokens import Token
from repro.xquery.ast import Query

__all__ = ["MultiQuerySession", "MultiRunStats", "MultiStreamingRun"]


@dataclass(frozen=True)
class MultiRunStats:
    """Telemetry of one shared pass over one document.

    ``tokens_read`` is the single-scan count — the number of tokens read
    from the input, *not* multiplied by the number of queries; the
    benchmark gate asserts it equals one document scan.  ``lane_tokens``
    is each query's routed share of that scan, so
    ``sum(lane_tokens.values())`` against ``tokens_read * query_count``
    quantifies what the bitmask routing saved.
    """

    query_count: int
    tokens_read: int
    lane_tokens: dict[str, int]
    peak_live_nodes: int
    peak_live_bytes: int

    @property
    def dispatched_tokens(self) -> int:
        """Per-lane token dispatches summed over all queries."""
        return sum(self.lane_tokens.values())

    @property
    def routing_savings(self) -> int:
        """Dispatches avoided vs. feeding every token to every query."""
        return self.tokens_read * self.query_count - self.dispatched_tokens

    def summary(self) -> str:
        return (
            f"{self.query_count} queries, one scan of {self.tokens_read} "
            f"tokens; {self.dispatched_tokens} lane dispatches "
            f"({self.routing_savings} saved by routing); aggregate hwm "
            f"{self.peak_live_nodes} nodes / {self.peak_live_bytes} bytes"
        )


class _SharedPassAccountant:
    """Aggregate live-residency accounting across all lanes of a session.

    Attached (as :class:`~repro.buffer.stats.BufferAccountant`) to every
    lane buffer the session checks out.  Residency released wholesale —
    a run completing with buffered nodes left, or an abandoned run's
    buffer being discarded — is settled through :meth:`settle`, keeping
    the live aggregate honest across successive multi-runs.

    A multi-run dropped without ``close()`` settles through the *pending*
    queue instead: its GC finalizer may fire while this very lock is held
    (the same hazard ``session._ReleaseGuard`` documents), so the GC path
    only appends to ``pending`` — a GIL-atomic list — and the queued
    amounts are reconciled from normal call contexts via :meth:`reap`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (nodes, bytes) settlements queued from GC contexts.
        self.pending: list[tuple[int, int]] = []
        self.live_nodes = 0
        self.live_bytes = 0
        self.peak_live_nodes = 0
        self.peak_live_bytes = 0

    def on_delta(self, nodes: int, cost: int) -> None:
        with self._lock:
            self.live_nodes += nodes
            self.live_bytes += cost
            if self.live_nodes > self.peak_live_nodes:
                self.peak_live_nodes = self.live_nodes
            if self.live_bytes > self.peak_live_bytes:
                self.peak_live_bytes = self.live_bytes

    def settle(self, nodes: int, cost: int) -> None:
        """Subtract residency whose buffer left the pass in one piece."""
        with self._lock:
            self.live_nodes -= nodes
            self.live_bytes -= cost

    def reap(self) -> None:
        """Apply settlements queued by GC'd multi-runs (normal context)."""
        pending = self.pending
        while pending:
            try:
                nodes, cost = pending.pop()
            except IndexError:  # another thread reaped the last entry
                break
            self.settle(nodes, cost)


def _queue_abandoned_settlement(
    shared: SharedPreprojector,
    runs: list[tuple[str, StreamingRun]],
    results: dict[str, RunResult],
    accountant: _SharedPassAccountant,
) -> None:
    """GC finalizer of a multi-run dropped without ``close()``.

    The per-run release guards return the buffer checkouts on their own;
    this settles the aggregate accounting for the lanes still open.  May
    run inside the garbage collector, so it takes no locks: it detaches
    each open lane's accountant (plain attribute store) and queues the
    residual residency on the accountant's GIL-atomic pending list.
    """
    for index, (name, _run) in enumerate(runs):
        if name in results:
            continue  # completed runs settled at their StopIteration
        stats = shared.lanes[index].buffer.stats
        stats.accountant = None
        accountant.pending.append((stats.live_nodes, stats.live_bytes))


class MultiStreamingRun:
    """One in-flight shared pass, consumed as ``(name, token)`` pairs.

    Iterating drives every query's evaluator round-robin: each cycle
    advances each live query by one output token (a pull by any of them
    feeds all lanes, so queries whose data is already buffered drain it
    before more input is read).  When a query's run completes, its
    :class:`~repro.engine.session.RunResult` lands in :attr:`results` and
    its lane is retired from the dispatch — the dynamic merged-signoff
    release.  :meth:`close` abandons every still-open per-query run; each
    run's release guard returns its checkout exactly once, crash or not.
    """

    def __init__(
        self,
        shared: SharedPreprojector,
        runs: list[tuple[str, StreamingRun]],
        accountant: _SharedPassAccountant,
    ) -> None:
        self._shared = shared
        self._runs = runs
        self._accountant = accountant
        #: RunResult per query name, filled in as each run completes.
        self.results: dict[str, RunResult] = {}
        self._closed = False
        self._gen = self._generate()
        # Safety net for multi-runs dropped without close(): the per-run
        # guards free the checkouts themselves, but the aggregate
        # accounting of the still-open lanes must settle too, or every
        # later pass starts from a falsely elevated live base.  The
        # finalizer reads `results` as it is at collection time.
        self._finalizer = weakref.finalize(
            self,
            _queue_abandoned_settlement,
            shared,
            runs,
            self.results,
            accountant,
        )
        self._finalizer.atexit = False

    # -- iteration ------------------------------------------------------

    def __iter__(self) -> "MultiStreamingRun":
        return self

    def __next__(self) -> tuple[str, Token]:
        return next(self._gen)

    def _generate(self) -> Iterator[tuple[str, Token]]:
        live: deque[tuple[int, str, StreamingRun]] = deque(
            (index, name, run) for index, (name, run) in enumerate(self._runs)
        )
        while live:
            index, name, run = live.popleft()
            try:
                token = next(run)
            except StopIteration:
                # The run executed its last signOff and finalized: retire
                # the lane so no further input is matched on its behalf
                # (its buffer already went back to its session).
                self.results[name] = result = run.result
                self._shared.retire(index)
                self._accountant.settle(
                    result.stats.live_nodes, result.stats.live_bytes
                )
                continue
            except BaseException:
                # One query poisoned the pass: abandon the others so their
                # checkouts go home, then surface the original error.
                # (Only the runs — this generator is currently executing
                # and cannot close itself; it dies by raising.)
                self._abandon_open_runs()
                raise
            live.append((index, name, run))
            yield (name, token)

    def close(self) -> None:
        """Abandon every per-query run that has not completed."""
        self._abandon_open_runs()
        self._gen.close()

    def _abandon_open_runs(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()  # settled synchronously below
        for index, (name, run) in enumerate(self._runs):
            if name in self.results:
                continue
            buffer = self._shared.lanes[index].buffer
            stats = buffer.stats
            self._accountant.settle(stats.live_nodes, stats.live_bytes)
            stats.accountant = None  # the buffer is leaving the pass
            self._shared.retire(index)
            run.close()

    # -- telemetry ------------------------------------------------------

    @property
    def stats(self) -> MultiRunStats:
        """A snapshot of the shared-pass telemetry (stable once drained)."""
        self._accountant.reap()
        lane_tokens: dict[str, int] = {}
        for index, (name, run) in enumerate(self._runs):
            result = self.results.get(name)
            stats = (
                result.stats
                if result is not None
                else self._shared.lanes[index].buffer.stats
            )
            lane_tokens[name] = stats.tokens_read
        return MultiRunStats(
            query_count=len(self._runs),
            tokens_read=self._shared.tokens_read,
            lane_tokens=lane_tokens,
            peak_live_nodes=self._accountant.peak_live_nodes,
            peak_live_bytes=self._accountant.peak_live_bytes,
        )


class MultiQuerySession:
    """N compiled queries evaluated over each document in a single scan.

    Construction compiles every query exactly once (or adopts
    pre-:class:`~repro.analysis.compile.CompiledQuery` artifacts) and
    derives the union projection tree; every :meth:`run` /
    :meth:`run_streaming` afterwards spins up only the dynamic half — N
    lanes behind one tokenizer.  Queries are given as a mapping from name
    to query (text, AST, or compiled), or as a plain sequence (named
    ``q0..qN-1``).

    Like :class:`~repro.engine.session.QuerySession`, a multi session is
    single-client: runs are driven from one thread at a time.
    """

    def __init__(
        self,
        queries: Mapping[str, Query | str | CompiledQuery]
        | Sequence[Query | str | CompiledQuery],
        options: EngineOptions | None = None,
        *,
        schema: Schema | None = None,
    ) -> None:
        self.options = options or EngineOptions()
        if isinstance(queries, Mapping):
            named = list(queries.items())
        else:
            named = [(f"q{i}", query) for i, query in enumerate(queries)]
        if not named:
            raise ValueError("MultiQuerySession needs at least one query")
        if len({name for name, _query in named}) != len(named):
            raise ValueError("query names must be unique")
        self.names: tuple[str, ...] = tuple(name for name, _query in named)
        # ``schema`` applies to every member compiled here; pre-compiled
        # artifacts (schema-aware or not) are adopted unchanged.  The
        # shared pass wires its own lanes, so certified members keep the
        # generic evaluator — the schema's value in a multi session is the
        # constraint report, not the direct runner.
        self.sessions: dict[str, QuerySession] = {
            name: QuerySession(query, self.options, schema=schema)
            for name, query in named
        }
        #: The merged static analysis: membership bitmasks + signoff table.
        self.union: UnionProjection = build_union_projection(
            [
                self.sessions[name].compiled.projection_tree
                for name in self.names
            ]
        )
        self._accountant = _SharedPassAccountant()
        #: Completed shared passes (every query ran to completion).
        self.runs_completed = 0

    @property
    def query_count(self) -> int:
        return len(self.names)

    def compiled(self, name: str) -> CompiledQuery:
        """The static artifacts of one member query."""
        return self.sessions[name].compiled

    def format_union(self) -> str:
        """The union projection tree rendered with query-name masks."""
        return self.union.format(self.names)

    # -- evaluation -----------------------------------------------------

    def run_streaming(
        self, document: str | Path | Iterator[Token]
    ) -> MultiStreamingRun:
        """Start one shared pass; iterate the result to drive it.

        ``document`` may be text, a :class:`~pathlib.Path` (chunked file
        tokenization with bounded memory), or any token iterator; it is
        tokenized exactly once regardless of the number of queries.
        """
        tokens = document_tokens(document)
        options = self.options
        self._accountant.reap()  # settle GC-abandoned passes first
        # Check out (buffer, matcher) per query up front; until a run's
        # release guard exists the checkout is ours to return on failure.
        checkouts: list[tuple[QuerySession, object, object]] = []
        runs: list[tuple[str, StreamingRun]] = []
        try:
            for name in self.names:
                session = self.sessions[name]
                buffer, matcher = session._begin_streaming_run()
                checkouts.append((session, buffer, matcher))
                buffer.stats.accountant = self._accountant
            lanes = [
                ProjectionLane(
                    session.compiled.projection_tree,
                    buffer,
                    aggregate_roles=options.aggregate_roles,
                    matcher=matcher,
                    accumulators=build_accumulators(session.compiled, buffer),
                )
                for session, buffer, matcher in checkouts
            ]
            shared = SharedPreprojector(tokens, lanes)
            for index, name in enumerate(self.names):
                session, buffer, _matcher = checkouts[index]
                view = shared.view(index)
                evaluator = Evaluator(
                    session.compiled.rewritten,
                    buffer,
                    view,
                    None,
                    aggregate_roles=options.aggregate_roles,
                    eager_leaf_bindings=options.eager_leaf_bindings,
                    earliness_sites=earliness_sites(session.compiled, options),
                    single_match_loops=single_match_loops(
                        session.compiled, options
                    ),
                    join_plan=session.compiled.joinplan
                    if options.hash_joins
                    else None,
                )
                runs.append((name, StreamingRun(session, buffer, view, evaluator)))
        except BaseException:
            # Runs already constructed own their releases; checkouts past
            # that point must be handed back here or their sessions wedge.
            for session, buffer, _matcher in checkouts[len(runs):]:
                buffer.stats.accountant = None
                session._on_run_closed(buffer)
            for _name, run in runs:
                run.close()
            raise
        return MultiStreamingRun(shared, runs, self._accountant)

    def run(
        self,
        document: str | Path | Iterator[Token],
        *,
        sinks: Mapping[str, TokenSink] | None = None,
    ) -> dict[str, RunResult]:
        """Evaluate all queries over ``document``, buffered, in one scan.

        Returns one :class:`~repro.engine.session.RunResult` per query
        name, in query order.  With the default sinks each result's
        ``output`` holds that query's serialized text; caller-provided
        sinks receive their query's tokens instead (and ``output`` stays
        empty), mirroring :meth:`QuerySession.run`.
        """
        stream = self.run_streaming(document)
        own_sinks: dict[str, StringSink] = {}
        outs: dict[str, TokenSink] = {}
        for name in self.names:
            if sinks is not None and name in sinks:
                outs[name] = sinks[name]
            else:
                outs[name] = own_sinks[name] = StringSink()
        for name, token in stream:
            outs[name].write(token)
        self.runs_completed += 1
        results = {name: stream.results[name] for name in self.names}
        for name, sink in own_sinks.items():
            sink.close()
            results[name].output = sink.getvalue()
        # Note on timing: each result's elapsed_seconds spans that run's
        # first next() to its finalize.  Under the interleaved drive the
        # spans overlap, so they attribute the *pass*, not the query —
        # time the run_streaming drain for the pass wall-clock.
        return results

    # -- telemetry ------------------------------------------------------

    @property
    def peak_live_nodes(self) -> int:
        """Aggregate buffered-node peak across all lanes, all passes."""
        self._accountant.reap()
        return self._accountant.peak_live_nodes

    @property
    def peak_live_bytes(self) -> int:
        """Aggregate modelled-byte peak across all lanes, all passes."""
        self._accountant.reap()
        return self._accountant.peak_live_bytes
