"""Concurrent session pool: serving one compiled query to many clients.

The paper's argument — static analysis plus active garbage collection keep
each run's buffer bounded — is exactly what makes *concurrent* serving
viable: N in-flight evaluations cost N small buffers, not N documents.
:class:`SessionPool` turns that into an API.  It splits the engine's state
the way docs/CONCURRENCY.md describes:

* **Shared static state** (computed once, immutable afterwards): the
  :class:`~repro.analysis.compile.CompiledQuery` and one
  :class:`~repro.stream.matcher.StreamMatcher` whose interned lazy-DFA
  transition table is safely shareable — states are immutable after
  publish, and the only lock sits on the memoization miss path, so the hot
  hit path stays lock-free.  Every concurrent run warms the table for all
  the others.
* **Pooled dynamic state** (exclusive per run): :class:`BufferTree`
  instances move through a checkout pool with an owner assertion — a
  buffer handed to two concurrent runs raises instead of corrupting — and
  are recycled with warm tag tables between runs.  The matcher's per-run
  dynamic state (the :class:`~repro.stream.matcher.MatchFrame` stack and
  consumed-``[1]`` bookkeeping) lives inside each run's preprojector, so
  it needs no pooling at all.

An aggregate accountant observes every checked-out buffer and maintains
the *pool-wide* live residency and its peak (``PoolStats.peak_live_nodes``
/ ``peak_live_bytes``) — the serving-layer analogue of the paper's
per-run buffer high watermark.

Two executors:

* ``executor="thread"`` (default): a ``ThreadPoolExecutor`` sharing the
  compiled query and the warm DFA across workers.  Under CPython's GIL
  this does not parallelize the CPU work; its win is amortization (compile
  once, warm matcher/buffers) plus overlap with any I/O in tokenization.
* ``executor="process"``: a ``ProcessPoolExecutor`` whose workers each
  compile the query once at startup; documents are shipped to workers and
  slim :class:`PoolResult` values come back.  This buys real CPU
  parallelism on multi-core hosts at the price of per-process static
  state (nothing is shared) and pickling.  Requires the query as text.

``map`` is ordered and backpressured: at most a bounded window of work is
in flight, and the ``documents`` iterable is consumed lazily, so a pool
can serve an unbounded request stream with bounded memory on both the
input and the output side.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from functools import partial
from itertools import islice
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.analysis.compile import CompiledQuery, compile_query
from repro.analysis.schema import Schema
from repro.analysis.schema_constraints import apply_trusted_constraints
from repro.buffer.buffer import BufferTree
from repro.engine.session import (
    MATCHER_STATE_CAP,
    EngineOptions,
    QuerySession,
    RunResult,
    StreamingRun,
    build_streaming_run,
    drain_streaming_run,
    reap_dropped_runs,
)
from repro.stream.matcher import StreamMatcher
from repro.xmlio.serialize import TokenSink
from repro.xmlio.tokens import Token

__all__ = ["PoolResult", "PoolStats", "SessionPool"]


@dataclass(frozen=True)
class PoolResult:
    """Slim, picklable outcome of one pooled evaluation.

    ``submit``/``map`` return these instead of full
    :class:`~repro.engine.session.RunResult` objects so that thread and
    process executors have one result type: the compiled-query reference
    (process workers would have to pickle a whole AST) is dropped, the
    numbers the serving layer cares about are kept.
    """

    output: str
    hwm_nodes: int
    #: Raw modelled cost (no duplication factor applied), the same unit
    #: as the pool-wide ``PoolStats.peak_live_bytes`` aggregate — per-run
    #: and pool-wide figures must be directly comparable.
    hwm_bytes: int
    tokens_read: int
    elapsed_seconds: float
    first_output_seconds: float | None

    @classmethod
    def from_run(cls, result: RunResult) -> "PoolResult":
        return cls(
            output=result.output,
            hwm_nodes=result.stats.hwm_nodes,
            hwm_bytes=result.stats.hwm_bytes,
            tokens_read=result.stats.tokens_read,
            elapsed_seconds=result.elapsed_seconds,
            first_output_seconds=result.first_output_seconds,
        )


@dataclass(frozen=True)
class PoolStats:
    """A consistent snapshot of the pool-wide accounting.

    The ``live_*``/``peak_live_*`` fields aggregate over *all* buffers
    checked out at the same time — the number a capacity planner needs,
    where per-run statistics only bound one client.  Process-executor runs
    happen in other address spaces: they count in ``runs_started`` (exact,
    recorded at submit) and ``runs_completed``/``runs_abandoned``
    (recorded by future callbacks, which may lag ``future.result()`` by an
    instant; exact once the pool is closed), but cannot contribute to the
    live aggregates.
    """

    executor: str
    max_workers: int
    runs_started: int
    runs_completed: int
    runs_abandoned: int
    active_runs: int
    peak_active_runs: int
    live_nodes: int
    live_bytes: int
    peak_live_nodes: int
    peak_live_bytes: int
    buffers_created: int
    #: Buffers currently held by in-flight (or leaked) runs — the number
    #: the serving layer's RunOwner invariant drives to zero after every
    #: fault.  The snapshot reaps abandoned runs first, so a run whose
    #: guard was discarded no longer counts here.
    outstanding_checkouts: int = 0

    def summary(self) -> str:
        if self.executor == "process":
            # Remote runs never feed the live accountant; printing the
            # structurally-zero aggregates would read as a measured peak.
            aggregate = "aggregate hwm n/a (process workers)"
        else:
            aggregate = (
                f"aggregate hwm {self.peak_live_nodes} nodes / "
                f"{self.peak_live_bytes} bytes across "
                f"{self.peak_active_runs} concurrent run(s); "
                f"{self.buffers_created} buffer(s) allocated"
            )
        return (
            f"{self.runs_completed} runs "
            f"({self.runs_abandoned} abandoned) on "
            f"{self.max_workers} {self.executor} worker(s); "
            f"{aggregate}"
        )


class _PoolAccountant:
    """Thread-safe aggregate high-watermark accounting for the pool.

    Attached (as :class:`~repro.buffer.stats.BufferAccountant`) to every
    checked-out buffer; each node/role delta updates the pool-wide live
    totals and their peaks under one small lock.  The lock is uncontended
    in the common case and touched only when buffers actually grow or
    shrink — never on the matcher's hit path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs_started = 0
        self.runs_completed = 0
        self.runs_abandoned = 0
        self.active_runs = 0
        self.peak_active_runs = 0
        self.live_nodes = 0
        self.live_bytes = 0
        self.peak_live_nodes = 0
        self.peak_live_bytes = 0

    # BufferAccountant protocol ----------------------------------------

    def on_delta(self, nodes: int, cost: int) -> None:
        with self._lock:
            self.live_nodes += nodes
            self.live_bytes += cost
            if self.live_nodes > self.peak_live_nodes:
                self.peak_live_nodes = self.live_nodes
            if self.live_bytes > self.peak_live_bytes:
                self.peak_live_bytes = self.live_bytes

    # run lifecycle ----------------------------------------------------

    def run_started(self) -> None:
        with self._lock:
            self.runs_started += 1
            self.active_runs += 1
            if self.active_runs > self.peak_active_runs:
                self.peak_active_runs = self.active_runs

    def run_ended(
        self, *, completed: bool, leftover_nodes: int, leftover_bytes: int
    ) -> None:
        with self._lock:
            self.active_runs -= 1
            if completed:
                self.runs_completed += 1
            else:
                self.runs_abandoned += 1
            # An abandoned run's residue is discarded with its buffer; a
            # completed strict run leaves nothing (Section 3's guarantee).
            self.live_nodes -= leftover_nodes
            self.live_bytes -= leftover_bytes

    def remote_runs_started(self, count: int) -> None:
        """Counted synchronously at submit time, so it is always exact."""
        with self._lock:
            self.runs_started += count

    def remote_runs_completed(self, count: int) -> None:
        with self._lock:
            self.runs_completed += count

    def remote_runs_failed(self, count: int) -> None:
        """A remote task died: all its runs count as abandoned.

        A mid-chunk failure abandons the whole chunk from the caller's
        point of view (its future raises), so the whole chunk is counted
        here even if some documents inside it evaluated before the error.
        """
        with self._lock:
            self.runs_abandoned += count


class SessionPool:
    """Thread-safe serving of one compiled query to N concurrent clients.

    Construction compiles the query exactly once (or adopts a
    :class:`~repro.analysis.compile.CompiledQuery`); afterwards any number
    of threads may call :meth:`run`, :meth:`run_streaming`,
    :meth:`submit` and :meth:`map` concurrently.  The pool owns a lazily
    created executor for ``submit``/``map``; ``run``/``run_streaming``
    execute on the calling thread and only use the checkout machinery.

    Use as a context manager (or call :meth:`close`) to shut the executor
    down; an unclosed pool's threads are daemonic only insofar as
    ``ThreadPoolExecutor`` allows, so closing is good manners.
    """

    def __init__(
        self,
        query: str | CompiledQuery,
        options: EngineOptions | None = None,
        *,
        schema: Schema | None = None,
        max_workers: int = 4,
        executor: str = "thread",
        max_idle_buffers: int | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.options = options or EngineOptions()
        self.max_workers = max_workers
        self.executor_kind = executor
        self._query_text = query if isinstance(query, str) else None
        if executor == "process" and self._query_text is None:
            raise ValueError(
                "executor='process' needs the query as text: worker "
                "processes each compile their own copy at startup"
            )
        # Schema is kept for the process-executor initializer (workers
        # each re-run the schema-aware compilation on their own copy).
        self._schema = schema
        if isinstance(query, CompiledQuery):
            # Compiled artifacts — schema-aware or not — are adopted as-is.
            self._compiled = query
        else:
            self._compiled = compile_query(
                query, self.options.compile_options(), schema=schema
            )
        if self.options.trust_schema:
            self._compiled = apply_trusted_constraints(self._compiled)
        # Shared static half (Figure 11's left side): one matcher whose
        # lazy DFA every run reads and warms; replaced wholesale (under
        # the pool lock) if an adversarial document bloats it.
        self._matcher = StreamMatcher(
            self._compiled.projection_tree,
            aggregate_roles=self.options.aggregate_roles,
        )
        # Pooled dynamic half: idle buffers plus the checkout registry
        # mapping id(buffer) -> (owning thread ident, the buffer itself).
        # The registry IS the owner assertion: checking out a registered
        # buffer raises.  Holding the buffer reference keeps a registered
        # id from ever aliasing a recycled address, so a leaked checkout
        # stays a diagnosable leak instead of a spurious violation.
        self._lock = threading.Lock()
        # Rides the same lock; notified whenever the checkout registry
        # empties, so wait_idle() can block instead of spinning.
        self._drain_cond = threading.Condition(self._lock)
        self._idle_buffers: list[BufferTree] = []
        self._checked_out: dict[int, tuple[int, BufferTree]] = {}
        # Abandoned runs queue their release guards here from GC-safe
        # contexts (see session._ReleaseGuard); reaped before checkouts,
        # stats snapshots, and shutdown.
        self._dropped_runs: list = []
        self._max_idle = (
            max_idle_buffers if max_idle_buffers is not None else max_workers
        )
        self._buffers_created = 0
        self._accountant = _PoolAccountant()
        self._executor: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        # _closing rejects *new* submissions while close() drains the
        # queued work; _closed (set once the drain finished) additionally
        # rejects checkouts, i.e. direct run/run_streaming calls.
        self._closing = False
        self._closed = False

    # -- static artifacts ----------------------------------------------

    @property
    def compiled(self) -> CompiledQuery:
        """The static-analysis artifacts, shared by every run."""
        return self._compiled

    @property
    def matcher(self) -> StreamMatcher:
        """The shared matcher (its DFA table is warmed by all runs)."""
        return self._matcher

    @property
    def stats(self) -> PoolStats:
        """A snapshot of the pool-wide accounting."""
        reap_dropped_runs(self)  # settle abandoned runs first
        acct = self._accountant
        with acct._lock, self._lock:
            return PoolStats(
                executor=self.executor_kind,
                max_workers=self.max_workers,
                runs_started=acct.runs_started,
                runs_completed=acct.runs_completed,
                runs_abandoned=acct.runs_abandoned,
                active_runs=acct.active_runs,
                peak_active_runs=acct.peak_active_runs,
                live_nodes=acct.live_nodes,
                live_bytes=acct.live_bytes,
                peak_live_nodes=acct.peak_live_nodes,
                peak_live_bytes=acct.peak_live_bytes,
                buffers_created=self._buffers_created,
                outstanding_checkouts=len(self._checked_out),
            )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut down the executor; in-flight work completes first.

        "In flight" includes work queued but not yet started: the closed
        flag that fails checkouts is only raised *after* the executor has
        drained, so every accepted future resolves normally.
        """
        reap_dropped_runs(self)
        with self._lock:
            if self._closed or self._closing:
                return
            self._closing = True
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)
            if self.executor_kind == "process":
                # Remote run counters are recorded by future callbacks,
                # which may lag shutdown by an instant; settle them so the
                # counters are exact once close() returns, as documented.
                # Bounded: with the executor drained and _closing set, no
                # new remote runs can start.
                acct = self._accountant
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    with acct._lock:
                        settled = (
                            acct.runs_completed + acct.runs_abandoned
                            >= acct.runs_started
                        )
                    if settled:
                        break
                    time.sleep(0.001)
        with self._lock:
            self._closed = True

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no buffer is checked out; ``True`` when idle.

        The serving layer's drain hook: after the front-end stops feeding
        a pool, this waits for the in-flight runs to settle — including
        abandoned ones, whose guards release through ``_dropped_runs``
        (reaped here, since a discarded guard sends no notification).
        Blocking, so an asyncio caller runs it via ``run_in_executor``.
        Returns ``False`` if ``timeout`` elapsed with checkouts still
        outstanding.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            reap_dropped_runs(self)
            with self._drain_cond:
                if not self._checked_out:
                    return True
                # Cap each wait: abandoned-run releases arrive through the
                # reap above, not through a notify.
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    wait = min(wait, remaining)
                self._drain_cond.wait(wait)

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- direct (calling-thread) evaluation -----------------------------

    def run_streaming(
        self,
        document: str | Path | Iterator[Token],
        *,
        on_event: Callable[[str], None] | None = None,
    ) -> StreamingRun:
        """One incremental evaluation on the *calling* thread.

        Checks out a buffer (exclusive) and borrows the shared matcher;
        both are returned when the run is exhausted, closed, or dies.
        Any number of threads — and any number of interleaved runs per
        thread — may hold streaming runs from one pool simultaneously.
        Not available on process pools (runs live in other processes).
        """
        if self.executor_kind == "process":
            raise RuntimeError(
                "run_streaming is not available on a process pool: worker "
                "processes cannot stream tokens into this one"
            )
        buffer = self._checkout_buffer()
        matcher = self._shared_matcher()
        self._accountant.run_started()
        try:
            return build_streaming_run(
                self, document, buffer, matcher, on_event=on_event
            )
        except BaseException:
            # No release guard exists until StreamingRun.__init__ ends,
            # so a construction failure returns the checkout here.
            self._release_buffer(buffer, completed=False)
            raise

    def run(
        self,
        document: str | Path | Iterator[Token],
        *,
        sink: TokenSink | None = None,
        on_event: Callable[[str], None] | None = None,
    ) -> RunResult:
        """One buffered evaluation on the calling thread (full RunResult)."""
        stream = self.run_streaming(document, on_event=on_event)
        return drain_streaming_run(stream, sink)

    # -- pooled evaluation ----------------------------------------------

    def submit(self, document: str | Path) -> "Future[PoolResult]":
        """Schedule one evaluation on the pool; returns a future.

        Futures resolve to :class:`PoolResult`.  Exceptions raised by the
        evaluation surface through ``future.result()`` as usual.
        """
        executor = self._ensure_executor()
        if self.executor_kind == "process":
            self._accountant.remote_runs_started(1)
            future = executor.submit(
                _process_serve_one, document
            )  # type: Future[PoolResult]
            future.add_done_callback(partial(self._count_remote, 1))
            return future
        return executor.submit(self._serve_one, document)

    def map(
        self,
        documents: Iterable[str | Path],
        *,
        chunksize: int = 1,
        window: int | None = None,
    ) -> Iterator[PoolResult]:
        """Ordered, backpressured evaluation of many documents.

        Yields one :class:`PoolResult` per document, in input order.  At
        most ``window`` chunks (default ``2 * max_workers``) are in flight
        at once and ``documents`` is consumed lazily, so both sides stay
        bounded however long the request stream is.  ``chunksize`` batches
        several documents per task — worth using when the documents are
        small enough that per-task dispatch overhead would dominate.
        """
        executor = self._ensure_executor()
        if self.executor_kind == "process":
            serve = _process_serve_chunk
            remote = True
        else:
            serve = self._serve_chunk
            remote = False

        def submit_chunk(chunk: list[str | Path]) -> Future:
            # Chunks are submitted lazily as the caller iterates; re-check
            # here so iterating a leftover map() after close() gets the
            # pool's clear error, not the executor's opaque one.
            with self._lock:
                if self._closed or self._closing:
                    raise RuntimeError("SessionPool is closed")
            if remote:
                self._accountant.remote_runs_started(len(chunk))
            future = executor.submit(serve, chunk)
            if remote:
                future.add_done_callback(
                    partial(self._count_remote, len(chunk))
                )
            return future

        return self._windowed(documents, chunksize, window, submit_chunk)

    def map_multi(
        self,
        documents: Iterable[str | Path],
        queries: Mapping[str, str | CompiledQuery]
        | Sequence[str | CompiledQuery],
        *,
        chunksize: int = 1,
        window: int | None = None,
    ) -> Iterator[dict[str, PoolResult]]:
        """Ordered, backpressured *multi-query* evaluation of many documents.

        Every document is evaluated against all ``queries`` in a single
        token pass (the :class:`~repro.engine.multi.MultiQuerySession`
        engine); the pool contributes its executor, window backpressure
        and ordered delivery.  Yields one ``{name: PoolResult}`` dict per
        document, in input order.  The queries are compiled exactly once
        here; each worker thread then keeps its own warm
        ``MultiQuerySession`` over the shared compiled artifacts (a multi
        session is single-client, so sessions are thread-local rather
        than shared).

        The pool's own compiled query is *not* implicitly included —
        ``queries`` is the complete standing set.  Run counting feeds the
        pool statistics (one run per query per document); the live buffer
        aggregates are tracked per multi-session, not pool-wide.  Thread
        executors only: process workers would re-compile per process,
        which :meth:`map` with one query already covers.
        """
        from repro.engine.multi import MultiQuerySession

        if self.executor_kind == "process":
            raise RuntimeError(
                "map_multi requires a thread executor: the shared compiled "
                "artifacts live in this process"
            )
        if isinstance(queries, Mapping):
            named = list(queries.items())
        else:
            named = [(f"q{i}", query) for i, query in enumerate(queries)]
        compiled: dict[str, CompiledQuery] = {
            name: (
                query
                if isinstance(query, CompiledQuery)
                else compile_query(query, self.options.compile_options())
            )
            for name, query in named
        }
        executor = self._ensure_executor()
        local = threading.local()

        def serve_chunk(chunk: list[str | Path]) -> list[dict[str, PoolResult]]:
            session: MultiQuerySession | None = getattr(local, "session", None)
            if session is None:
                session = MultiQuerySession(compiled, self.options)
                local.session = session
            served = []
            for document in chunk:
                results = session.run(document)
                served.append(
                    {
                        name: PoolResult.from_run(result)
                        for name, result in results.items()
                    }
                )
            return served

        def submit_chunk(chunk: list[str | Path]) -> Future:
            with self._lock:
                if self._closed or self._closing:
                    raise RuntimeError("SessionPool is closed")
            self._accountant.remote_runs_started(len(chunk) * len(compiled))
            future = executor.submit(serve_chunk, chunk)
            future.add_done_callback(
                partial(self._count_remote, len(chunk) * len(compiled))
            )
            return future

        return self._windowed(documents, chunksize, window, submit_chunk)

    def _windowed(
        self,
        documents: Iterable[str | Path],
        chunksize: int,
        window: int | None,
        submit_chunk: Callable[[list[str | Path]], Future],
    ) -> Iterator:
        """The shared ordered/backpressured chunk pump of map and map_multi."""
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        window = window if window is not None else 2 * self.max_workers
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")

        def generate() -> Iterator:
            source = iter(documents)
            pending: deque[Future] = deque()
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    chunk = list(islice(source, chunksize))
                    if not chunk:
                        exhausted = True
                        break
                    pending.append(submit_chunk(chunk))
                if not pending:
                    return
                yield from pending.popleft().result()

        return generate()

    # -- worker bodies ---------------------------------------------------

    def _serve_one(self, document: str | Path) -> PoolResult:
        return PoolResult.from_run(self.run(document))

    def _serve_chunk(self, documents: list[str | Path]) -> list[PoolResult]:
        return [self._serve_one(document) for document in documents]

    def _count_remote(self, count: int, future: Future) -> None:
        if future.cancelled() or future.exception() is not None:
            self._accountant.remote_runs_failed(count)
        else:
            self._accountant.remote_runs_completed(count)

    # -- RunOwner callbacks (invoked by StreamingRun exactly once) -------

    def _on_run_finished(self, buffer: BufferTree) -> None:
        self._release_buffer(buffer, completed=True)

    def _on_run_closed(self, buffer: BufferTree) -> None:
        self._release_buffer(buffer, completed=False)

    # -- checkout pool ----------------------------------------------------

    def _checkout_buffer(self) -> BufferTree:
        """An exclusive, fresh-state buffer, registered to this thread."""
        reap_dropped_runs(self)  # abandoned checkouts free up first
        ident = threading.get_ident()
        with self._lock:
            if self._closed:
                raise RuntimeError("SessionPool is closed")
            buffer = (
                self._idle_buffers.pop() if self._idle_buffers else None
            )
            if buffer is None:
                buffer = BufferTree(
                    self.options.cost_model, strict=self.options.strict
                )
                self._buffers_created += 1
            key = id(buffer)
            entry = self._checked_out.get(key)
            if entry is not None:  # the owner assertion
                raise RuntimeError(
                    f"buffer checkout violation: buffer {key:#x} is "
                    f"already held by thread {entry[0]}"
                )
            self._checked_out[key] = (ident, buffer)
        buffer.stats.accountant = self._accountant
        return buffer

    def _release_buffer(self, buffer: BufferTree, *, completed: bool) -> None:
        stats = buffer.stats
        stats.accountant = None  # no further deltas from this run
        with self._drain_cond:
            entry = self._checked_out.pop(id(buffer), None)
            if not self._checked_out:
                self._drain_cond.notify_all()
        if entry is None:
            raise RuntimeError(
                "buffer release violation: buffer was not checked out"
            )
        self._accountant.run_ended(
            completed=completed,
            leftover_nodes=stats.live_nodes,
            leftover_bytes=stats.live_bytes,
        )
        # Park with a warm tag table; abandoned runs' residue is cleared
        # by reset() just the same, so recycling is always safe.
        buffer.reset()
        with self._lock:
            if not self._closed and len(self._idle_buffers) < self._max_idle:
                self._idle_buffers.append(buffer)

    def _shared_matcher(self) -> StreamMatcher:
        with self._lock:
            if self._matcher.state_count > MATCHER_STATE_CAP:
                # Same escape hatch as QuerySession: in-flight runs keep
                # their reference, future runs start a fresh table.
                self._matcher = StreamMatcher(
                    self._compiled.projection_tree,
                    aggregate_roles=self.options.aggregate_roles,
                )
            return self._matcher

    # -- executor ---------------------------------------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        with self._lock:
            if self._closed or self._closing:
                raise RuntimeError("SessionPool is closed")
            if self._executor is None:
                if self.executor_kind == "process":
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        initializer=_process_worker_init,
                        initargs=(self._query_text, self.options, self._schema),
                    )
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="gcx-pool",
                    )
            return self._executor


# ----------------------------------------------------------------------
# process-executor workers (module level: must be picklable by reference)
# ----------------------------------------------------------------------

_WORKER_SESSION: QuerySession | None = None


def _process_worker_init(
    query_text: str, options: EngineOptions, schema: Schema | None = None
) -> None:
    """Compile once per worker process (the pool's initializer)."""
    global _WORKER_SESSION
    _WORKER_SESSION = QuerySession(query_text, options, schema=schema)


def _process_serve_one(document: str | Path) -> PoolResult:
    assert _WORKER_SESSION is not None  # initializer ran first
    started = time.perf_counter()
    result = _WORKER_SESSION.run(document)
    # RunResult carries its own elapsed time; keep it, the wall-clock
    # above only guards against a zero-duration clock on tiny documents.
    if result.elapsed_seconds <= 0.0:
        result.elapsed_seconds = time.perf_counter() - started
    return PoolResult.from_run(result)


def _process_serve_chunk(documents: list[str | Path]) -> list[PoolResult]:
    return [_process_serve_one(document) for document in documents]
