"""Compile-once/run-many query sessions with incremental output.

The paper's architecture (Figure 11) separates a purely static phase —
normalization, projection-tree derivation, signOff insertion — from the
streaming runtime.  :class:`QuerySession` makes that split first-class: it
performs the static analysis exactly once at construction and can then
evaluate the compiled query over arbitrarily many documents or token
streams, each run with fully isolated dynamic state (buffer tree,
preprojector, evaluator cursors).  Between runs the session recycles its
:class:`~repro.buffer.buffer.BufferTree` through
:meth:`~repro.buffer.buffer.BufferTree.reset`, which keeps the tag symbol
table (Section 6's integer tags) warm across documents that share a schema.

:meth:`QuerySession.run_streaming` returns a :class:`StreamingRun` — an
iterator of output tokens that are produced *while* the input is being
consumed.  Together with the demand-driven reads of the evaluator this
closes the constant-memory loop on both sides: input residency is bounded
by the buffer high watermark (the paper's contribution), and output
residency is bounded by the consumer, not by the result size.
:meth:`QuerySession.run` is the buffered wrapper that drains the stream
into a :class:`~repro.xmlio.serialize.TokenSink`.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Protocol

from repro.analysis.compile import CompiledQuery, CompileOptions, compile_query
from repro.analysis.schema import Schema
from repro.analysis.schema_constraints import apply_trusted_constraints
from repro.buffer.buffer import BufferTree
from repro.buffer.stats import BufferCostModel, BufferStats
from repro.engine.evaluator import Evaluator
from repro.engine.relops.aggregates import (
    AccumulatorRuntime,
    collect_aggregate_sites,
)
from repro.stream.matcher import StreamMatcher
from repro.stream.preprojector import StreamPreprojector
from repro.xmlio.filelexer import tokenize_file
from repro.xmlio.lexer import tokenize
from repro.xmlio.serialize import StringSink, TokenSink, serialize_stream
from repro.xmlio.tokens import Token
from repro.xquery.ast import Query

#: A shared matcher whose lazy DFA outgrows this many states is replaced
#: with a fresh one on the next run (bounds session-lifetime memory; normal
#: query/document mixes stay well under it — XMark queries intern < 100).
MATCHER_STATE_CAP = 4096

__all__ = [
    "EngineOptions",
    "RunResult",
    "RunOwner",
    "StreamingRun",
    "QuerySession",
    "build_accumulators",
    "build_streaming_run",
    "document_tokens",
    "drain_streaming_run",
    "earliness_sites",
    "single_match_loops",
]


def document_tokens(
    document: "str | bytes | bytearray | memoryview | Path | Iterator[Token]",
) -> Iterator[Token]:
    """Normalize a document argument into a token stream.

    Text is tokenized in memory (``str`` is encoded once; raw UTF-8
    ``bytes``/``bytearray``/``memoryview`` feed the bytes-domain lexer
    directly, skipping even that), a :class:`~pathlib.Path` through the
    mmap/chunked file tokenizer with bounded memory, and any other
    iterator is passed through untouched.
    """
    if isinstance(document, (str, bytes, bytearray, memoryview)):
        return tokenize(document)
    if isinstance(document, Path):
        return tokenize_file(document)
    return document


class RunOwner(Protocol):
    """What a :class:`StreamingRun` needs from whoever started it.

    Both :class:`QuerySession` (single-client) and
    :class:`~repro.engine.pool.SessionPool` (multi-client) implement this:
    the run calls back exactly once — ``_on_run_finished`` when the output
    was exhausted and the buffer can be recycled, or ``_on_run_closed``
    when the run was abandoned or died and the buffer must be discarded.
    """

    options: EngineOptions
    #: Guards of abandoned runs awaiting reclamation (see _ReleaseGuard).
    _dropped_runs: list

    @property
    def compiled(self) -> CompiledQuery: ...

    def _on_run_finished(self, buffer: BufferTree) -> None: ...

    def _on_run_closed(self, buffer: BufferTree) -> None: ...


class _ReleaseGuard:
    """One-shot release of a run's checkout back to its owner.

    Shared between the :class:`StreamingRun` and a :mod:`weakref`
    finalizer, so the owner is notified exactly once on whichever comes
    first: exhaustion, ``close()``, an in-run error — or garbage
    collection of a run that was abandoned (a never-started generator
    does not run its ``finally`` when closed or collected, which would
    otherwise leak the checkout forever).

    The discard path may execute *inside the garbage collector* — cyclic
    GC can fire on any allocation, including one made while the very
    thread triggering it holds the owner's (non-reentrant) lock — so
    :meth:`discard` takes no locks at all: it enqueues the guard on the
    owner's ``_dropped_runs`` list (a GIL-atomic append) and the owner
    reclaims queued guards from a normal call context via
    :func:`reap_dropped_runs`.  Only :meth:`finish` releases
    synchronously; it runs exclusively inside ``next()`` on the run's
    iterator, never inside GC.
    """

    __slots__ = ("_owner", "_buffer", "_done")

    def __init__(self, owner: RunOwner, buffer: BufferTree) -> None:
        self._owner = owner
        self._buffer = buffer
        self._done = False

    def discard(self) -> None:
        """Queue the release, buffer to be discarded.  GC-safe: no locks."""
        if not self._done:
            self._done = True
            self._owner._dropped_runs.append(self)

    def finish(self) -> None:
        """Release with the buffer recycled (completed run)."""
        if not self._done:
            self._done = True
            self._owner._on_run_finished(self._buffer)

    def _reclaim(self) -> None:
        """Perform the queued release (normal call context only)."""
        self._owner._on_run_closed(self._buffer)


def reap_dropped_runs(owner: RunOwner) -> None:
    """Reclaim checkouts of abandoned runs queued by their guards.

    Owners call this at the top of their entry points, *before* taking
    their own locks.  ``pop()`` is GIL-atomic, so concurrent reapers each
    reclaim a disjoint set of guards.
    """
    dropped = owner._dropped_runs
    while dropped:
        try:
            guard = dropped.pop()
        except IndexError:  # another thread reaped the last one
            break
        guard._reclaim()


@dataclass(frozen=True)
class EngineOptions:
    """Runtime and analysis switches (Section 6 optimizations + strictness).

    The defaults match the paper's prototype — every optimization on.  The
    ablation benchmarks toggle them individually; the flux-like baseline
    reuses the same machinery with ``eager_leaf_bindings=True`` and the
    dynamic refinements off.
    """

    aggregate_roles: bool = True
    early_updates: bool = True
    eliminate_redundant_roles: bool = True
    eager_leaf_bindings: bool = False  # push-based (flux-like) reading
    strict: bool = True  # raise on undefined role removals / unbalanced roles
    #: Assume documents conform to the compile-time schema (FluX's operating
    #: mode): schema-pruned patterns are dropped from the runtime artifacts.
    #: Off by default — the default engine only applies schema facts whose
    #: soundness does not depend on the input conforming (the zero-buffer
    #: direct runner detects violations structurally and falls back).
    trust_schema: bool = False
    #: Earliest query answering (docs/EARLINESS.md): flush output subtrees
    #: the moment their decided watermark passes instead of waiting for the
    #: close tag, and decide existential conditions at their first witness.
    #: Byte-identical output either way — only *when* bytes leave changes.
    #: Effective only with aggregate roles (the structural certificate) and
    #: not in the eager push-based baseline.
    earliness: bool = True
    #: Dispatch compile-time detected equi-join loops (docs/JOINS.md) to
    #: the streaming hash build/probe operator instead of the nested-loop
    #: evaluation.  Byte-identical output either way — the differential
    #: suites compare both paths; off restores the O(n*m) oracle.
    hash_joins: bool = True
    cost_model: BufferCostModel = field(default_factory=BufferCostModel)

    def compile_options(self) -> CompileOptions:
        """The static-analysis switches implied by these engine options."""
        return CompileOptions(
            early_updates=self.early_updates,
            eliminate_redundant=self.eliminate_redundant_roles,
        )


@dataclass
class RunResult:
    """The outcome of one query evaluation.

    ``output`` holds the serialized result when the run used a
    :class:`~repro.xmlio.serialize.StringSink` (the default); runs that
    streamed to a custom sink or through :class:`StreamingRun` leave it
    empty, because the tokens already went to their consumer.
    """

    output: str
    stats: BufferStats
    compiled: CompiledQuery
    elapsed_seconds: float
    exhausted_input: bool
    first_output_seconds: float | None = None

    @property
    def hwm_bytes(self) -> int:
        """Buffer high watermark in modelled bytes (the Table 1 number)."""
        return self.stats.hwm_bytes_modelled

    @property
    def hwm_nodes(self) -> int:
        """Buffer high watermark in live node count."""
        return self.stats.hwm_nodes


class StreamingRun:
    """One in-flight evaluation, consumed as an iterator of output tokens.

    Yields each output :class:`~repro.xmlio.tokens.Token` the moment the
    evaluator decides it; input is read on demand between tokens, so on a
    query whose first match occurs early the first token arrives after only
    a prefix of the input has been consumed.  Once the iterator is
    exhausted, :attr:`result` carries the :class:`RunResult` (statistics,
    timings, safety checks applied); until then it is ``None``.
    """

    def __init__(
        self,
        owner: RunOwner,
        buffer: BufferTree,
        preprojector: StreamPreprojector,
        evaluator: Evaluator,
    ) -> None:
        self._owner = owner
        self._buffer = buffer
        self._preprojector = preprojector
        # The clock starts at the first next() — construction is free and
        # consumer think-time before iterating must not count as latency.
        self._started: float | None = None
        self._gen = self._generate(evaluator)
        #: Seconds from the first next() to the first output token (None
        #: until the first token, and forever on an empty result).
        self.first_output_seconds: float | None = None
        #: The RunResult, available once the iterator is exhausted.
        self.result: RunResult | None = None
        # The guard goes in LAST: once it exists, it owns the release, and
        # a construction failure before this point is the caller's to
        # clean up (run_streaming releases the checkout directly).  No
        # statement may follow it, or an __init__ error after the guard
        # would race the caller's cleanup against the GC finalizer.
        self._release = _ReleaseGuard(owner, buffer)
        # Safety net for runs dropped without ever being iterated (their
        # generator's finally never runs): GC discards the checkout.  Not
        # at interpreter exit — the owner may already be torn down then.
        self._finalizer = weakref.finalize(
            self, _ReleaseGuard.discard, self._release
        )
        self._finalizer.atexit = False

    # -- iteration ------------------------------------------------------

    def __iter__(self) -> "StreamingRun":
        return self

    def __next__(self) -> Token:
        if self._started is None:
            self._started = time.perf_counter()
        return next(self._gen)

    def close(self) -> None:
        """Abandon the run early; the partially filled buffer is discarded."""
        # A never-iterated generator does not run its finally on close(),
        # so the guard must fire here; otherwise closing (or an in-run
        # error, or exhaustion) reaches the generator's cleanup below.
        if self._started is None:
            self._release.discard()
        self._gen.close()

    def serialized(self, *, indent: str | None = None) -> Iterator[str]:
        """The run's output as an iterator of serialized text fragments."""
        return serialize_stream(self, indent=indent)

    @property
    def tokens_consumed(self) -> int:
        """Input tokens read so far — the emission-order oracle.

        Sampled between output tokens it tells a consumer (e.g. the serve
        layer's per-frame ``at`` field) how much input each fragment
        needed, which is how the earliness tests assert that first bytes
        leave before end-of-document.
        """
        return self._buffer.stats.tokens_read

    # -- internals ------------------------------------------------------

    def _generate(self, evaluator: Evaluator) -> Iterator[Token]:
        completed = False
        try:
            for token in evaluator.iter_tokens():
                if self.first_output_seconds is None:
                    self.first_output_seconds = (
                        time.perf_counter() - self._started
                    )
                yield token
            completed = True
        finally:
            # Exactly one owner callback per run: abandoned (close()) and
            # crashed runs discard their buffer; completed runs recycle it.
            # Without this an error mid-run would leak the checkout and
            # wedge a pool worker's slot forever.
            if completed:
                self._finalize()
            else:
                self._release.discard()

    def _finalize(self) -> None:
        assert self._started is not None  # finalize only runs via __next__
        elapsed = time.perf_counter() - self._started
        owner = self._owner
        try:
            if owner.options.strict:
                check_safety(self._buffer, self._preprojector)
        except BaseException:
            # A failed safety check means the buffer state is suspect:
            # release the checkout but do not recycle the buffer.
            self._release.discard()
            raise
        self.result = RunResult(
            output="",
            stats=self._buffer.stats,
            compiled=owner.compiled,
            elapsed_seconds=elapsed,
            exhausted_input=self._preprojector.exhausted,
            first_output_seconds=self.first_output_seconds,
        )
        self._release.finish()


class QuerySession:
    """A query compiled once, runnable over arbitrarily many documents.

    Construction runs the full static-analysis pipeline of Section 4 (or
    adopts an already-:class:`~repro.analysis.compile.CompiledQuery`);
    every :meth:`run`/:meth:`run_streaming` afterwards only spins up the
    dynamic half of Figure 11.  Per-run state is fully isolated — a
    session never leaks buffered nodes, roles, cancellations or cursor
    positions from one document into the next — so interleaved and
    repeated runs are safe.
    """

    def __init__(
        self,
        query: Query | str | CompiledQuery,
        options: EngineOptions | None = None,
        *,
        schema: Schema | None = None,
    ) -> None:
        self.options = options or EngineOptions()
        if isinstance(query, CompiledQuery):
            # Already-compiled artifacts are adopted unchanged; compile
            # with ``compile_query(..., schema=...)`` to attach a schema.
            self._compiled = query
        else:
            self._compiled = compile_query(
                query, self.options.compile_options(), schema=schema
            )
        if self.options.trust_schema:
            self._compiled = apply_trusted_constraints(self._compiled)
        #: Completed evaluations (streaming runs count on exhaustion).
        self.runs_completed = 0
        # Guards the spare-buffer slot, the shared matcher, and the
        # in-flight accounting below.  A session is a single-client object:
        # the lock makes the checkout bookkeeping race-free, and the
        # owner-thread guard turns cross-thread concurrent use into a clear
        # error instead of corrupted state (use SessionPool for that).
        self._lock = threading.Lock()
        self._active_streams = 0
        self._stream_owner: int | None = None  # thread ident
        # Abandoned runs queue their guards here from GC-safe contexts;
        # reaped (outside the lock) at the next run_streaming.
        self._dropped_runs: list = []
        # One finished buffer is kept for reuse; reset() preserves its tag
        # symbol table, so same-schema documents skip re-interning.
        self._spare_buffer: BufferTree | None = None
        # One shared matcher: its lazy-DFA transition table is document-
        # independent (append-only states + memoized transitions), so every
        # run after the first replays warm transitions.  Safe under
        # interleaved runs — per-run state lives in the preprojector frames.
        # Recycled via _acquire_matcher_locked when an adversarial document (DFA
        # states scale with match-multiset variety, e.g. nesting depth under
        # a descendant axis) inflates it past MATCHER_STATE_CAP.
        self._matcher = StreamMatcher(
            self._compiled.projection_tree,
            aggregate_roles=self.options.aggregate_roles,
        )

    @property
    def compiled(self) -> CompiledQuery:
        """The static-analysis artifacts, produced exactly once."""
        return self._compiled

    # -- evaluation -----------------------------------------------------

    def run(
        self,
        document: str | Path | Iterator[Token],
        *,
        sink: TokenSink | None = None,
        on_event: Callable[[str], None] | None = None,
    ) -> RunResult:
        """Evaluate over ``document`` (text, path, or token stream), buffered.

        With the default ``sink`` the full result text is returned in
        :attr:`RunResult.output`; pass a custom
        :class:`~repro.xmlio.serialize.TokenSink` (e.g. a
        :class:`~repro.xmlio.serialize.WriterSink` on a file) to stream
        the output elsewhere, in which case ``output`` stays empty.
        """
        stream = self.run_streaming(document, on_event=on_event)
        return drain_streaming_run(stream, sink)

    def run_streaming(
        self,
        document: str | Path | Iterator[Token],
        *,
        on_event: Callable[[str], None] | None = None,
    ) -> StreamingRun:
        """Evaluate over ``document``, yielding output tokens incrementally.

        ``document`` may be the document text, a :class:`~pathlib.Path` to
        an XML file (tokenized chunk-at-a-time with bounded memory via
        :func:`~repro.xmlio.filelexer.tokenize_file`), or any token
        iterator.  Returns a :class:`StreamingRun`; iterate it to drive the
        pipeline.  Nothing is read from the input before the first
        ``next()``.

        Interleaved streaming runs are supported *on one thread* (each run
        gets its own buffer; the shared matcher's per-run state lives in
        the run's frames).  Starting a streaming run from a second thread
        while another thread's run is in flight raises ``RuntimeError``:
        the session's checkout bookkeeping is single-client by design —
        use :class:`~repro.engine.pool.SessionPool` for concurrent serving.
        """
        buffer, matcher = self._begin_streaming_run()
        try:
            return build_streaming_run(
                self, document, buffer, matcher, on_event=on_event
            )
        except BaseException:
            # The run's release guard does not exist yet (it is the last
            # thing StreamingRun.__init__ creates), so a construction
            # failure must hand the checkout back here or the in-flight
            # accounting would wedge every other thread forever.
            self._on_run_closed(buffer)
            raise

    def _begin_streaming_run(self) -> tuple[BufferTree, StreamMatcher]:
        """Check out (buffer, matcher) for one new streaming run.

        The in-flight accounting half of :meth:`run_streaming`, shared
        with the multi-query engine (which wires its own preprojection
        before constructing the :class:`StreamingRun`).  The caller owns
        the checkout until a run's release guard exists: a construction
        failure in between must hand it back through
        :meth:`_on_run_closed` or the session wedges.
        """
        reap_dropped_runs(self)  # settle abandoned runs before the lock
        ident = threading.get_ident()
        with self._lock:
            if self._active_streams and self._stream_owner != ident:
                raise RuntimeError(
                    "QuerySession has a streaming run in flight on thread "
                    f"{self._stream_owner} (this is thread {ident}); a "
                    "session's matcher/buffer checkout is single-client.  "
                    "For concurrent evaluation share one "
                    "repro.engine.pool.SessionPool across threads, or serve "
                    "clients over the network with `gcx serve` "
                    "(repro.serve)."
                )
            self._stream_owner = ident
            self._active_streams += 1
            buffer = self._acquire_buffer_locked()
            matcher = self._acquire_matcher_locked()
        return buffer, matcher

    # -- run-owner callbacks (invoked by StreamingRun exactly once) -----

    def _on_run_finished(self, buffer: BufferTree) -> None:
        with self._lock:
            self.runs_completed += 1
            self._release_buffer_locked(buffer)
            self._leave_stream_locked()

    def _on_run_closed(self, buffer: BufferTree) -> None:
        # Abandoned/crashed run: the partially filled buffer is discarded
        # (not parked), but the in-flight accounting must still drop.
        with self._lock:
            self._leave_stream_locked()

    def _leave_stream_locked(self) -> None:
        self._active_streams -= 1
        if self._active_streams == 0:
            self._stream_owner = None

    def _acquire_matcher_locked(self) -> StreamMatcher:
        """The shared warm matcher, replaced if a past run bloated it.

        DFA states are keyed on match multisets, whose variety grows with
        input shape (a depth-N document under a descendant axis interns
        ~N states), so one adversarial document could otherwise pin memory
        for the session's lifetime.  In-flight runs keep their reference to
        the old matcher; only future runs see the fresh one.
        """
        if self._matcher.state_count > MATCHER_STATE_CAP:
            self._matcher = StreamMatcher(
                self._compiled.projection_tree,
                aggregate_roles=self.options.aggregate_roles,
            )
        return self._matcher

    # -- buffer recycling ----------------------------------------------

    def _acquire_buffer_locked(self) -> BufferTree:
        """A fresh-state buffer: the recycled spare if available, else new.

        Concurrent (interleaved) runs each get their own buffer — the spare
        slot only ever holds a buffer whose run has completed.
        """
        spare, self._spare_buffer = self._spare_buffer, None
        if spare is not None:
            return spare
        return BufferTree(self.options.cost_model, strict=self.options.strict)

    def _release_buffer_locked(self, buffer: BufferTree) -> None:
        if self._spare_buffer is None:
            # Reset before parking (not at acquire): a run that ended
            # without exhausting its input may still hold buffered nodes,
            # and an idle session must not pin a document subtree in
            # memory.  reset() keeps the tag symbol table warm.
            self._spare_buffer = buffer.reset()


def build_streaming_run(
    owner: RunOwner,
    document: str | Path | Iterator[Token],
    buffer: BufferTree,
    matcher: StreamMatcher,
    *,
    on_event: Callable[[str], None] | None = None,
) -> StreamingRun:
    """Wire the dynamic half of Figure 11 for one run.

    Shared by :class:`QuerySession` and
    :class:`~repro.engine.pool.SessionPool`: the caller has already checked
    out ``buffer`` (exclusive to this run) and ``matcher`` (shareable; its
    per-run state lives in the preprojector's frame stack), and the
    returned :class:`StreamingRun` reports back to ``owner`` exactly once.

    Schema-certified queries short-circuit the whole buffered pipeline:
    the :class:`~repro.engine.direct.DirectEvaluator` streams input tokens
    straight to output with an empty buffer (and detects schema-violating
    nesting structurally, so the output stays byte-identical either way).
    The flux-like baseline (``eager_leaf_bindings``) keeps the generic
    path — its point is to model the *buffered* push-based engine.
    """
    tokens = document_tokens(document)
    constraints = owner.compiled.constraints
    if (
        constraints is not None
        and constraints.zero_buffer is not None
        and not owner.options.eager_leaf_bindings
    ):
        from repro.engine.direct import DirectEvaluator

        direct = DirectEvaluator(
            constraints.zero_buffer,
            tokens,
            buffer.stats,
            owner.options.cost_model,
        )
        return StreamingRun(owner, buffer, direct, direct)
    preprojector = StreamPreprojector(
        tokens,
        owner.compiled.projection_tree,
        buffer,
        aggregate_roles=owner.options.aggregate_roles,
        matcher=matcher,
        accumulators=build_accumulators(owner.compiled, buffer),
    )
    evaluator = Evaluator(
        owner.compiled.rewritten,
        buffer,
        preprojector,
        None,
        aggregate_roles=owner.options.aggregate_roles,
        eager_leaf_bindings=owner.options.eager_leaf_bindings,
        earliness_sites=earliness_sites(owner.compiled, owner.options),
        single_match_loops=single_match_loops(owner.compiled, owner.options),
        join_plan=owner.compiled.joinplan if owner.options.hash_joins else None,
        on_event=on_event,
    )
    return StreamingRun(owner, buffer, preprojector, evaluator)


def build_accumulators(
    compiled: CompiledQuery, buffer: BufferTree
) -> "AccumulatorRuntime | None":
    """A fresh per-run accumulator automaton, or ``None`` without aggregates.

    Shared by every place that wires a :class:`ProjectionLane` for a
    compiled query (single-query runs here, the multi-query engine's
    per-query lanes): accumulable aggregate sites get their O(1) state fed
    by the lane's token hooks (:mod:`repro.engine.relops.aggregates`).
    """
    sites = collect_aggregate_sites(compiled.rewritten)
    if not sites:
        return None
    return AccumulatorRuntime(sites, buffer)


def earliness_sites(
    compiled: CompiledQuery, options: EngineOptions
) -> "frozenset[tuple[str, tuple]] | None":
    """The streamable output sites for one run, or ``None`` when gated off.

    ``None`` (as opposed to an empty set) switches the evaluator's
    first-witness condition handling off as well, so
    ``EngineOptions(earliness=False)`` really is the conservative engine —
    the differential suites compare the two for byte-identity and the
    ``tokens_held_before_emit`` monotonicity property.
    """
    if (
        not options.earliness
        or not options.aggregate_roles
        or options.eager_leaf_bindings
    ):
        return None
    plan = compiled.earliness
    return plan.streamable_sites if plan is not None else frozenset()


def single_match_loops(
    compiled: CompiledQuery, options: EngineOptions
) -> "frozenset[str] | None":
    """Schema-certified at-most-once loops, gated on ``trust_schema``.

    These watermarks assume the document conforms (a violating second
    match would be skipped), so — unlike the structural ``open`` and
    first-witness watermarks — they are only handed to the evaluator in
    trusted mode.  The adversarial splicing suite relies on this gate.
    """
    if options.trust_schema and earliness_sites(compiled, options) is not None:
        plan = compiled.earliness
        return plan.single_match_loops if plan is not None else frozenset()
    return None


def drain_streaming_run(
    stream: StreamingRun, sink: TokenSink | None = None
) -> RunResult:
    """Exhaust ``stream`` into ``sink`` and return its :class:`RunResult`.

    With ``sink=None`` a fresh :class:`~repro.xmlio.serialize.StringSink`
    collects the output into ``RunResult.output``; a caller-provided sink
    is neither closed nor read back (it may be reused across runs).
    """
    out = sink if sink is not None else StringSink()
    for token in stream:
        out.write(token)
    if sink is None:
        # Only close sinks this drain created; a caller-provided sink is
        # the caller's to close (it may be reused across runs).
        out.close()
    result = stream.result
    assert result is not None  # the stream was exhausted above
    if sink is None:
        # Only a sink this drain created reflects exactly this run's
        # output; a caller's sink may carry text from earlier runs.
        result.output = out.getvalue()
    return result


def check_safety(buffer: BufferTree, preprojector: StreamPreprojector) -> None:
    """Section 3's safety requirements, checked dynamically after a run.

    A correct evaluation (1) removes every role instance it assigned —
    cancellations accounted separately — and (2) leaves the buffer empty
    once the input is exhausted.  Violations indicate a bug in the static
    analysis or the garbage collector and raise ``AssertionError``.
    """
    stats = buffer.stats
    if not stats.role_accounting_balanced():
        raise AssertionError(
            "role accounting unbalanced: "
            f"{stats.roles_assigned} assigned != {stats.roles_removed} removed "
            f"({stats.roles_cancelled} cancelled separately)"
        )
    if stats.live_role_instances != 0:
        raise AssertionError(
            f"{stats.live_role_instances} role instances left after evaluation"
        )
    if buffer.document.subtree_roles != 0:
        raise AssertionError("buffer still carries roles after evaluation")
    if preprojector.exhausted and not buffer.is_empty():
        raise AssertionError(
            "input exhausted but the buffer is not empty:\n"
            + "\n".join(buffer.format_contents())
        )
