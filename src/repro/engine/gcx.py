"""The GCX engine: static analysis + streaming runtime (Figure 11).

``GCXEngine.run`` wires the three components of the paper's architecture
together — query evaluator, buffer manager, stream preprojector — and
returns the query result along with the buffer statistics that the
benchmarks report.

Engine options map one-to-one onto the paper's Section 6 optimizations,
with everything on by default ("our prototype was implemented exactly as
described in this paper").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.compile import CompiledQuery, CompileOptions, compile_query
from repro.buffer.buffer import BufferTree
from repro.buffer.stats import BufferCostModel, BufferStats
from repro.engine.evaluator import Evaluator
from repro.stream.preprojector import StreamPreprojector
from repro.xmlio.lexer import tokenize
from repro.xmlio.serialize import StringSink
from repro.xmlio.tokens import Token
from repro.xquery.ast import Query

__all__ = ["EngineOptions", "RunResult", "GCXEngine"]


@dataclass(frozen=True)
class EngineOptions:
    """Runtime and analysis switches (Section 6 optimizations + strictness)."""

    aggregate_roles: bool = True
    early_updates: bool = True
    eliminate_redundant_roles: bool = True
    eager_leaf_bindings: bool = False  # push-based (flux-like) reading
    strict: bool = True  # raise on undefined role removals / unbalanced roles
    cost_model: BufferCostModel = field(default_factory=BufferCostModel)

    def compile_options(self) -> CompileOptions:
        return CompileOptions(
            early_updates=self.early_updates,
            eliminate_redundant=self.eliminate_redundant_roles,
        )


@dataclass
class RunResult:
    """The outcome of one query evaluation."""

    output: str
    stats: BufferStats
    compiled: CompiledQuery
    elapsed_seconds: float
    exhausted_input: bool

    @property
    def hwm_bytes(self) -> int:
        return self.stats.hwm_bytes_modelled

    @property
    def hwm_nodes(self) -> int:
        return self.stats.hwm_nodes


class GCXEngine:
    """Streaming XQuery evaluation with active garbage collection."""

    name = "gcx"
    description = "combined static + dynamic analysis (this paper)"
    supports_descendant = True

    def __init__(self, options: EngineOptions | None = None) -> None:
        self.options = options or EngineOptions()

    def compile(self, query: Query | str) -> CompiledQuery:
        return compile_query(query, self.options.compile_options())

    def run(
        self,
        query: Query | str | CompiledQuery,
        document: str | Iterator[Token],
        *,
        on_event: Callable[[str], None] | None = None,
    ) -> RunResult:
        """Evaluate ``query`` over ``document`` (text or a token stream)."""
        compiled = query if isinstance(query, CompiledQuery) else self.compile(query)
        tokens = tokenize(document) if isinstance(document, str) else document
        buffer = BufferTree(self.options.cost_model, strict=self.options.strict)
        preprojector = StreamPreprojector(
            tokens,
            compiled.projection_tree,
            buffer,
            aggregate_roles=self.options.aggregate_roles,
        )
        sink = StringSink()
        evaluator = Evaluator(
            compiled.rewritten,
            buffer,
            preprojector,
            sink,
            aggregate_roles=self.options.aggregate_roles,
            eager_leaf_bindings=self.options.eager_leaf_bindings,
            on_event=on_event,
        )
        started = time.perf_counter()
        evaluator.run()
        elapsed = time.perf_counter() - started
        if self.options.strict:
            self._check_safety(buffer, preprojector)
        return RunResult(
            output=sink.getvalue(),
            stats=buffer.stats,
            compiled=compiled,
            elapsed_seconds=elapsed,
            exhausted_input=preprojector.exhausted,
        )

    # ------------------------------------------------------------------

    def _check_safety(self, buffer: BufferTree, preprojector) -> None:
        """Section 3's safety requirements, checked dynamically."""
        stats = buffer.stats
        if not stats.role_accounting_balanced():
            raise AssertionError(
                "role accounting unbalanced: "
                f"{stats.roles_assigned} assigned != {stats.roles_removed} removed "
                f"({stats.roles_cancelled} cancelled separately)"
            )
        if stats.live_role_instances != 0:
            raise AssertionError(
                f"{stats.live_role_instances} role instances left after evaluation"
            )
        if buffer.document.subtree_roles != 0:
            raise AssertionError("buffer still carries roles after evaluation")
        if preprojector.exhausted and not buffer.is_empty():
            raise AssertionError(
                "input exhausted but the buffer is not empty:\n"
                + "\n".join(buffer.format_contents())
            )
