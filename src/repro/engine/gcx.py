"""The GCX engine: static analysis + streaming runtime (Figure 11).

:class:`GCXEngine` is the user-facing front door to the paper's
architecture.  It delegates all evaluation to
:class:`~repro.engine.session.QuerySession`, which separates the two
phases cleanly:

* ``compile`` / ``session`` run the static analysis (Sections 3–4 and the
  Section 6 rewritings) exactly once per query;
* ``run_streaming`` evaluates over one document, yielding output tokens
  incrementally while the evaluator pulls input on demand and active
  garbage collection bounds the buffer (Sections 5–6);
* ``run`` is the buffered convenience wrapper that joins the stream into a
  :class:`~repro.xmlio.serialize.TokenSink` and returns a
  :class:`~repro.engine.session.RunResult` with the buffer statistics the
  benchmarks report.

Engine options map one-to-one onto the paper's Section 6 optimizations,
with everything on by default ("our prototype was implemented exactly as
described in this paper").
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.analysis.compile import CompiledQuery, compile_query
from repro.analysis.schema import Schema
from repro.engine.session import (
    EngineOptions,
    QuerySession,
    RunResult,
    StreamingRun,
)
from repro.xmlio.serialize import TokenSink
from repro.xmlio.tokens import Token
from repro.xquery.ast import Query

__all__ = [
    "EngineOptions",
    "RunResult",
    "StreamingRun",
    "QuerySession",
    "GCXEngine",
]


class GCXEngine:
    """Streaming XQuery evaluation with active garbage collection.

    The engine object is cheap and stateless apart from its options; all
    per-query state lives in the :class:`QuerySession` it creates.  For
    one-shot evaluation use :meth:`run`; to amortize static analysis over
    many documents obtain a session with :meth:`session`; for bounded
    output memory consume :meth:`run_streaming`.
    """

    name = "gcx"
    description = "combined static + dynamic analysis (this paper)"
    supports_descendant = True

    def __init__(self, options: EngineOptions | None = None) -> None:
        self.options = options or EngineOptions()

    def compile(
        self, query: Query | str, *, schema: Schema | None = None
    ) -> CompiledQuery:
        """Run the static analysis only (Sections 3–4), no evaluation.

        With ``schema`` the schema-constraint pass runs too and its proofs
        land on ``CompiledQuery.constraints``.
        """
        return compile_query(
            query, self.options.compile_options(), schema=schema
        )

    def session(
        self,
        query: Query | str | CompiledQuery,
        *,
        schema: Schema | None = None,
    ) -> QuerySession:
        """Compile ``query`` once into a reusable :class:`QuerySession`."""
        return QuerySession(query, self.options, schema=schema)

    def run(
        self,
        query: Query | str | CompiledQuery,
        document: str | Iterator[Token],
        *,
        schema: Schema | None = None,
        sink: TokenSink | None = None,
        on_event: Callable[[str], None] | None = None,
    ) -> RunResult:
        """Evaluate ``query`` over ``document`` (text or a token stream).

        A thin wrapper: compiles (unless given a ``CompiledQuery``), then
        joins the output stream into ``sink`` (default: an in-memory
        :class:`~repro.xmlio.serialize.StringSink`, whose text lands in
        ``RunResult.output``).
        """
        return self.session(query, schema=schema).run(
            document, sink=sink, on_event=on_event
        )

    def run_streaming(
        self,
        query: Query | str | CompiledQuery,
        document: str | Iterator[Token],
        *,
        schema: Schema | None = None,
        on_event: Callable[[str], None] | None = None,
    ) -> StreamingRun:
        """Evaluate ``query`` over ``document``, yielding tokens as produced.

        Returns a :class:`~repro.engine.session.StreamingRun`; its
        ``result`` attribute carries the statistics once the iterator is
        exhausted.  The first token is available as soon as the evaluator
        decides it — before the input stream is fully consumed.
        """
        return self.session(query, schema=schema).run_streaming(
            document, on_event=on_event
        )
