"""O(1) aggregate accumulators for ``count``/``sum``/``avg``.

A naive reading of Definition 2 would give ``count($x/path)`` a
``path/dos::node()`` dependency and buffer every matched subtree until the
aggregate is evaluated.  The accumulator replaces that buffering with a
constant-size state per binding of ``$x``: the projection lane feeds every
open/text/close token through a small path automaton, and by the time the
binding's subtree is finished the state holds the aggregate outright.

The automaton runs per lane and per *group* — a distinct ``(var, path)``
navigated by some aggregate call.  It mirrors the evaluator's witness
semantics exactly (``_iter_path`` counts path *matches*, so a node
reachable two ways counts twice):

* A *frame* is created whenever a binding of ``var`` opens (the anchor).
  Its aggregate state ``[count, total, numeric_n]`` lives on the anchor's
  :class:`~repro.buffer.node.BufferNode` (the ``acc`` dict), where the
  evaluator reads it after the subtree is finished.
* Each open element extends every live frame with a vector ``cnt[0..k]``
  / ``cum[0..k]``: ``cnt[i]`` is the number of ways this element matches
  the path prefix of length ``i`` (``cnt[0] = 1`` only at the anchor
  itself), ``cum[i]`` accumulates ``cnt[i]`` over the element's ancestor
  chain.  Child steps read the parent's ``cnt``, descendant steps the
  parent's ``cum``.  A frame whose vector can no longer contribute is
  dropped, so the per-depth work is bounded by the number of live frames.
* A terminal element match credits ``cnt[k]`` to the count and — for
  ``sum``/``avg`` — opens a *capture* that collects the subtree's text
  (its string value) until the element closes.  A terminal ``text()``
  match credits the text node directly.

Non-numeric values are ignored by ``sum``/``avg`` (tracked by
``numeric_n``), matching the evaluator's comparison semantics of trying
``float()`` first.

Paths carrying positional predicates (``[1]``/``[last()]``) fall outside
the automaton; :func:`accumulable` rejects them and the analysis keeps a
real buffered dependency instead (see ``repro.analysis.dependencies``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buffer.buffer import BufferTree
from repro.buffer.node import BufferNode
from repro.xquery.ast import ROOT_VAR, Aggregate, Query, walk
from repro.xquery.paths import Axis, Path

__all__ = [
    "AccSite",
    "AccumulatorRuntime",
    "accumulable",
    "collect_aggregate_sites",
    "format_number",
]


@dataclass(frozen=True, slots=True)
class AccSite:
    """One accumulator group: a distinct ``(var, path)`` some aggregate
    navigates.  ``needs_values`` is true when any call on this path is
    ``sum``/``avg`` (text must be captured, not just counted)."""

    var: str
    path: Path
    needs_values: bool


def accumulable(path: Path) -> bool:
    """Can ``path`` be served by the accumulator automaton?"""
    return not any(step.first or step.last for step in path)


def collect_aggregate_sites(query: Query) -> list[AccSite]:
    """The deduplicated accumulator groups of a (rewritten) query."""
    needs: dict[tuple[str, Path], bool] = {}
    for expr in walk(query.root):
        if isinstance(expr, Aggregate) and accumulable(expr.path):
            key = (expr.var, expr.path)
            needs[key] = needs.get(key, False) or expr.func in ("sum", "avg")
    return [
        AccSite(var=var, path=path, needs_values=nv)
        for (var, path), nv in needs.items()
    ]


def format_number(value: float) -> str:
    """Render an aggregate value (whole numbers without the ``.0``)."""
    if value != value or value in (float("inf"), float("-inf")):
        return repr(value)
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Frame:
    """One (group, anchor) vector at one stack entry."""

    __slots__ = ("gi", "state", "cnt", "cum")

    def __init__(self, gi: int, state: list, cnt: list, cum: list) -> None:
        self.gi = gi
        self.state = state
        self.cnt = cnt
        self.cum = cum


class AccumulatorRuntime:
    """The per-lane accumulator automaton.

    The projection lane calls :meth:`on_open` / :meth:`on_text` /
    :meth:`on_close` for every token it observes (the compile-time acc
    chains guarantee the matcher keeps relevant subtrees alive, see
    ``repro.analysis.projection_tree.attach_aggregate_chains``).
    """

    __slots__ = ("_groups", "_var_groups", "_stack", "_captures", "_stats")

    def __init__(self, sites: list[AccSite], buffer: BufferTree) -> None:
        self._groups = list(sites)
        self._var_groups: dict[str, list[int]] = {}
        for gi, group in enumerate(self._groups):
            self._var_groups.setdefault(group.var, []).append(gi)
        self._stats = buffer.stats
        self._captures: list[list] = []  # [depth, state, m, parts]
        base: list[_Frame] = []
        # $root frames exist from the start; their anchor is the document
        # node, which matches only the empty prefix (it is not an element).
        for gi in self._var_groups.get(ROOT_VAR, ()):
            group = self._groups[gi]
            k = len(group.path)
            cnt = [0] * (k + 1)
            cum = [0] * (k + 1)
            cnt[0] = cum[0] = 1
            base.append(_Frame(gi, self._state_of(buffer.document, group), cnt, cum))
        self._stack: list[list[_Frame]] = [base]

    # -- state bootstrap -------------------------------------------------

    def _state_of(self, anchor: BufferNode, group: AccSite) -> list:
        acc = anchor.acc
        if acc is None:
            acc = anchor.acc = {}
        key = (group.var, group.path)
        state = acc.get(key)
        if state is None:
            state = acc[key] = [0, 0.0, 0]  # count, total, numeric_n
        return state

    # -- token hooks -----------------------------------------------------

    def on_open(self, tag: str, matches, buffer_node: BufferNode | None) -> None:
        parent = self._stack[-1]
        entry: list[_Frame] = []
        depth = len(self._stack) + 1
        credits = 0
        for frame in parent:
            group = self._groups[frame.gi]
            credits += self._extend(
                entry, group, frame.gi, frame.state, frame.cnt, frame.cum, 0,
                tag, depth,
            )
        # Seed frames for bindings opening at this element.
        if matches and buffer_node is not None:
            for pt_node in matches:
                var = pt_node.var
                if var is None:
                    continue
                for gi in self._var_groups.get(var, ()):
                    group = self._groups[gi]
                    k = len(group.path)
                    zeros = [0] * (k + 1)
                    credits += self._extend(
                        entry, group, gi, self._state_of(buffer_node, group),
                        zeros, zeros, 1, tag, depth,
                    )
        self._stack.append(entry)
        if credits:
            self._stats.acc_updates += credits

    def _extend(
        self,
        entry: list[_Frame],
        group: AccSite,
        gi: int,
        state: list,
        pcnt: list,
        pcum: list,
        cnt0: int,
        tag: str,
        depth: int,
    ) -> int:
        """Advance one frame through an opening element; returns credits."""
        path = group.path
        k = len(path)
        ncnt = [0] * (k + 1)
        ncum = [0] * (k + 1)
        ncnt[0] = cnt0
        ncum[0] = pcum[0] + cnt0
        for i in range(1, k + 1):
            step = path[i - 1]
            if step.axis is Axis.CHILD:
                base = pcnt[i - 1]
            elif step.axis is Axis.DESCENDANT:
                base = pcum[i - 1]
            else:  # DOS: a self-or-descendant of any prefix match so far
                base = ncum[i - 1]
            if base and step.test.matches_element(tag):
                ncnt[i] = base
            ncum[i] = pcum[i] + ncnt[i]
        m = ncnt[k]
        if m:
            state[0] += m
            if group.needs_values:
                self._captures.append([depth, state, m, []])
        if self._viable(path, ncnt, ncum):
            entry.append(_Frame(gi, state, ncnt, ncum))
        return m

    @staticmethod
    def _viable(path: Path, cnt: list, cum: list) -> bool:
        """Can this vector still produce matches deeper in the document?"""
        for i, step in enumerate(path):
            if step.axis is Axis.CHILD:
                if cnt[i]:
                    return True
            elif cum[i]:
                return True
        return False

    def on_text(self, token) -> None:
        """``token`` is a ``str`` or a :class:`~repro.xmlio.tokens.Text`;
        its content is materialized (decoded) only when some frame needs
        the value or a capture is open."""
        content: str | None = None
        credits = 0
        for frame in self._stack[-1]:
            group = self._groups[frame.gi]
            step = group.path[-1]
            if not step.test.matches_text():
                continue
            k = len(group.path)
            base = frame.cnt[k - 1] if step.axis is Axis.CHILD else frame.cum[k - 1]
            if not base:
                continue
            credits += base
            frame.state[0] += base
            if group.needs_values:
                if content is None:
                    content = token if isinstance(token, str) else token.content
                try:
                    value = float(content)
                except ValueError:
                    pass
                else:
                    frame.state[1] += base * value
                    frame.state[2] += base
        if self._captures:
            if content is None:
                content = token if isinstance(token, str) else token.content
            for capture in self._captures:
                capture[3].append(content)
        if credits:
            self._stats.acc_updates += credits

    def on_close(self) -> None:
        depth = len(self._stack)
        captures = self._captures
        while captures and captures[-1][0] == depth:
            _depth, state, m, parts = captures.pop()
            try:
                value = float("".join(parts))
            except ValueError:
                continue
            state[1] += m * value
            state[2] += m
        self._stack.pop()
