"""Streaming relational operators on top of the GCX buffer.

Two operators widen what the engine can evaluate without abandoning the
streaming discipline of the paper:

* :mod:`repro.engine.relops.aggregates` — O(1) accumulators that replace
  the buffered subtrees a naive reading of Definition 2 would keep for
  ``count``/``sum``/``avg`` calls.  The projection lane feeds them token
  by token; the evaluator reads one finished state per binding.
* :mod:`repro.engine.relops.hashjoin` — a value-keyed index over a
  buffered axis step, turning the O(n·m) nested-loop shape of
  value-based joins (XMark Q8/Q9) into an O(n+m) build/probe pair.
  Eviction is driven by the buffer's own garbage collection, so the
  index never outlives the signoff-managed data it points at.

See docs/JOINS.md for the design discussion.
"""

from repro.engine.relops.aggregates import (
    AccSite,
    AccumulatorRuntime,
    accumulable,
    collect_aggregate_sites,
    format_number,
)
from repro.engine.relops.hashjoin import JoinIndex, canon_key

__all__ = [
    "AccSite",
    "AccumulatorRuntime",
    "JoinIndex",
    "accumulable",
    "canon_key",
    "collect_aggregate_sites",
    "format_number",
]
