"""A value-keyed hash index over a buffered axis step.

XMark Q8/Q9 compare every person against every closed auction — the
rewritten query is a nested loop whose inner iterations all test one
syntactically identical equi-condition.  The join planner
(``repro.analysis.joinplan``) detects that shape at compile time; at run
time the evaluator builds one :class:`JoinIndex` over the inner axis step
and probes it per outer binding, replacing O(n·m) condition evaluations
with an O(n+m) build/probe pair.

Correctness hinges on two equivalences:

* :func:`canon_key` mirrors the evaluator's ``=`` comparison exactly:
  operands that parse as floats compare numerically, everything else
  compares as strings.  NaN never equals NaN under either scheme (each
  canonicalization produces a fresh float object, so no dict identity
  shortcut can bridge ``nan != nan``).
* The index holds *sequence numbers*, not liveness: the buffer's garbage
  collector evicts purged nodes through a purge listener, and probes skip
  nodes marked deleted — exactly the nodes the nested loop's buffered
  iteration would skip.  Probe results are yielded in document order
  (ascending ``seq``), so output is byte-identical to the nested loop.

The index is *not* charged to the buffer's byte watermark: it stores only
references to nodes whose cost is already accounted, and its own footprint
is keys — reported separately via the ``join_*`` counters on
:class:`~repro.buffer.stats.BufferStats`.
"""

from __future__ import annotations

from repro.buffer.node import BufferNode

__all__ = ["JoinIndex", "canon_key"]


def canon_key(value: str) -> tuple:
    """Canonicalize a comparison value the way ``=`` compares it."""
    try:
        return ("n", float(value))
    except ValueError:
        return ("s", value)


class JoinIndex:
    """Equi-join index: canonical key -> buffered nodes, in document order."""

    __slots__ = ("entries", "buckets")

    def __init__(self) -> None:
        #: Live indexed nodes by sequence number; the purge listener pops
        #: entries here, buckets are cleaned lazily at probe time.
        self.entries: dict[int, BufferNode] = {}
        self.buckets: dict[tuple, list[int]] = {}

    def add(self, node: BufferNode, keys) -> int:
        """Index ``node`` under every key in ``keys``; returns #keys."""
        added = 0
        self.entries[node.seq] = node
        buckets = self.buckets
        for key in keys:
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [node.seq]
            else:
                bucket.append(node.seq)
            added += 1
        return added

    def evict(self, seq: int) -> None:
        self.entries.pop(seq, None)

    def probe(self, keys) -> list[BufferNode]:
        """All live indexed nodes sharing a key, in document order."""
        entries = self.entries
        seqs: set[int] = set()
        for key in keys:
            bucket = self.buckets.get(key)
            if bucket:
                seqs.update(bucket)
        result = []
        for seq in sorted(seqs):
            node = entries.get(seq)
            if node is not None and not node.marked_deleted:
                result.append(node)
        return result
