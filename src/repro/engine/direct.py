"""The zero-buffer direct runner for schema-certified queries.

When the schema-constraint pass (:mod:`repro.analysis.schema_constraints`)
certifies a query — a single for-loop chain whose body emits one item per
binding, over a schema that proves chain matches cannot nest — the whole
evaluation collapses to a single streaming pass: every input token either
belongs to the current match (and is transformed straight into output) or
to none (and is dropped by projection).  The buffer stays empty, so the
high watermark of a certified run on a conforming document is **zero**.

The certificate promises non-nesting only for *conforming* documents, and
the engine's contract is byte-identical output on every document.  The
runner therefore never trusts the certificate blindly: it detects nested
chain matches structurally (a second match opening while one is being
streamed) and falls back to buffering just those matches — each nested
match's subtree is captured and replayed through the body emitter after
the enclosing match closes, which is exactly the document-order output the
buffered engine produces.  Fallback captures are charged to the run's
:class:`~repro.buffer.stats.BufferStats` under the same cost model as
buffered nodes, so the reported high watermark stays honest, and
``schema_fallbacks`` counts the matches that needed it.

:class:`DirectEvaluator` plays both dynamic-phase parts of Figure 11 at
once — it is the evaluator (``iter_tokens``) *and* the preprojector stand-
in (``exhausted``) of its :class:`~repro.engine.session.StreamingRun`.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.schema_constraints import ZeroBufferPlan
from repro.buffer.stats import BufferCostModel, BufferStats
from repro.xmlio.tokens import EndTag, StartTag, Token
from repro.xquery.paths import Axis, Path, Step, TestKind

__all__ = ["DirectEvaluator"]


class _SubtreeEmitter:
    """Body emitter for ``{$x}`` bodies: the match subtree, verbatim."""

    __slots__ = ()

    def feed(self, token: Token) -> tuple[Token, ...]:
        return (token,)


class _PathEmitter:
    """Body emitter for ``{$x/path}`` bodies (child-axis steps only).

    Tracks, per open element inside the match, whether its tag chain
    matches a prefix of the output path; a full element match copies the
    element's subtree, a ``text()`` final step emits matching text nodes.
    Child-axis paths address fixed relative depths, so output matches can
    never nest and one copy window suffices.
    """

    __slots__ = ("_path", "_k", "_stack", "_copy_depth")

    def __init__(self, path: Path) -> None:
        self._path = path
        self._k = len(path)
        self._stack: list[bool] = []  # matched-through flags, [0] = binding
        self._copy_depth: int | None = None

    def feed(self, token: Token) -> tuple[Token, ...]:
        stack = self._stack
        if isinstance(token, StartTag):
            if self._copy_depth is not None:
                stack.append(False)
                return (token,)
            level = len(stack)  # binding element is level 0
            if level == 0:
                matched = True
            else:
                matched = (
                    level <= self._k
                    and stack[-1]
                    and self._path[level - 1].test.matches_element(token.tag)
                )
            stack.append(matched)
            if matched and level == self._k:
                self._copy_depth = level
                return (token,)
            return ()
        if isinstance(token, EndTag):
            level = len(stack) - 1
            stack.pop()
            if self._copy_depth is not None:
                emitted = (token,)
                if level == self._copy_depth:
                    self._copy_depth = None
                    return emitted
                return emitted
            return ()
        # Text: matched when its parent matched through all element steps
        # and the final step is text().
        if self._copy_depth is not None:
            return (token,)
        if (
            len(stack) == self._k
            and stack
            and stack[-1]
            and self._path[self._k - 1].test.kind is TestKind.TEXT
        ):
            return (token,)
        return ()


def _make_emitter(plan: ZeroBufferPlan):
    if plan.kind == "subtree":
        return _SubtreeEmitter()
    return _PathEmitter(plan.body_path)


class _PendingMatch:
    """A nested chain match captured on the structural fallback path.

    ``entries`` records, per captured token, the modelled cost charged for
    it (zero for close tags) so the flush can refund exactly what the
    capture charged, and the ``tokens_read`` count at capture time so the
    flush can account how long the token was held before emission
    (``BufferStats.tokens_held_before_emit``).
    """

    __slots__ = ("depth", "entries")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.entries: list[tuple[Token, int, int]] = []  # (token, cost, born)


class DirectEvaluator:
    """Single-pass evaluation of a :class:`ZeroBufferPlan` over a stream.

    The chain is run as an NFA over open tags with one state set per open
    element (state *i* = the first *i* chain steps matched); a full-state
    entry marks a binding match.  The first match with no match in flight
    streams its body output live; matches opening inside it (schema
    violations) are captured and replayed in document order once it
    closes.
    """

    def __init__(
        self,
        plan: ZeroBufferPlan,
        tokens: Iterator[Token],
        stats: BufferStats,
        cost_model: BufferCostModel,
    ) -> None:
        self._plan = plan
        self._tokens = tokens
        self._stats = stats
        self._cost = cost_model
        self.exhausted = False

    # -- chain NFA -------------------------------------------------------

    def _transition(self, states: frozenset[int], tag: str) -> frozenset[int]:
        chain = self._plan.chain
        full = len(chain)
        out = set()
        for state in states:
            if state == full:
                # No step beyond the last; descendant re-entry happens from
                # the persisting state below the full state, not from it.
                continue
            step: Step = chain[state]
            if step.test.matches_element(tag):
                out.add(state + 1)
            if step.axis is Axis.DESCENDANT:
                out.add(state)
        return frozenset(out)

    # -- output ----------------------------------------------------------

    def iter_tokens(self) -> Iterator[Token]:
        plan = self._plan
        stats = self._stats
        full = len(plan.chain)
        wrapper_open = tuple(StartTag(tag) for tag in plan.wrappers)
        wrapper_close = tuple(EndTag(tag) for tag in reversed(plan.wrappers))

        for tag in plan.envelope:
            yield StartTag(tag)

        state_stack: list[frozenset[int]] = [frozenset({0})]
        head_depth: int | None = None  # stack depth of the streaming match
        emitter = None
        pending: list[_PendingMatch] = []  # capture order = document order
        open_pending: list[_PendingMatch] = []

        for token in self._tokens:
            stats.tokens_read += 1
            if isinstance(token, StartTag):
                nxt = self._transition(state_stack[-1], token.tag)
                state_stack.append(nxt)
                is_match = full in nxt
                if head_depth is None:
                    if is_match:
                        head_depth = len(state_stack)
                        emitter = _make_emitter(plan)
                        yield from wrapper_open
                        yield from emitter.feed(token)
                    else:
                        stats.nodes_dropped += 1
                    continue
                if is_match:
                    # Nested match: the certificate said this cannot happen
                    # on conforming input — capture it for replay.
                    stats.schema_fallbacks += 1
                    match = _PendingMatch(len(state_stack))
                    pending.append(match)
                    open_pending.append(match)
                cost = self._cost.element_cost()
                for match in open_pending:
                    match.entries.append((token, cost, stats.tokens_read))
                    stats.on_create(cost)
                yield from emitter.feed(token)
            elif isinstance(token, EndTag):
                depth = len(state_stack)
                state_stack.pop()
                if head_depth is None:
                    continue
                for match in open_pending:
                    match.entries.append((token, 0, stats.tokens_read))
                if open_pending and open_pending[-1].depth == depth:
                    open_pending.pop()
                yield from emitter.feed(token)
                if depth == head_depth:
                    # The streaming match closed: replay captured nested
                    # matches in the order they opened (document order,
                    # which is what the buffered engine emits).
                    head_depth = None
                    emitter = None
                    yield from wrapper_close
                    for match in pending:
                        replay = _make_emitter(plan)
                        yield from wrapper_open
                        for captured, cost, born in match.entries:
                            stats.tokens_held_before_emit += (
                                stats.tokens_read - born
                            )
                            yield from replay.feed(captured)
                            if cost:
                                stats.on_purge(cost)
                        yield from wrapper_close
                    pending.clear()
            else:  # Text (or CData)
                if head_depth is None:
                    stats.nodes_dropped += 1
                    continue
                cost = self._cost.text_cost(token.content)
                for match in open_pending:
                    match.entries.append((token, cost, stats.tokens_read))
                    stats.on_create(cost)
                yield from emitter.feed(token)

        self.exhausted = True
        for tag in reversed(plan.envelope):
            yield EndTag(tag)
