"""Network serving benchmark: ``gcx serve`` under concurrent client load.

Where :mod:`repro.bench.concurrency` measures the pool *inside* the
process, this measures the whole serving path the ROADMAP's north star
cares about: real sockets, NDJSON framing, the thread-to-loop fragment
bridge, and per-connection backpressure.  N scripted clients connect to
an in-process :class:`~repro.serve.testing.ServerFixture`, register the
same standing query (so all of them share one compiled
:class:`~repro.engine.pool.SessionPool`), and pump the request batch of
:func:`~repro.bench.concurrency.serving_documents` through it.

Two numbers per client count:

* ``docs_per_second`` — aggregate throughput over the batch;
* ``p99 latency-to-first-byte`` — per request, measured *client-side*
  from sending the ``eval`` frame to receiving the first ``result``
  frame; the serving analogue of the engine's ``first_output_seconds``,
  now including framing, scheduling, and the wire.

Both are machine-dependent (absolute timings), so the bench gate tracks
them loosely: warnings, not failures, on foreign hardware.  Correctness
is still hard: every pass's fragments are concatenated and cross-checked
against a cold :class:`~repro.engine.gcx.GCXEngine` oracle, so this
benchmark can never pass on wrong results.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.bench.concurrency import SERVING_QUERY, serving_documents
from repro.engine.gcx import GCXEngine
from repro.serve.testing import ServerFixture

__all__ = [
    "ServingPoint",
    "ServingReport",
    "run_serving_benchmark",
    "format_serving_report",
]


@dataclass(frozen=True)
class ServingPoint:
    """One client-count configuration over the request batch."""

    clients: int
    docs: int
    seconds: float
    docs_per_second: float
    ttfb_p50_ms: float
    ttfb_p99_ms: float
    ttfb_max_ms: float


@dataclass(frozen=True)
class ServingReport:
    """The sweep over client counts, one shared server per sweep."""

    doc_bytes_avg: int
    docs_per_client: int
    points: tuple[ServingPoint, ...]

    def point(self, clients: int) -> ServingPoint:
        for point in self.points:
            if point.clients == clients:
                return point
        raise KeyError(f"no measurement for {clients} clients")


def _percentile_ms(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of raw second-samples, in milliseconds."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), int(fraction * len(ordered) + 0.5)))
    return ordered[rank - 1] * 1_000.0


def _client_worker(
    fixture: ServerFixture,
    documents: list[str],
    barrier: threading.Barrier,
    ttfbs: list[float],
    outputs: list[tuple[int, str]],
    index: int,
) -> None:
    with fixture.client(timeout=60.0) as client:
        client.register("q", SERVING_QUERY)
        barrier.wait()
        for doc_index, document in enumerate(documents):
            started = time.perf_counter()
            client.send_frame({"op": "eval", "id": "q", "doc": document})
            first: float | None = None
            fragments: list[str] = []
            while True:
                frame = client.recv_frame()
                assert frame is not None, "server closed mid-bench"
                if frame["type"] == "result":
                    if first is None:
                        first = time.perf_counter() - started
                    fragments.append(frame["fragment"])
                    continue
                assert frame["type"] == "done", frame
                break
            if first is not None:
                ttfbs.append(first)
            if doc_index == 0:
                # One oracle sample per client is enough to catch a wrong
                # result without turning the bench into a conformance run.
                outputs.append((index, "".join(fragments)))


def run_serving_benchmark(
    client_counts: tuple[int, ...] = (1, 4, 16),
    docs_per_client: int = 16,
    *,
    eval_workers: int = 4,
) -> ServingReport:
    """Measure ``gcx serve`` throughput and TTFB per client count.

    Each configuration runs against a fresh in-process server; every
    client evaluates ``docs_per_client`` documents drawn round-robin from
    the shared batch, so heavier client counts also mean more total work
    (the load scales with the offered concurrency, as it would in
    production).
    """
    documents = serving_documents(max(client_counts) * docs_per_client)
    oracle = GCXEngine()
    points: list[ServingPoint] = []
    for clients in client_counts:
        with ServerFixture(
            eval_workers=eval_workers, request_timeout=60.0
        ) as fixture:
            ttfbs: list[float] = []
            outputs: list[tuple[int, str]] = []
            barrier = threading.Barrier(clients + 1)
            assignments = [
                documents[i :: clients][:docs_per_client]
                for i in range(clients)
            ]
            threads = [
                threading.Thread(
                    target=_client_worker,
                    args=(fixture, assignments[i], barrier, ttfbs, outputs, i),
                    name=f"bench-client-{i}",
                )
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()  # all clients registered; start the clock
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            fixture.assert_clean()
        for index, output in outputs:
            expected = oracle.run(SERVING_QUERY, assignments[index][0]).output
            if output != expected:
                raise AssertionError(
                    f"serving bench produced a wrong result for client "
                    f"{index}: {output!r} != {expected!r}"
                )
        total_docs = sum(len(chunk) for chunk in assignments)
        points.append(
            ServingPoint(
                clients=clients,
                docs=total_docs,
                seconds=elapsed,
                docs_per_second=total_docs / elapsed if elapsed else 0.0,
                ttfb_p50_ms=_percentile_ms(ttfbs, 0.50),
                ttfb_p99_ms=_percentile_ms(ttfbs, 0.99),
                ttfb_max_ms=max(ttfbs, default=0.0) * 1_000.0,
            )
        )
    avg_bytes = sum(len(doc) for doc in documents) // max(len(documents), 1)
    return ServingReport(
        doc_bytes_avg=avg_bytes,
        docs_per_client=docs_per_client,
        points=tuple(points),
    )


def format_serving_report(report: ServingReport) -> str:
    lines = [
        f"serving bench: {report.docs_per_client} docs/client, "
        f"~{report.doc_bytes_avg} B/doc (XMark Q1 standing query)",
        f"{'clients':>8} {'docs':>6} {'docs/s':>9} "
        f"{'ttfb p50':>10} {'ttfb p99':>10} {'ttfb max':>10}",
    ]
    for point in report.points:
        lines.append(
            f"{point.clients:>8} {point.docs:>6} "
            f"{point.docs_per_second:>9.0f} "
            f"{point.ttfb_p50_ms:>8.2f}ms {point.ttfb_p99_ms:>8.2f}ms "
            f"{point.ttfb_max_ms:>8.2f}ms"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_serving_report(run_serving_benchmark()))
