"""Measurement plumbing for the benchmark harness.

One :class:`Measurement` corresponds to one cell of Table 1: an engine
evaluating one query over one document, reporting evaluation time and the
buffer high watermark.  ``n/a`` (query outside the engine's fragment) and
``timeout`` (the paper's one-hour limit, scaled down) are first-class
outcomes, because Table 1 contains both.

Beyond the paper's time/memory pair, each cell records the *latency to the
first output token* (``first_output_seconds``) when the engine streams its
result — the defining property of an incremental engine.  Engines that
materialize their result before emitting (the naive DOM class, static
projection) report ``None`` there.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

from repro.baselines import ENGINES, UnsupportedQueryError

__all__ = ["Measurement", "measure", "format_seconds", "format_bytes"]


@dataclass
class Measurement:
    """One cell of a benchmark table."""

    engine: str
    query: str
    doc_bytes: int
    seconds: float = 0.0
    hwm_bytes: int = 0
    hwm_nodes: int = 0
    output_bytes: int = 0
    supported: bool = True  # False -> "n/a" (like FluXQuery on Q6)
    timed_out: bool = False  # True -> "timeout" (like Galax at 200MB)
    tracemalloc_peak: int | None = None
    # Latency from run start to the first output token; None for engines
    # that buffer the whole result before emitting.
    first_output_seconds: float | None = None

    @property
    def cell(self) -> str:
        """Render like the paper: ``0.18s / 1.2MB``."""
        if not self.supported:
            return "n/a"
        if self.timed_out:
            return "timeout"
        return f"{format_seconds(self.seconds)} / {format_bytes(self.hwm_bytes)}"


def measure(
    engine_name: str,
    query_text: str,
    document: str,
    *,
    with_tracemalloc: bool = False,
) -> Measurement:
    """Run one engine over one document and collect the Table 1 cell."""
    result = Measurement(
        engine=engine_name, query="", doc_bytes=len(document.encode())
    )
    engine = ENGINES[engine_name]()
    try:
        compiled = engine.compile(query_text)
    except UnsupportedQueryError:
        result.supported = False
        return result
    if with_tracemalloc:
        tracemalloc.start()
    started = time.perf_counter()
    run = engine.run(compiled, document)
    result.seconds = time.perf_counter() - started
    if with_tracemalloc:
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        result.tracemalloc_peak = peak
    result.hwm_bytes = run.hwm_bytes
    result.hwm_nodes = run.hwm_nodes
    result.output_bytes = len(run.output.encode())
    result.first_output_seconds = getattr(run, "first_output_seconds", None)
    return result


def format_seconds(seconds: float) -> str:
    """Seconds like the paper: ``0.18s`` below a minute, ``mm:ss`` above."""
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, rest = divmod(int(round(seconds)), 60)
    return f"{minutes:02d}:{rest:02d}"


def format_bytes(count: int) -> str:
    """Bytes with a binary-unit suffix like the paper's tables: ``1.2MB``."""
    if count >= 1 << 30:
        return f"{count / (1 << 30):.2f}GB"
    if count >= 1 << 20:
        return f"{count / (1 << 20):.1f}MB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.1f}KB"
    return f"{count}B"
