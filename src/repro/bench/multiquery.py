"""Multi-query benchmark: one shared scan vs K sequential session runs.

The serving scenario is the ROADMAP's "many standing queries, same
stream": K compiled queries must be answered over the same document.  Two
ways to do it:

* **sequential** — one warm :class:`~repro.engine.session.QuerySession`
  run per query: K full tokenizer scans, K full projection passes;
* **shared** — one :class:`~repro.engine.multi.MultiQuerySession` pass:
  the document is tokenized *once* and the bitmask dispatcher routes each
  token only to the queries whose region it lies in.

``speedup`` is the sequential total over the shared-pass time.  Both
sides use warm sessions (compilation amortized), so the entire gain is
what the tentpole claims: scan amortization plus routing — per-query
*evaluation* work does not shrink, which bounds the speedup well below
K.  The report also carries the **single-scan invariant**: the shared
pass's token count must equal one plain tokenizer scan of the document,
not K of them; the benchmark gate fails machine-independently if it ever
does not.

The K=8 mix is the eight golden XMark queries Q1, Q6, Q8, Q9, Q13, Q15,
Q17 and Q20.  Q8 and Q9 were originally excluded — their nested-loop
joins were quadratic in the document and dominated both sides of the
ratio — but the hash-join dispatch (docs/JOINS.md) makes them O(n+m), so
they are back in the standing set; the two filler queries that replaced
them (Europe items, open-auction reserves) remain available as module
constants for ad-hoc mixes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.multi import MultiQuerySession
from repro.engine.session import QuerySession
from repro.xmark.queries import XMARK_QUERIES
from repro.xmlio.lexer import tokenize

__all__ = [
    "MULTIQUERY_MIX",
    "MultiQueryReport",
    "run_multiquery_benchmark",
    "format_multiquery_report",
]

#: Two extra standing queries completing the K=8 serving mix (same
#: adaptation rules as Section 7: single-step for-loops, no attributes).
EUROPE_ITEMS_QUERY = """
<eu-items>{
  for $s in /site return
  for $r in $s/regions return
  for $e in $r/europe return
  for $i in $e/item return
    <item>{$i/name/text()}</item>
}</eu-items>
"""

OPEN_AUCTION_RESERVES_QUERY = """
<reserves>{
  for $s in /site return
  for $oa in $s/open_auctions return
  for $a in $oa/open_auction return
    <r>{$a/reserve/text()}</r>
}</reserves>
"""

#: The benchmarked standing set, in evaluation order (hash joins make the
#: Q8/Q9 members linear, so they no longer drown the scan amortization).
MULTIQUERY_MIX: dict[str, str] = {
    name: XMARK_QUERIES[name].adapted
    for name in ("Q1", "Q6", "Q8", "Q9", "Q13", "Q15", "Q17", "Q20")
}


@dataclass(frozen=True)
class MultiQueryReport:
    """The measurement of one shared pass against its sequential baseline."""

    query_count: int
    doc_bytes: int
    document_tokens: int
    sequential_seconds: float
    shared_seconds: float
    shared_tokens_read: int
    dispatched_tokens: int
    peak_live_nodes: int
    peak_live_bytes: int

    @property
    def speedup(self) -> float:
        """Sequential total over shared-pass time (the gated ratio)."""
        return self.sequential_seconds / self.shared_seconds

    @property
    def single_scan(self) -> bool:
        """Did the shared pass read exactly one document scan of tokens?"""
        return self.shared_tokens_read == self.document_tokens

    @property
    def route_share(self) -> float:
        """Lane dispatches as a share of feeding every token to every query."""
        return self.dispatched_tokens / (
            self.document_tokens * self.query_count
        )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_multiquery_benchmark(
    document: str,
    queries: dict[str, str] | None = None,
    repeats: int = 3,
) -> MultiQueryReport:
    """Measure K warm sequential runs vs one shared pass over ``document``.

    Outputs are cross-checked first — byte-for-byte, query by query — so
    the benchmark can never pass on diverging results.
    """
    queries = queries if queries is not None else MULTIQUERY_MIX
    sessions = {name: QuerySession(text) for name, text in queries.items()}
    multi = MultiQuerySession(queries)

    expected = {
        name: session.run(document).output  # also warms matcher + buffers
        for name, session in sessions.items()
    }
    shared_results = multi.run(document)
    for name, result in shared_results.items():
        if result.output != expected[name]:
            raise AssertionError(
                f"shared pass diverged from the sequential run on {name}"
            )

    def run_sequential() -> None:
        for session in sessions.values():
            session.run(document)

    def run_shared() -> None:
        for _pair in multi.run_streaming(document):
            pass

    sequential_seconds = _best_of(run_sequential, repeats)
    shared_seconds = _best_of(run_shared, repeats)

    # One instrumented pass for the scan/routing telemetry (deterministic
    # across passes, so it does not need to be the timed one).
    stream = multi.run_streaming(document)
    for _pair in stream:
        pass
    stats = stream.stats
    document_tokens = sum(1 for _token in tokenize(document))
    return MultiQueryReport(
        query_count=len(queries),
        doc_bytes=len(document),
        document_tokens=document_tokens,
        sequential_seconds=sequential_seconds,
        shared_seconds=shared_seconds,
        shared_tokens_read=stats.tokens_read,
        dispatched_tokens=stats.dispatched_tokens,
        peak_live_nodes=stats.peak_live_nodes,
        peak_live_bytes=stats.peak_live_bytes,
    )


def format_multiquery_report(report: MultiQueryReport) -> str:
    """A small human-readable summary of one measurement."""
    scan = "one scan" if report.single_scan else "MULTIPLE SCANS"
    return "\n".join(
        [
            f"multi-query benchmark: {report.query_count} standing queries "
            f"over a {report.doc_bytes:,} byte XMark document",
            f"  sequential (K warm sessions): {report.sequential_seconds:.3f}s",
            f"  shared pass:                  {report.shared_seconds:.3f}s "
            f"({report.speedup:.2f}x)",
            f"  tokens: {report.shared_tokens_read} read ({scan}); "
            f"{report.dispatched_tokens} lane dispatches "
            f"({report.route_share:.1%} of broadcast)",
            f"  aggregate hwm: {report.peak_live_nodes} nodes / "
            f"{report.peak_live_bytes} bytes",
        ]
    )
