"""Persistent performance baselines behind the ``BENCH_*.json`` snapshots.

The ROADMAP's north star ("as fast as the hardware allows") only survives
refactors if speed is *recorded and enforced*: this module defines the quick
benchmark suite whose results are committed as ``BENCH_baseline.json`` at
the repository root, and the delta computation that ``tools/bench_gate.py``
turns into a CI pass/fail signal (see docs/PERFORMANCE.md).

Two metric classes, compared differently by the gate:

* *machine-independent* metrics — ratios and deterministic counts measured
  within one run (tokenizer speedup over the frozen reference
  implementation, matcher transition-table hit rate, buffer high watermark,
  node recycle rate).  These are stable across hosts, so regressions beyond
  the threshold FAIL the gate anywhere, including CI runners.
* *machine-dependent* metrics — absolute throughputs (MB/s, tokens/s).
  Meaningful against a baseline recorded on the same machine; on foreign
  hardware the gate reports them as warnings unless ``strict_timings`` is
  requested.

The suite is deliberately quick (one ~1 MB XMark document, a handful of
passes) so it can run on every pull request.
"""

from __future__ import annotations

import io
import json
import platform
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.concurrency import run_concurrency_benchmark
from repro.bench.multiquery import run_multiquery_benchmark
from repro.bench.serving import run_serving_benchmark
from repro.engine.session import EngineOptions, QuerySession
from repro.stream.preprojector import StreamPreprojector
from repro.buffer.buffer import BufferTree
from repro.xmark.generator import generate_xmark, xmark_scale_for_bytes
from repro.xmark.queries import XMARK_QUERIES
from repro.xmark.schema import xmark_schema
from repro.xmlio._reference_lexer import reference_tokenize
from repro.xmlio._str_lexer import str_tokenize
from repro.xmlio.filelexer import FileTokenizer
from repro.xmlio.lexer import tokenize

__all__ = [
    "Metric",
    "MetricDelta",
    "SCHEMA_VERSION",
    "FLOORS",
    "benchmark_document",
    "run_quick_suite",
    "save_baseline",
    "load_baseline",
    "compare",
]

SCHEMA_VERSION = 1

#: Absolute floors enforced by the gate regardless of the baseline values.
#: ``tokenizer_speedup`` is the bytes-rewrite acceptance criterion (raised
#: from the PR 3 floor of 2.0): the bytes-domain scanner must stay at
#: least three times as fast as the frozen character-stepping reference.
#: ``tokenizer_bytes_vs_str_speedup`` guards the rewrite itself — the
#: bytes scanner must never fall behind the frozen PR 3 str-domain batch
#: lexer it replaced (same algorithm, str domain), which is exactly the
#: regression a bytes port invites (``b"x" in body`` is ~6x slower than
#: its str equivalent, etc.).
#: ``multiquery_speedup_k8`` is the multi-query acceptance criterion: one
#: shared scan must serve the K=8 standing mix at least twice as fast as K
#: sequential warm sessions.  ``multiquery_single_scan`` is the shared-pass
#: invariant — 1.0 exactly when the pass read one document scan of tokens
#: (not K); any extra read drops it to 0.0 and fails the gate on any host.
#: ``schema_hwm_reduction`` is the schema-constraint-pass acceptance
#: criterion: across the golden XMark queries, compiling with the XMark
#: DTD must cut the buffer high watermark by at least 1.2x on at least
#: two queries (the metric is the *second-largest* per-query reduction,
#: so one lucky query cannot carry the gate).  Zero-buffer-certified
#: queries (Q6, Q15) clear it by orders of magnitude.
#: ``tokens_held_reduction`` is the earliness-pass acceptance criterion
#: (docs/EARLINESS.md), built the same second-largest way: with the pass
#: on, at least two golden queries must hold output tokens in the buffer
#: at least 1.2x less long than the conservative engine — while the
#: outputs stay byte-identical, which the suite asserts as it measures.
#: ``join_speedup`` is the streaming-relational acceptance criterion
#: (docs/JOINS.md): XMark Q8 through the hash build/probe operator must
#: run at least twice as fast as the same query through the nested-loop
#: path (``hash_joins=False``) — while the outputs stay byte-identical,
#: which the suite asserts as it measures.  A same-host ratio of the same
#: engine binary, so it gates machine-independently.
FLOORS: dict[str, float] = {
    "tokenizer_speedup": 3.0,
    "tokenizer_bytes_vs_str_speedup": 1.0,
    "multiquery_speedup_k8": 2.0,
    "multiquery_single_scan": 1.0,
    "schema_hwm_reduction": 1.2,
    "tokens_held_reduction": 1.2,
    "join_speedup": 2.0,
}


@dataclass(frozen=True)
class Metric:
    """One tracked performance number."""

    name: str
    value: float
    unit: str
    higher_is_better: bool = True
    #: Absolute timings vary with the host; the gate only warns on them
    #: unless strict timing comparison is requested.
    machine_dependent: bool = False


@dataclass(frozen=True)
class MetricDelta:
    """The comparison of one metric between a baseline and a fresh run."""

    name: str
    baseline: float
    fresh: float
    unit: str
    higher_is_better: bool
    machine_dependent: bool
    #: Relative change in the *bad* direction: positive means regression.
    regression: float
    below_floor: bool

    def exceeded(self, threshold: float) -> bool:
        return self.regression > threshold

    def describe(self) -> str:
        direction = "worse" if self.regression > 0 else "better"
        return (
            f"{self.name}: {self.baseline:.4g} -> {self.fresh:.4g} {self.unit} "
            f"({abs(self.regression) * 100:.1f}% {direction})"
        )


# ----------------------------------------------------------------------
# the quick suite
# ----------------------------------------------------------------------


def benchmark_document(target_bytes: int = 1_200_000, seed: int = 42) -> str:
    """A generated XMark document of at least ``target_bytes`` bytes.

    Calibrated like the Table 1 harness, then re-scaled until the result
    really meets the target (the acceptance criterion demands ≥ 1 MB).
    """
    scale = xmark_scale_for_bytes(target_bytes)
    document = generate_xmark(scale, seed=seed)
    for _attempt in range(8):
        if len(document) >= target_bytes:
            return document
        scale *= 1.1 * target_bytes / max(len(document), 1)
        document = generate_xmark(scale, seed=seed)
    raise RuntimeError(
        f"could not calibrate an XMark document to {target_bytes} bytes "
        f"(got {len(document)})"
    )


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def run_quick_suite(
    target_bytes: int = 1_200_000, seed: int = 42, repeats: int = 3
) -> dict[str, Metric]:
    """Run every quick benchmark and return the metrics by name."""
    document = benchmark_document(target_bytes, seed)
    mb = len(document) / 1e6
    metrics: dict[str, Metric] = {}

    def add(
        name: str,
        value: float,
        unit: str,
        *,
        higher_is_better: bool = True,
        machine_dependent: bool = False,
    ) -> None:
        metrics[name] = Metric(
            name, value, unit, higher_is_better, machine_dependent
        )

    # -- tokenizer: optimized vs frozen reference, same doc, same host --
    # The bytes scanner is fed raw UTF-8 (encoded once, outside the timed
    # region): that is its production diet — mmap windows from files,
    # encoded chunk uploads from the server — while the two frozen
    # oracles scan the str form they were written for.
    raw_document = document.encode("utf-8")

    def drain_new() -> None:
        for _token in tokenize(raw_document):
            pass

    def drain_reference() -> None:
        for _token in reference_tokenize(document):
            pass

    def drain_str() -> None:
        for _token in str_tokenize(document):
            pass

    # Interleave the measurements so load drift on the host biases the
    # speedup ratios as little as possible (they are the hard-gated
    # metrics).
    new_seconds = float("inf")
    reference_seconds = float("inf")
    str_seconds = float("inf")
    for _ in range(repeats + 2):
        new_seconds = min(new_seconds, _best_seconds(drain_new, 1))
        reference_seconds = min(reference_seconds, _best_seconds(drain_reference, 1))
        str_seconds = min(str_seconds, _best_seconds(drain_str, 1))
    add("tokenizer_mb_per_s", mb / new_seconds, "MB/s", machine_dependent=True)
    add(
        "reference_tokenizer_mb_per_s",
        mb / reference_seconds,
        "MB/s",
        machine_dependent=True,
    )
    add("tokenizer_speedup", reference_seconds / new_seconds, "x")
    add("tokenizer_bytes_vs_str_speedup", str_seconds / new_seconds, "x")

    # -- file tokenizer: chunked reads with window compaction -----------
    def drain_file() -> None:
        # A binary stream, like a socket or pipe would provide: the
        # chunked window path with compaction, no mmap, no str decode.
        for _token in FileTokenizer(io.BytesIO(raw_document)):
            pass

    add(
        "file_tokenizer_mb_per_s",
        mb / _best_seconds(drain_file, repeats),
        "MB/s",
        machine_dependent=True,
    )

    # -- matcher: lazy-DFA transition table over the Q1 projection tree -
    session = QuerySession(XMARK_QUERIES["Q1"].adapted)
    tree = session.compiled.projection_tree

    preprojector: StreamPreprojector | None = None

    def project() -> None:
        # Keep the last pass around: its stats (hit rate, token counts) are
        # deterministic across passes, so no extra un-timed pass is needed.
        nonlocal preprojector
        preprojector = StreamPreprojector(
            tokenize(document), tree, BufferTree(strict=False)
        )
        preprojector.run_to_completion()

    # Isolate matching by subtracting the tokenize-only time; floor at 5%
    # of the projection pass so host noise can never drive the subtraction
    # to zero (or negative) and poison the snapshot with absurd numbers.
    project_seconds = _best_seconds(project, repeats)
    match_seconds = max(project_seconds - new_seconds, 0.05 * project_seconds)
    matcher = preprojector.matcher
    lookups = matcher.table_hits + matcher.table_misses
    tokens = preprojector.buffer.stats.tokens_read
    add(
        "matcher_ktokens_per_s",
        tokens / match_seconds / 1e3,
        "ktok/s",
        machine_dependent=True,
    )
    add("matcher_table_hit_rate", matcher.table_hits / max(lookups, 1), "ratio")
    add(
        "matcher_dfa_states",
        float(matcher.state_count),
        "states",
        higher_is_better=False,
    )

    # -- end to end: Q1 through the full Figure 11 pipeline -------------
    result = None

    def run_e2e() -> None:
        nonlocal result
        result = session.run(document)

    e2e_seconds = _best_seconds(run_e2e, repeats)
    add("e2e_q1_mb_per_s", mb / e2e_seconds, "MB/s", machine_dependent=True)
    add(
        "e2e_q1_hwm_bytes",
        float(result.hwm_bytes),
        "bytes",
        higher_is_better=False,
    )
    add(
        "buffer_recycle_rate",
        result.stats.nodes_recycled / max(result.stats.nodes_created, 1),
        "ratio",
    )

    # -- schema-constraint pass: hwm reduction on the golden queries ----
    # Same document, same host, schema-on vs schema-off: a pure ratio of
    # deterministic counters, machine-independent and hard-floored.  The
    # outputs are asserted identical here too — a schema must never buy
    # buffer space at the price of semantics.
    schema = xmark_schema()
    reductions: list[float] = []
    for name in sorted(XMARK_QUERIES):
        text = XMARK_QUERIES[name].adapted
        off_run = QuerySession(text).run(document)
        on_run = QuerySession(text, schema=schema).run(document)
        assert on_run.output == off_run.output, f"{name}: schema changed output"
        reductions.append(
            off_run.stats.hwm_bytes / max(on_run.stats.hwm_bytes, 1)
        )
    reductions.sort(reverse=True)
    add("schema_hwm_reduction", reductions[1], "x")

    # -- earliness pass: how long output sits buffered, on vs off -------
    # ``tokens_held_before_emit`` is a deterministic counter, so the
    # per-query ratio is machine-independent; the metric is the
    # second-largest ratio (as above, one query cannot carry the gate).
    # Byte-identity and the monotonicity property are asserted while
    # measuring — earliness changes *when* bytes leave, never which.
    conservative = EngineOptions(earliness=False)
    held_ratios: list[float] = []
    first_output_seconds: float | None = None
    for name in sorted(XMARK_QUERIES):
        text = XMARK_QUERIES[name].adapted
        off_run = QuerySession(text, conservative).run(document)
        on_run = QuerySession(text).run(document)
        assert on_run.output == off_run.output, f"{name}: earliness changed output"
        held_on = on_run.stats.tokens_held_before_emit
        held_off = off_run.stats.tokens_held_before_emit
        assert held_on <= held_off, f"{name}: earliness held tokens longer"
        held_ratios.append(max(held_off, 1) / max(held_on, 1))
        if name == "Q1":
            first_output_seconds = on_run.first_output_seconds
    held_ratios.sort(reverse=True)
    add("tokens_held_reduction", held_ratios[1], "x")
    if first_output_seconds is not None:
        add(
            "latency_to_first_output_ms",
            first_output_seconds * 1_000.0,
            "ms",
            higher_is_better=False,
            machine_dependent=True,
        )

    # -- hash joins: Q8 via the hash operator vs the nested-loop oracle -
    # Same query, same document, same host; only the join dispatch
    # differs, so the ratio is machine-independent and hard-floored.
    # Byte-identity is asserted while measuring — the hash path must be
    # a pure performance decision (docs/JOINS.md).
    join_text = XMARK_QUERIES["Q8"].adapted
    hash_session = QuerySession(join_text)
    nested_session = QuerySession(join_text, EngineOptions(hash_joins=False))
    hash_result = nested_result = None

    def run_hash() -> None:
        nonlocal hash_result
        hash_result = hash_session.run(document)

    def run_nested() -> None:
        nonlocal nested_result
        nested_result = nested_session.run(document)

    hash_seconds = _best_seconds(run_hash, repeats)
    nested_seconds = _best_seconds(run_nested, repeats)
    assert hash_result.output == nested_result.output, (
        "hash join changed the Q8 output"
    )
    assert hash_result.stats.join_indexes_built > 0, (
        "the join planner failed to dispatch Q8 to the hash operator"
    )
    add("join_speedup", nested_seconds / hash_seconds, "x")
    add(
        "join_probe_hit_rate",
        hash_result.stats.join_probe_hits
        / max(hash_result.stats.join_probes, 1),
        "hits/probe",
    )

    # -- multi-query: one shared scan vs K sequential warm sessions -----
    # Both the speedup and the single-scan invariant are same-host ratios/
    # counts, so they gate machine-independently (hard floors above).
    multi_report = run_multiquery_benchmark(document, repeats=repeats)
    add("multiquery_speedup_k8", multi_report.speedup, "x")
    add(
        "multiquery_single_scan",
        1.0 if multi_report.single_scan else 0.0,
        "bool",
    )
    add(
        "multiquery_route_share",
        multi_report.route_share,
        "ratio",
        higher_is_better=False,
    )

    # -- concurrent serving: SessionPool vs cold per-request engines ----
    # Machine-dependent throughout: the speedup mixes amortization (host-
    # independent-ish) with scheduler behaviour and core count, and the
    # aggregate high watermark depends on run overlap.  The gate warns
    # rather than fails on these (docs/CONCURRENCY.md explains the model).
    report = run_concurrency_benchmark(repeats=repeats)
    four = report.point(4)
    add(
        "pool_speedup_4w",
        four.speedup_vs_cold,
        "x",
        machine_dependent=True,
    )
    add(
        "pool_docs_per_s_4w",
        four.docs_per_second,
        "docs/s",
        machine_dependent=True,
    )
    add(
        "pool_aggregate_hwm_nodes_4w",
        float(four.peak_live_nodes),
        "nodes",
        higher_is_better=False,
        machine_dependent=True,
    )

    # -- network serving: gcx serve over real sockets -------------------
    # The full serving path (framing, thread-to-loop bridge, real TCP) at
    # the 4-client point; docs/s is tracked, p99 TTFB loosely gated —
    # both machine-dependent, so foreign hosts warn instead of failing.
    serving = run_serving_benchmark(client_counts=(4,), docs_per_client=16)
    served = serving.point(4)
    add(
        "serving_docs_per_s",
        served.docs_per_second,
        "docs/s",
        machine_dependent=True,
    )
    add(
        "serving_p99_ttfb_ms",
        served.ttfb_p99_ms,
        "ms",
        higher_is_better=False,
        machine_dependent=True,
    )
    return metrics


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------


def save_baseline(
    metrics: dict[str, Metric],
    path: str | Path,
    *,
    target_bytes: int,
    seed: int,
) -> None:
    """Write a ``BENCH_*.json`` snapshot."""
    payload = {
        "schema": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "document": {"target_bytes": target_bytes, "seed": seed},
        "metrics": {
            m.name: {
                "value": m.value,
                "unit": m.unit,
                "higher_is_better": m.higher_is_better,
                "machine_dependent": m.machine_dependent,
            }
            for m in metrics.values()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> dict[str, Metric]:
    """Load a ``BENCH_*.json`` snapshot into metrics by name."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported BENCH schema {payload.get('schema')!r} in {path}"
        )
    return {
        name: Metric(
            name=name,
            value=float(entry["value"]),
            unit=entry.get("unit", ""),
            higher_is_better=bool(entry.get("higher_is_better", True)),
            machine_dependent=bool(entry.get("machine_dependent", False)),
        )
        for name, entry in payload["metrics"].items()
    }


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------


def compare(
    baseline: dict[str, Metric], fresh: dict[str, Metric]
) -> list[MetricDelta]:
    """Per-metric deltas for every metric present in both snapshots.

    ``regression`` is the relative change in the bad direction (positive =
    worse), so a single threshold covers both metric polarities.
    """
    deltas: list[MetricDelta] = []
    for name, base in baseline.items():
        new = fresh.get(name)
        if new is None:
            continue
        if base.higher_is_better:
            regression = (base.value - new.value) / max(abs(base.value), 1e-12)
        else:
            regression = (new.value - base.value) / max(abs(base.value), 1e-12)
        floor = FLOORS.get(name)
        deltas.append(
            MetricDelta(
                name=name,
                baseline=base.value,
                fresh=new.value,
                unit=base.unit,
                higher_is_better=base.higher_is_better,
                machine_dependent=base.machine_dependent,
                regression=regression,
                below_floor=floor is not None and new.value < floor,
            )
        )
    return deltas
