"""Rendering benchmark results the way the paper's Table 1 does.

Rows are grouped by query, one line per document size; columns are engines;
cells read ``time / memory`` with ``n/a`` and ``timeout`` where applicable.
``shape_report`` additionally summarizes the qualitative claims (flat vs
growing memory, ordering between engines) that README.md's Table 1 section
describes, and
``latency_report`` shows time-to-first-output against total time for the
streaming engines — the incremental-output property Table 1 cannot show.
"""

from __future__ import annotations

from repro.bench.measure import Measurement, format_bytes, format_seconds

__all__ = ["format_table1", "shape_report", "latency_report"]


def format_table1(measurements: list[Measurement], *, title: str = "Table 1") -> str:
    """Render the measurement grid as an aligned text table."""
    engines = _ordered_unique(m.engine for m in measurements)
    queries = _ordered_unique(m.query for m in measurements)
    sizes = sorted({m.doc_bytes for m in measurements})
    by_key = {(m.query, m.engine, m.doc_bytes): m for m in measurements}

    header = ["Query", "Size"] + list(engines)
    rows: list[list[str]] = []
    for query in queries:
        for index, size in enumerate(sizes):
            row = [query if index == 0 else "", format_bytes(size)]
            for engine in engines:
                cell = by_key.get((query, engine, size))
                if cell is None:
                    # n/a engines stop after the first size.
                    first = by_key.get((query, engine, sizes[0]))
                    row.append("n/a" if first and not first.supported else "-")
                else:
                    row.append(cell.cell)
            rows.append(row)
        rows.append([])  # blank separator between query groups

    widths = [
        max(
            [len(header[i])]
            + [len(row[i]) for row in rows if row and i < len(row)]
        )
        for i in range(len(header))
    ]

    def render(row: list[str]) -> str:
        if not row:
            return ""
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = [title, "=" * len(title), render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines).rstrip() + "\n"


def shape_report(measurements: list[Measurement]) -> str:
    """Check the paper's qualitative claims against the measurements."""
    lines: list[str] = ["Shape checks (paper claims vs. measured):"]
    queries = _ordered_unique(m.query for m in measurements)
    for query in queries:
        gcx = _series(measurements, query, "gcx")
        naive = _series(measurements, query, "naive-dom")
        if not gcx:
            continue
        flat = _is_flat(gcx)
        expectation = "grows (join buffers)" if query == "Q8" else "flat"
        observed = "flat" if flat else "grows"
        marker = _check(flat != (query == "Q8"))
        lines.append(
            f"  {query}: GCX memory {observed} across sizes "
            f"(expected {expectation}) {marker}"
        )
        if naive:
            comparable = [
                (g, n)
                for g, n in zip(gcx, naive)
                if not g.timed_out and not n.timed_out
            ]
            if comparable:
                factor = min(
                    n.hwm_bytes / max(g.hwm_bytes, 1) for g, n in comparable
                )
                lines.append(
                    f"       GCX uses >= {factor:.0f}x less memory than naive-dom "
                    f"{_check(factor >= 10)}"
                )
    return "\n".join(lines)


def latency_report(measurements: list[Measurement]) -> str:
    """Time-to-first-output vs. total time for engines that stream.

    An incremental engine's first result fragment should arrive long before
    evaluation finishes whenever the query's first match occurs early in
    the document; engines that materialize the whole result first have no
    entry here.  One line per (query, engine) using the largest measured
    document.
    """
    lines: list[str] = ["Latency to first output (largest document):"]
    queries = _ordered_unique(m.query for m in measurements)
    engines = _ordered_unique(m.engine for m in measurements)
    found = False
    for query in queries:
        for engine in engines:
            series = [
                m
                for m in _series(measurements, query, engine)
                if not m.timed_out and m.first_output_seconds is not None
            ]
            if not series:
                continue
            found = True
            cell = series[-1]
            share = cell.first_output_seconds / max(cell.seconds, 1e-9)
            lines.append(
                f"  {query} {cell.engine}: first output after "
                f"{format_seconds(cell.first_output_seconds)} "
                f"of {format_seconds(cell.seconds)} total "
                f"({share:.0%} into the run)"
            )
    if not found:
        lines.append("  (no streaming measurements)")
    return "\n".join(lines)


def _series(
    measurements: list[Measurement], query: str, engine: str
) -> list[Measurement]:
    cells = [
        m
        for m in measurements
        if m.query == query and m.engine == engine and m.supported
    ]
    return sorted(cells, key=lambda m: m.doc_bytes)


def _is_flat(series: list[Measurement], tolerance: float = 3.0) -> bool:
    """Memory counts as flat when the largest doc uses < tolerance x the
    smallest doc's buffer, while the documents differ by a larger factor."""
    valid = [m for m in series if not m.timed_out]
    if len(valid) < 2:
        return True
    growth = valid[-1].hwm_bytes / max(valid[0].hwm_bytes, 1)
    size_growth = valid[-1].doc_bytes / max(valid[0].doc_bytes, 1)
    return growth < min(tolerance, max(size_growth / 2, 1.5))


def _check(ok: bool) -> str:
    return "[ok]" if ok else "[MISMATCH]"


def _ordered_unique(items) -> list[str]:
    seen: list[str] = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return seen
