"""The Table 1 harness: queries x document sizes x engines.

The paper benchmarks XMark documents of 10, 50, 100 and 200 MB on a 3 GHz
Pentium IV running C++.  A pure-Python reproduction scales the document
sizes down (default 0.25-2 MB, configurable) while keeping the *shape* of
every series: which engine wins, whether memory is flat or grows with the
input, and where joins time out.

Timeout handling mirrors the paper's one-hour limit: the harness carries a
time budget per cell and predicts the cost of the next-larger document from
the previous measurement (quadratic extrapolation for join queries, linear
otherwise).  Predicted overruns are reported as ``timeout`` without
burning the wall-clock time, exactly where the paper's table shows
timeouts for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.measure import Measurement, measure
from repro.xmark.generator import generate_xmark, xmark_scale_for_bytes
from repro.xmark.queries import TABLE1_QUERIES, XMARK_QUERIES

__all__ = ["HarnessConfig", "generate_documents", "run_table1"]

DEFAULT_ENGINES = ("gcx", "flux-like", "projection-only", "naive-dom")


@dataclass(frozen=True)
class HarnessConfig:
    """Configuration of one Table 1 run."""

    sizes_bytes: tuple[int, ...] = (256_000, 512_000, 1_024_000, 2_048_000)
    engines: tuple[str, ...] = DEFAULT_ENGINES
    queries: tuple[str, ...] = TABLE1_QUERIES
    seed: int = 42
    cell_budget_seconds: float = 120.0


def generate_documents(
    sizes_bytes: tuple[int, ...], seed: int = 42
) -> dict[int, str]:
    """Generate one XMark document per requested size.

    The scale factor is calibrated in two passes: an initial estimate from
    the generator's bytes-per-scale constant, then one corrective
    regeneration so each document lands within a few percent of its target.
    """
    documents: dict[int, str] = {}
    for target in sizes_bytes:
        scale = xmark_scale_for_bytes(target)
        document = generate_xmark(scale, seed=seed)
        actual = len(document)
        if abs(actual - target) / target > 0.05:
            scale *= target / max(actual, 1)
            document = generate_xmark(scale, seed=seed)
        documents[target] = document
    return documents


def run_table1(
    config: HarnessConfig | None = None,
    *,
    documents: dict[int, str] | None = None,
    progress=None,
) -> list[Measurement]:
    """Run the full benchmark grid and return all measurements."""
    config = config or HarnessConfig()
    if documents is None:
        documents = generate_documents(config.sizes_bytes, config.seed)
    measurements: list[Measurement] = []
    for query_name in config.queries:
        query = XMARK_QUERIES[query_name]
        for engine_name in config.engines:
            previous: Measurement | None = None
            for target in config.sizes_bytes:
                document = documents[target]
                cell = _measure_cell(
                    engine_name,
                    query_name,
                    query.adapted,
                    document,
                    previous=previous,
                    joins=query.uses_join() and engine_name != "gcx",
                    budget=config.cell_budget_seconds,
                )
                measurements.append(cell)
                if progress is not None:
                    progress(cell)
                if not cell.supported:
                    break  # n/a for every size
                previous = cell if not cell.timed_out else previous
    return measurements


def _measure_cell(
    engine_name: str,
    query_name: str,
    query_text: str,
    document: str,
    *,
    previous: Measurement | None,
    joins: bool,
    budget: float,
) -> Measurement:
    doc_bytes = len(document.encode())
    if previous is not None and previous.seconds > 0:
        ratio = doc_bytes / max(previous.doc_bytes, 1)
        # Join queries extrapolate quadratically — except on the gcx
        # engine, whose hash-join dispatch makes them O(n+m) (the caller
        # clears ``joins`` for it), so the linear prediction applies.
        exponent = 2.0 if joins else 1.0
        predicted = previous.seconds * ratio**exponent
        if predicted > budget:
            cell = Measurement(
                engine=engine_name, query=query_name, doc_bytes=doc_bytes
            )
            cell.timed_out = True
            return cell
    cell = measure(engine_name, query_text, document)
    cell.query = query_name
    if cell.seconds > budget:
        # It finished, but over budget: report the honest timeout the paper
        # would have shown, keeping the measured numbers for inspection.
        cell.timed_out = True
    return cell
