"""Benchmark harness: Table 1 regeneration, measurement, reporting."""

from repro.bench.ablation import (
    ABLATION_CONFIGS,
    AblationCell,
    format_ablations,
    run_ablations,
)
from repro.bench.concurrency import (
    ConcurrencyPoint,
    ConcurrencyReport,
    format_concurrency_report,
    run_concurrency_benchmark,
)
from repro.bench.baseline import (
    FLOORS,
    Metric,
    MetricDelta,
    benchmark_document,
    compare,
    load_baseline,
    run_quick_suite,
    save_baseline,
)
from repro.bench.multiquery import (
    MULTIQUERY_MIX,
    MultiQueryReport,
    format_multiquery_report,
    run_multiquery_benchmark,
)
from repro.bench.serving import (
    ServingPoint,
    ServingReport,
    format_serving_report,
    run_serving_benchmark,
)
from repro.bench.harness import (
    DEFAULT_ENGINES,
    HarnessConfig,
    generate_documents,
    run_table1,
)
from repro.bench.measure import Measurement, format_bytes, format_seconds, measure
from repro.bench.report import format_table1, latency_report, shape_report

__all__ = [
    "HarnessConfig",
    "ConcurrencyPoint",
    "ConcurrencyReport",
    "run_concurrency_benchmark",
    "format_concurrency_report",
    "DEFAULT_ENGINES",
    "generate_documents",
    "run_table1",
    "Measurement",
    "measure",
    "format_bytes",
    "format_seconds",
    "format_table1",
    "shape_report",
    "latency_report",
    "MULTIQUERY_MIX",
    "MultiQueryReport",
    "run_multiquery_benchmark",
    "format_multiquery_report",
    "ServingPoint",
    "ServingReport",
    "run_serving_benchmark",
    "format_serving_report",
    "ABLATION_CONFIGS",
    "AblationCell",
    "run_ablations",
    "format_ablations",
    "Metric",
    "MetricDelta",
    "FLOORS",
    "benchmark_document",
    "run_quick_suite",
    "save_baseline",
    "load_baseline",
    "compare",
]
