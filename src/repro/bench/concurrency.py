"""Concurrency benchmark: pooled serving vs cold per-request evaluation.

The serving scenario this measures is the ROADMAP's, not Table 1's: many
small requests against one query, as a multi-client endpoint would see.
Two ways to serve N requests:

* **cold serial** — what a server without a session layer does: one
  :class:`~repro.engine.gcx.GCXEngine` evaluation per request, paying the
  full static analysis (normalization, projection tree, signOff insertion)
  plus matcher/buffer construction every time;
* **pooled** — a :class:`~repro.engine.pool.SessionPool` with W workers:
  compiled once, lazy DFA and recycled buffers shared by every request.

``speedup`` is cold-serial time over pooled time for the same requests.
Be precise about what it means: under CPython's GIL the thread workers do
not parallelize the evaluation itself, so on a single core the whole gain
is *amortization* of per-request static work — which is why the requests
are small (hundreds of bytes), the regime where a serving layer matters
most.  On multi-core hosts ``executor="process"`` adds real parallelism on
top; the quick suite stays with threads so the recorded numbers do not
depend on the runner's core count.

The aggregate buffer high watermark (``peak_live_nodes``/``bytes``) is the
pool-wide residency peak across all concurrent runs — the serving-layer
analogue of the paper's per-run buffer bound.  It depends on scheduling
and is reported, not gated hard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.gcx import GCXEngine
from repro.engine.pool import SessionPool
from repro.xmark.queries import XMARK_QUERIES

__all__ = [
    "ConcurrencyPoint",
    "ConcurrencyReport",
    "serving_documents",
    "run_concurrency_benchmark",
    "format_concurrency_report",
]

#: The served query: XMark Q1, the classic point lookup ("the name of the
#: person with ID person0") — exactly the shape of a request/response API.
SERVING_QUERY = XMARK_QUERIES["Q1"].adapted


def serving_documents(count: int = 64, *, spread: int = 7) -> list[str]:
    """Small, distinct, deterministic request documents (a few hundred B).

    Shaped like XMark ``/site`` fragments so ``SERVING_QUERY`` matches;
    sized so that per-request fixed costs — the thing pooling amortizes —
    are a meaningful share of each request.
    """
    documents = []
    for i in range(count):
        people = "".join(
            f"<person><id>person{j}</id><name>N{i}-{j}</name>"
            f"<emailaddress>p{j}@x.example</emailaddress></person>"
            for j in range(i % spread % 3 + 1)
        )
        items = "".join(
            f"<item><id>i{i}-{k}</id><name>T{k}</name></item>"
            for k in range(i % 4)
        )
        documents.append(
            f"<site><people>{people}</people>"
            f"<regions><africa>{items}</africa></regions>"
            f"<closed_auctions/></site>"
        )
    return documents


@dataclass(frozen=True)
class ConcurrencyPoint:
    """Throughput of one pool configuration over the request batch."""

    workers: int
    seconds: float
    docs_per_second: float
    speedup_vs_cold: float
    peak_live_nodes: int
    peak_live_bytes: int
    peak_active_runs: int


@dataclass(frozen=True)
class ConcurrencyReport:
    """The full sweep: cold-serial baseline plus one point per worker count."""

    doc_count: int
    doc_bytes_avg: int
    cold_serial_seconds: float
    cold_docs_per_second: float
    points: tuple[ConcurrencyPoint, ...]

    def point(self, workers: int) -> ConcurrencyPoint:
        for point in self.points:
            if point.workers == workers:
                return point
        raise KeyError(f"no measurement for {workers} workers")


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_concurrency_benchmark(
    doc_count: int = 64,
    workers: tuple[int, ...] = (1, 2, 4),
    repeats: int = 3,
    chunksize: int = 4,
) -> ConcurrencyReport:
    """Measure cold-serial vs pooled serving over the same request batch.

    Every configuration evaluates the identical documents; the outputs are
    cross-checked once so a benchmark can never pass on wrong results.
    """
    documents = serving_documents(doc_count)
    engine = GCXEngine()

    def serve_cold() -> list[str]:
        return [engine.run(SERVING_QUERY, doc).output for doc in documents]

    expected = serve_cold()  # warm caches fairly + the correctness oracle
    cold_seconds = _best_of(serve_cold, repeats)

    points = []
    for count in workers:
        with SessionPool(SERVING_QUERY, max_workers=count) as pool:
            outputs = [
                r.output for r in pool.map(documents, chunksize=chunksize)
            ]
            if outputs != expected:
                raise AssertionError(
                    "pooled serving diverged from cold-serial outputs"
                )
            pool_seconds = _best_of(
                lambda: list(pool.map(documents, chunksize=chunksize)),
                repeats,
            )
            stats = pool.stats
        points.append(
            ConcurrencyPoint(
                workers=count,
                seconds=pool_seconds,
                docs_per_second=doc_count / pool_seconds,
                speedup_vs_cold=cold_seconds / pool_seconds,
                peak_live_nodes=stats.peak_live_nodes,
                peak_live_bytes=stats.peak_live_bytes,
                peak_active_runs=stats.peak_active_runs,
            )
        )
    return ConcurrencyReport(
        doc_count=doc_count,
        doc_bytes_avg=sum(len(d) for d in documents) // doc_count,
        cold_serial_seconds=cold_seconds,
        cold_docs_per_second=doc_count / cold_seconds,
        points=tuple(points),
    )


def format_concurrency_report(report: ConcurrencyReport) -> str:
    """A small table, one row per configuration."""
    lines = [
        f"serving benchmark: {report.doc_count} requests, "
        f"~{report.doc_bytes_avg} B each (XMark Q1 point lookup)",
        f"{'config':<16} {'req/s':>10} {'speedup':>9} "
        f"{'agg hwm nodes':>14} {'agg hwm bytes':>14}",
        f"{'cold serial':<16} {report.cold_docs_per_second:>10.0f} "
        f"{'1.00x':>9} {'-':>14} {'-':>14}",
    ]
    for point in report.points:
        lines.append(
            f"{f'pool w={point.workers}':<16} "
            f"{point.docs_per_second:>10.0f} "
            f"{f'{point.speedup_vs_cold:.2f}x':>9} "
            f"{point.peak_live_nodes:>14} {point.peak_live_bytes:>14}"
        )
    return "\n".join(lines)
