"""Ablation study harness for the Section 6 optimizations.

``run_ablations`` evaluates a set of queries under every optimization
configuration and reports, per (configuration, query): evaluation time,
buffer high watermark, role traffic, and GC activity.  Used by the
benchmark suite, the CLI (``gcx ablations``) and ``examples/ablations.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.schema import Schema
from repro.engine import EngineOptions, GCXEngine

__all__ = ["ABLATION_CONFIGS", "AblationCell", "run_ablations", "format_ablations"]

#: The studied configurations: full GCX, one optimization off at a time,
#: and the paper's base scheme (Sections 2-5 without any Section 6 feature).
ABLATION_CONFIGS: dict[str, EngineOptions] = {
    "full": EngineOptions(),
    "no-early-updates": EngineOptions(early_updates=False),
    "no-aggregate-roles": EngineOptions(aggregate_roles=False),
    "no-redundancy-elim": EngineOptions(eliminate_redundant_roles=False),
    "no-earliness": EngineOptions(earliness=False),
    "base-scheme": EngineOptions(
        early_updates=False,
        aggregate_roles=False,
        eliminate_redundant_roles=False,
    ),
}


@dataclass
class AblationCell:
    config: str
    query: str
    seconds: float
    hwm_bytes: int
    hwm_nodes: int
    roles_assigned: int
    gc_invocations: int
    tokens_held: int  # tokens_held_before_emit: what the earliness row moves
    output_equal_to_full: bool


def run_ablations(
    queries: dict[str, str],
    document: str,
    *,
    configs: dict[str, EngineOptions] | None = None,
    schema: Schema | None = None,
) -> list[AblationCell]:
    """Run every configuration over every query on one document.

    With ``schema``, one extra ``with-schema`` row runs the full
    configuration plus the schema-constraint pass — the with/without
    ablation of the schema-aware analysis (outputs must stay identical;
    certified queries drop their high watermark to zero).
    """
    config_items = list((configs or ABLATION_CONFIGS).items())
    if schema is not None and configs is None:
        config_items.append(("with-schema", EngineOptions()))
    cells: list[AblationCell] = []
    reference: dict[str, str] = {}
    for config_name, options in config_items:
        engine = GCXEngine(options)
        for query_name, query_text in queries.items():
            compiled = engine.compile(
                query_text,
                schema=schema if config_name == "with-schema" else None,
            )
            started = time.perf_counter()
            result = engine.run(compiled, document)
            elapsed = time.perf_counter() - started
            if config_name == "full":
                reference[query_name] = result.output
            cells.append(
                AblationCell(
                    config=config_name,
                    query=query_name,
                    seconds=elapsed,
                    hwm_bytes=result.stats.hwm_bytes,
                    hwm_nodes=result.stats.hwm_nodes,
                    roles_assigned=result.stats.roles_assigned,
                    gc_invocations=result.stats.gc_invocations,
                    tokens_held=result.stats.tokens_held_before_emit,
                    output_equal_to_full=result.output
                    == reference.get(query_name, result.output),
                )
            )
    return cells


def format_ablations(cells: list[AblationCell]) -> str:
    """Render ablation results as an aligned text table."""
    header = (
        "config",
        "query",
        "time",
        "hwm bytes",
        "hwm nodes",
        "roles",
        "gc",
        "held",
    )
    rows = [
        (
            cell.config,
            cell.query,
            f"{cell.seconds:.3f}s",
            f"{cell.hwm_bytes:,}",
            str(cell.hwm_nodes),
            str(cell.roles_assigned),
            str(cell.gc_invocations),
            f"{cell.tokens_held:,}",
        )
        for cell in cells
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(len(header))
    ]

    def render(row) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))

    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    mismatches = [cell for cell in cells if not cell.output_equal_to_full]
    lines.append("")
    lines.append(
        "all configurations produce identical outputs"
        if not mismatches
        else f"WARNING: {len(mismatches)} configurations diverge!"
    )
    return "\n".join(lines)
