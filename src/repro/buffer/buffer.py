"""The buffer manager: projected document buffer with active garbage
collection (Section 5, Figure 10).

The buffer holds the incrementally projected document.  Role updates arrive
from two sides:

* the stream preprojector *assigns* roles when it copies matched tokens into
  the buffer, and
* the query evaluator *removes* roles when it executes signOff statements,
  upon which the localized garbage collection of Figure 10 runs.

Two refinements beyond the paper's pseudo-code (see docs/ARCHITECTURE.md):

* *Pending cancellations.*  A signOff executed while its region (the
  binding's subtree) is not fully read registers a cancellation; the
  preprojector consults it so later-arriving nodes do not keep roles nobody
  will ever remove.
* *Close-time recheck.*  Purging a marked-deleted node when its closing tag
  arrives re-checks irrelevance, because role-carrying descendants may have
  arrived after the mark; conversely positive role updates un-mark nodes on
  the ancestor path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.roles import Role, UndefinedRoleRemoval
from repro.buffer.node import BufferNode, DOC, ELEMENT, TEXT
from repro.buffer.stats import BufferCostModel, BufferStats
from repro.xmlio.tokens import EndTag, StartTag
from repro.xquery.paths import Path

__all__ = ["BufferTree", "CancelEntry", "FREE_LIST_CAP"]

#: Upper bound on parked recycled nodes.  Bounds the slab so a huge purge
#: (one big irrelevant subtree) cannot pin its node count in memory forever;
#: steady-state streaming churns far fewer nodes than this.
FREE_LIST_CAP = 4096


@dataclass
class CancelEntry:
    """A pending cancellation: arrivals in the region matching ``path``
    (relative to the region root) lose ``count`` instances of ``role``."""

    path: Path
    role: Role
    aggregate: bool


class BufferTree:
    """The single buffer of the GCX architecture (Figure 11)."""

    def __init__(
        self,
        cost_model: BufferCostModel | None = None,
        *,
        strict: bool = True,
    ) -> None:
        self.stats = BufferStats(model=cost_model or BufferCostModel())
        self.strict = strict
        self._seq = 0
        self.document = BufferNode(DOC, seq=self._next_seq())
        # Symbol table: tag names <-> integers (Section 6), plus interned
        # output tokens per tag so serialization allocates nothing per node.
        self._tag_ids: dict[str, int] = {}
        self._tag_names: list[str] = []
        self._start_tokens: list[StartTag] = []
        self._end_tokens: list[EndTag] = []
        # Slab reuse: purged nodes park here and are handed back out by
        # new_element/new_text instead of fresh allocations.
        self._free_nodes: list[BufferNode] = []
        # Pending cancellations keyed by region root node.
        self.cancellations: dict[BufferNode, list[CancelEntry]] = {}
        # Purge observers (hash-join indexes evict entries for purged
        # nodes).  Called once per physically deleted node, before the
        # node is parked on the free list.
        self._purge_listeners: list = []

    def reset(self) -> "BufferTree":
        """Clear all per-run state, keeping the tag symbol table warm.

        The compile-once/run-many session API calls this between documents:
        nodes, statistics, sequence numbers and pending cancellations are
        per-run and start fresh, while the tag-name interning table
        (Section 6's integer tags), the interned output tokens, and the
        node free list are document-independent and are carried over so
        repeated runs skip re-interning tag names and re-allocating nodes.
        Returns ``self`` for chaining.
        """
        self.stats = BufferStats(model=self.stats.model)
        self._seq = 0
        self.document = BufferNode(DOC, seq=self._next_seq())
        self.cancellations = {}
        self._purge_listeners = []
        return self

    # ------------------------------------------------------------------
    # symbol table
    # ------------------------------------------------------------------

    def tag_id(self, tag: str) -> int:
        tid = self._tag_ids.get(tag)
        if tid is None:
            tid = len(self._tag_names)
            self._tag_ids[tag] = tid
            self._tag_names.append(tag)
            self._start_tokens.append(StartTag(tag))
            self._end_tokens.append(EndTag(tag))
        return tid

    def tag_name(self, tag_id: int) -> str:
        return self._tag_names[tag_id]

    def start_token(self, tag_id: int) -> StartTag:
        """The interned ``StartTag`` for a tag id (one object per tag)."""
        return self._start_tokens[tag_id]

    def end_token(self, tag_id: int) -> EndTag:
        """The interned ``EndTag`` for a tag id (one object per tag)."""
        return self._end_tokens[tag_id]

    # ------------------------------------------------------------------
    # construction (called by the preprojector)
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def new_element(self, parent: BufferNode, tag: str) -> BufferNode:
        free = self._free_nodes
        if free:
            node = free.pop()
            node.reinit(ELEMENT, self._next_seq(), tag_id=self.tag_id(tag))
            self.stats.nodes_recycled += 1
        else:
            node = BufferNode(
                ELEMENT, seq=self._next_seq(), tag_id=self.tag_id(tag)
            )
        node.born_tokens = self.stats.tokens_read
        parent.append_child(node)
        self.stats.on_create(self.stats.model.element_cost())
        return node

    def new_text(self, parent: BufferNode, content: str) -> BufferNode:
        free = self._free_nodes
        if free:
            node = free.pop()
            node.reinit(TEXT, self._next_seq(), text=content)
            self.stats.nodes_recycled += 1
        else:
            node = BufferNode(TEXT, seq=self._next_seq(), text=content)
        node.born_tokens = self.stats.tokens_read
        parent.append_child(node)
        self.stats.on_create(self.stats.model.text_cost(content))
        return node

    def assign_roles(
        self,
        node: BufferNode,
        normal: list[tuple[Role, int]],
        aggregate: list[tuple[Role, int]] = (),
    ) -> None:
        """Annotate a freshly buffered node with its roles."""
        total = 0
        for role, count in normal:
            node.roles.add(role, count)
            total += count
        for role, count in aggregate:
            node.aggregate_roles.add(role, count)
            total += count
        if total:
            self._bump_subtree_roles(node, total)
            self.stats.on_roles(total)

    # ------------------------------------------------------------------
    # role removal + garbage collection (Figure 10)
    # ------------------------------------------------------------------

    def remove_role(
        self, node: BufferNode, role: Role, count: int = 1, *, aggregate: bool = False
    ) -> None:
        """``rem_rho`` followed by the localized garbage collection."""
        role_set = node.aggregate_roles if aggregate else node.roles
        try:
            role_set.remove(role, count)
        except UndefinedRoleRemoval:
            if self.strict:
                raise
            return
        self._bump_subtree_roles(node, -count)
        self.stats.on_roles(-count)
        self.collect_from(node)

    def collect_from(self, node: BufferNode) -> None:
        """Bottom-up local search for irrelevant nodes (Figure 10)."""
        self.stats.gc_invocations += 1
        while node is not self.document and node.is_irrelevant:
            if self._covered_by_aggregate(node):
                return
            parent = node.parent
            if parent is None:  # already detached by an earlier purge
                return
            if node.finished:
                self._purge(node)
            else:
                node.marked_deleted = True
            node = parent

    def _covered_by_aggregate(self, node: BufferNode) -> bool:
        """Is some strict ancestor holding aggregate roles over this node?"""
        ancestor = node.parent
        while ancestor is not None:
            if ancestor.aggregate_roles:
                return True
            ancestor = ancestor.parent
        return False

    def _purge(self, node: BufferNode) -> None:
        """Physically delete ``node`` and its (role-free) subtree.

        Purged nodes are parked on the free list (up to
        :data:`FREE_LIST_CAP`) for :meth:`new_element`/:meth:`new_text` to
        reuse — streaming evaluation creates and purges nodes at the same
        rate, so the slab turns that churn into pointer resets instead of
        allocations.

        Why reuse-while-held cannot happen: purging requires the subtree to
        be role-free, and every node the evaluator still dereferences (a
        suspended cursor's context, an ``env`` binding) holds a role until
        its signOff — which is always the last act over that binding.  A
        parked node also keeps ``finished=True`` until :meth:`reinit`, so a
        cursor resumed against a stale reference bails out before the node
        can be handed back out.  Weakening either invariant (purging
        role-carrying nodes, or clearing ``finished`` here) would let
        ``reinit`` turn a held reference into an unrelated live node.
        """
        node.unlink()
        free = self._free_nodes
        model = self.stats.model
        stack = [node]
        while stack:
            member = stack.pop()
            child = member.first_child
            while child is not None:
                stack.append(child)
                child = child.next_sibling
            if member.kind == TEXT:
                cost = model.text_cost(member.text)
            else:
                cost = model.element_cost()
            self.stats.on_purge(cost)
            self.cancellations.pop(member, None)
            for listener in self._purge_listeners:
                listener(member)
            if len(free) < FREE_LIST_CAP:
                member.parent = None
                member.prev_sibling = None
                member.next_sibling = None
                member.first_child = None
                member.last_child = None
                member.text = ""
                free.append(member)

    # ------------------------------------------------------------------
    # stream progress (called by the preprojector)
    # ------------------------------------------------------------------

    def finish(self, node: BufferNode) -> None:
        """The node's closing tag was read from the input.

        Besides purging nodes marked deleted, this also collects roleless
        *structural* nodes (preserved only by the promotion guard): once
        finished and irrelevant they can never become relevant again, and no
        future role removal would ever reach them.
        """
        node.finished = True
        self.cancellations.pop(node, None)
        if node.is_irrelevant and not self._covered_by_aggregate(node):
            parent = node.parent
            self._purge(node)
            if parent is not None:
                self.collect_from(parent)
        else:
            node.marked_deleted = False

    def finish_document(self) -> None:
        """End of input: the document node itself is finished."""
        self.document.finished = True

    # ------------------------------------------------------------------
    # cancellations
    # ------------------------------------------------------------------

    def add_purge_listener(self, listener) -> None:
        """Register a callable invoked with each physically purged node."""
        self._purge_listeners.append(listener)

    def register_cancellation(
        self, region: BufferNode, path: Path, role: Role, *, aggregate: bool
    ) -> None:
        self.cancellations.setdefault(region, []).append(
            CancelEntry(path=path, role=role, aggregate=aggregate)
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _bump_subtree_roles(self, node: BufferNode, delta: int) -> None:
        current: BufferNode | None = node
        while current is not None:
            current.subtree_roles += delta
            if delta > 0 and current.marked_deleted:
                # New relevance resurrects nodes awaiting close-time purge.
                current.marked_deleted = False
            current = current.parent

    # ------------------------------------------------------------------
    # inspection helpers (tests, trace output)
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return self.document.first_child is None

    def live_node_count(self) -> int:
        return sum(1 for _ in self.document.descendants())

    def format_contents(self) -> list[str]:
        """Render buffer contents like Figure 2: ``tag{r2,r5}`` per node."""
        lines: list[str] = []

        def walk(node: BufferNode, depth: int) -> None:
            for child in node.children():
                if child.kind == TEXT:
                    label = f'"{child.text}"'
                else:
                    label = self.tag_name(child.tag_id)
                roles = child.roles.as_names() + [
                    name + "*" for name in child.aggregate_roles.as_names()
                ]
                suffix = "{" + ",".join(roles) + "}" if roles else "{}"
                marker = " (deleted)" if child.marked_deleted else ""
                lines.append("  " * depth + label + suffix + marker)
                walk(child, depth + 1)

        walk(self.document, 0)
        return lines
