"""Buffer statistics and the memory cost model.

The paper measures the high watermark of non-swapped memory with ``top``.
A Python reproduction cannot compare allocator footprints meaningfully, so
we measure the quantity the paper's argument is actually about — the buffer
high watermark — under an explicit cost model that mirrors the C++ GCX
buffer representation: a fixed per-node overhead (pointers + integer tag),
one byte per character of buffered text, and a small cost per live role
instance.  ``tracemalloc`` peaks can be recorded on top for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

__all__ = ["BufferAccountant", "BufferCostModel", "BufferStats"]


class BufferAccountant(Protocol):
    """Receiver of live-residency deltas from one or more buffers.

    :class:`~repro.engine.pool.SessionPool` attaches one accountant to
    every checked-out buffer so the pool-wide aggregate (the sum of live
    nodes/bytes across all concurrent runs, and its peak) can be tracked
    without the per-buffer counters having to know about each other.
    Implementations must be thread-safe; calls arrive from whichever
    thread drives each run.
    """

    def on_delta(self, nodes: int, cost: int) -> None: ...


@dataclass(frozen=True)
class BufferCostModel:
    """Bytes charged per buffered object (models the C++ representation)."""

    node_overhead: int = 48  # 5 pointers + tag id + flags, rounded
    text_byte: int = 1
    role_instance: int = 8
    # Multiplier for engines that keep per-use copies of buffered data
    # (models FluXQuery's per-variable buffers, Section 1's "data buffered
    # twice" discussion).  1 for GCX.
    duplication_factor: float = 1.0

    def element_cost(self) -> int:
        return self.node_overhead

    def text_cost(self, content: str) -> int:
        return self.node_overhead + self.text_byte * len(content)


@dataclass
class BufferStats:
    """Counters maintained by the buffer manager.

    ``hwm_*`` fields are the high watermarks the benchmark tables report.
    The role counters implement the safety instrumentation: a correct run
    satisfies ``roles_assigned == roles_removed + roles_cancelled`` and
    ends with an empty buffer (Section 3's requirements (1) and (2)).
    """

    model: BufferCostModel = field(default_factory=BufferCostModel)
    #: Optional pool-wide aggregate receiver (attached per checkout by
    #: SessionPool; ``None`` costs one predicted branch on the hot paths).
    accountant: BufferAccountant | None = field(
        default=None, repr=False, compare=False
    )

    live_nodes: int = 0
    live_bytes: int = 0
    hwm_nodes: int = 0
    hwm_bytes: int = 0

    nodes_created: int = 0
    nodes_purged: int = 0
    nodes_dropped: int = 0  # tokens discarded by projection (never buffered)
    nodes_recycled: int = 0  # creations served from the free list (slab reuse)

    roles_assigned: int = 0
    roles_removed: int = 0
    roles_cancelled: int = 0
    live_role_instances: int = 0

    gc_invocations: int = 0
    signoffs_executed: int = 0
    tokens_read: int = 0
    #: Sum over emitted output nodes of (tokens read at emission − tokens
    #: read at the node's creation): how long output sat in the buffer.
    #: The earliness pass (docs/EARLINESS.md) exists to shrink this.
    tokens_held_before_emit: int = 0
    #: Output subtrees the evaluator started emitting before their close
    #: tag arrived (watermark flushes).  Zero whenever the earliness pass
    #: is disabled — tests assert this to guard against always-on behavior.
    early_flushes: int = 0
    #: Chain matches the zero-buffer direct runner had to capture because
    #: the document violated the certifying schema (nested matches).  Zero
    #: on conforming documents — and always zero on the buffered path.
    schema_fallbacks: int = 0
    #: Relational-runtime telemetry (repro.engine.relops).  Counts only —
    #: accumulator states and join index entries are not charged to
    #: ``live_bytes``: the hwm tracks *buffered document* residency, and
    #: the join index stores only references to already-charged nodes.
    acc_updates: int = 0  # terminal accumulator credits (count/sum/avg)
    join_indexes_built: int = 0
    join_keys: int = 0  # (key, node) pairs inserted across all indexes
    join_probes: int = 0
    join_probe_hits: int = 0

    def on_create(self, cost: int) -> None:
        self.nodes_created += 1
        self.live_nodes += 1
        self.live_bytes += cost
        if self.accountant is not None:
            self.accountant.on_delta(1, cost)
        self._touch()

    def on_purge(self, cost: int) -> None:
        self.nodes_purged += 1
        self.live_nodes -= 1
        self.live_bytes -= cost
        if self.accountant is not None:
            self.accountant.on_delta(-1, -cost)

    def on_roles(self, delta: int) -> None:
        """``delta`` role instances were added (positive) or removed."""
        if delta > 0:
            self.roles_assigned += delta
        else:
            self.roles_removed += -delta
        self.live_role_instances += delta
        self.live_bytes += delta * self.model.role_instance
        if self.accountant is not None:
            self.accountant.on_delta(0, delta * self.model.role_instance)
        if delta > 0:
            self._touch()

    def on_cancelled(self, count: int) -> None:
        self.roles_cancelled += count

    def _touch(self) -> None:
        if self.live_nodes > self.hwm_nodes:
            self.hwm_nodes = self.live_nodes
        if self.live_bytes > self.hwm_bytes:
            self.hwm_bytes = self.live_bytes

    @property
    def hwm_bytes_modelled(self) -> int:
        """High watermark scaled by the engine's duplication factor."""
        return int(self.hwm_bytes * self.model.duplication_factor)

    def role_accounting_balanced(self) -> bool:
        """Assignments are net of cancellations, so they must equal removals."""
        return self.roles_assigned == self.roles_removed

    def summary(self) -> str:
        return (
            f"hwm {self.hwm_nodes} nodes / {self.hwm_bytes} bytes; "
            f"created {self.nodes_created}, purged {self.nodes_purged}, "
            f"dropped {self.nodes_dropped}; roles {self.roles_assigned} assigned, "
            f"{self.roles_removed} removed, {self.roles_cancelled} cancelled; "
            f"gc x{self.gc_invocations}"
            + (
                f"; schema fallbacks {self.schema_fallbacks}"
                if self.schema_fallbacks
                else ""
            )
            + (f"; early flushes {self.early_flushes}" if self.early_flushes else "")
            + (f"; acc updates {self.acc_updates}" if self.acc_updates else "")
            + (
                f"; joins {self.join_indexes_built} indexes / "
                f"{self.join_keys} keys / {self.join_probes} probes / "
                f"{self.join_probe_hits} hits"
                if self.join_indexes_built
                else ""
            )
        )
