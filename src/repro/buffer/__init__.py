"""The buffer manager: projected buffer, roles, active garbage collection."""

from repro.buffer.buffer import BufferTree, CancelEntry
from repro.buffer.node import BufferNode, DOC, ELEMENT, TEXT
from repro.buffer.stats import BufferCostModel, BufferStats

__all__ = [
    "BufferTree",
    "CancelEntry",
    "BufferNode",
    "DOC",
    "ELEMENT",
    "TEXT",
    "BufferCostModel",
    "BufferStats",
]
