"""Buffered document nodes.

The buffer holds the currently relevant projected document tree.  Following
Section 6 ("Buffer Representation"), the data structure is simple: nodes
with parent / first-child / next-sibling pointers, tag names replaced by
integers through a symbol table, plus the role bookkeeping that active
garbage collection needs:

* ``roles`` — the node's role multiset (``rho`` in the paper),
* ``aggregate_roles`` — roles placed on a subtree root and inherited by all
  descendants (the Section 6 "aggregate roles" optimization),
* ``subtree_roles`` — the total number of role instances in this subtree
  (self included); the *irrelevance* test of Figure 10 becomes O(1),
* ``seq`` — a monotone stream sequence number materializing document order,
  so for-loop cursors survive garbage collection of earlier siblings,
* ``finished`` / ``marked_deleted`` — the "unfinished" handling of
  Section 5: unfinished nodes are never physically deleted, only marked,
  and purged when their closing tag arrives (re-checking relevance, since
  role-carrying descendants may have arrived in between).

A ``prev_sibling`` pointer is kept as well so deletion is O(1); the paper
does not spell this out but its localized GC requires constant-time unlink.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.roles import RoleSet

__all__ = ["BufferNode", "DOC", "ELEMENT", "TEXT"]

DOC = 0
ELEMENT = 1
TEXT = 2


class BufferNode:
    """One node of the buffered (projected) document tree."""

    __slots__ = (
        "kind",
        "tag_id",
        "text",
        "parent",
        "prev_sibling",
        "next_sibling",
        "first_child",
        "last_child",
        "seq",
        "born_tokens",
        "finished",
        "marked_deleted",
        "roles",
        "aggregate_roles",
        "subtree_roles",
        "acc",
        "witnesses",
    )

    def __init__(self, kind: int, seq: int, tag_id: int = -1, text: str = "") -> None:
        self.kind = kind
        self.tag_id = tag_id
        self.text = text
        self.parent: Optional[BufferNode] = None
        self.prev_sibling: Optional[BufferNode] = None
        self.next_sibling: Optional[BufferNode] = None
        self.first_child: Optional[BufferNode] = None
        self.last_child: Optional[BufferNode] = None
        self.seq = seq
        self.born_tokens = 0  # stats.tokens_read at creation; set by the buffer
        self.finished = kind == TEXT  # text nodes are atomic
        self.marked_deleted = False
        self.roles = RoleSet()
        self.aggregate_roles = RoleSet()
        self.subtree_roles = 0
        # Aggregate accumulator states anchored at this node, keyed by
        # (var, path); None until the first accumulator frame is seeded
        # (repro.engine.relops.aggregates).
        self.acc: Optional[dict] = None
        # First-witness registry for ``[1]`` steps whose context is this
        # node, keyed by the positional Step and recorded by the projection
        # lane at the arrival that consumed the witness.  The value is
        # ``(node, seq)`` — or ``(None, -1)`` when the witness token was
        # not preserved — so a stale reference (the witness purged and its
        # object recycled) is detectable by the seq mismatch.  Navigating
        # the buffer for the first *buffered* match instead can silently
        # rebind the ``[1]`` to a later sibling once the true witness was
        # garbage-collected.
        self.witnesses: Optional[dict] = None

    def reinit(self, kind: int, seq: int, tag_id: int = -1, text: str = "") -> None:
        """Reset a recycled node to freshly constructed state.

        The buffer's free list (slab reuse, docs/PERFORMANCE.md) calls this
        instead of allocating: the node object and its two ``RoleSet``
        instances are reused, everything else is reset exactly as
        ``__init__`` would.  The caller guarantees the node is detached.
        """
        self.kind = kind
        self.tag_id = tag_id
        self.text = text
        self.parent = None
        self.prev_sibling = None
        self.next_sibling = None
        self.first_child = None
        self.last_child = None
        self.seq = seq
        self.born_tokens = 0
        self.finished = kind == TEXT
        self.marked_deleted = False
        self.roles.clear()
        self.aggregate_roles.clear()
        self.subtree_roles = 0
        self.acc = None
        self.witnesses = None

    # -- structure -------------------------------------------------------

    def append_child(self, child: "BufferNode") -> None:
        child.parent = self
        child.prev_sibling = self.last_child
        if self.last_child is not None:
            self.last_child.next_sibling = child
        else:
            self.first_child = child
        self.last_child = child

    def unlink(self) -> None:
        """Remove this node (with its subtree) from its parent's child list."""
        parent = self.parent
        if parent is None:
            return
        if self.prev_sibling is not None:
            self.prev_sibling.next_sibling = self.next_sibling
        else:
            parent.first_child = self.next_sibling
        if self.next_sibling is not None:
            self.next_sibling.prev_sibling = self.prev_sibling
        else:
            parent.last_child = self.prev_sibling
        self.parent = None
        self.prev_sibling = None
        self.next_sibling = None

    def children(self) -> Iterator["BufferNode"]:
        node = self.first_child
        while node is not None:
            yield node
            node = node.next_sibling

    def iter_subtree(self) -> Iterator["BufferNode"]:
        """This node and all descendants, in document order."""
        yield self
        child = self.first_child
        while child is not None:
            yield from child.iter_subtree()
            child = child.next_sibling

    def descendants(self) -> Iterator["BufferNode"]:
        child = self.first_child
        while child is not None:
            yield from child.iter_subtree()
            child = child.next_sibling

    def ancestors(self) -> Iterator["BufferNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- role / GC predicates ---------------------------------------------

    @property
    def is_irrelevant(self) -> bool:
        """No role on this node or any descendant (Figure 10's test).

        Aggregate coverage by *ancestors* is checked by the garbage
        collector, which sees the whole path.
        """
        return self.subtree_roles == 0

    @property
    def live(self) -> bool:
        return not self.marked_deleted

    # -- values ------------------------------------------------------------

    def string_value(self) -> str:
        """Concatenated text content of the subtree (document order)."""
        if self.kind == TEXT:
            return self.text
        parts = [node.text for node in self.iter_subtree() if node.kind == TEXT]
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = {DOC: "doc", ELEMENT: "elem", TEXT: "text"}[self.kind]
        flags = []
        if self.finished:
            flags.append("fin")
        if self.marked_deleted:
            flags.append("marked")
        return (
            f"BufferNode({kind} tag_id={self.tag_id} seq={self.seq} "
            f"roles={self.roles!r} agg={self.aggregate_roles!r} {' '.join(flags)})"
        )
