"""Union projection trees: the shared static analysis across N queries.

The paper derives one projection tree per query (Section 4); the
multi-query engine needs to know how N such trees relate to *one* shared
document scan.  :func:`build_union_projection` merges per-query
:class:`~repro.analysis.projection_tree.ProjectionTree`s into a single
:class:`UnionProjection` by unifying equal location steps along equal
paths from the root.  Every union node carries

* a **membership bitmask** — bit ``i`` is set when query ``i`` contributed
  a projection-tree node at this position, the static form of the
  per-token routing mask the shared dispatcher maintains dynamically
  (:mod:`repro.stream.shared`), and
* a **merged signoff table** — the ``(query, role)`` pairs whose signOff
  statements release this position, one entry per contributing per-query
  node that carries a role.  The shared-pass release rule follows
  directly: a document region matched here leaves the shared scan only
  when *every* query in the mask has signed off its roles (dynamically:
  when every lane has either parked the subtree as irrelevant or retired
  after executing all its signOffs).

The union is a *routing* artifact, not an evaluation artifact: roles stay
per-query (two queries' roles are never unified, their buffers stay
disjoint), so merging is purely structural and needs no cross-query
semantics.  Shared prefixes — e.g. every XMark query starting with
``/site`` — merge into single union nodes whose masks show exactly how
much static work the shared pass amortizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.projection_tree import ProjectionTree, PTNode
from repro.analysis.roles import Role
from repro.xquery.paths import Step

__all__ = ["UnionNode", "UnionProjection", "build_union_projection"]


@dataclass(eq=False)
class UnionNode:
    """One merged step position of the union projection tree."""

    step: Step | None  # None only for the root "/"
    mask: int  # query-membership bitmask
    parent: "UnionNode | None" = None
    children: list["UnionNode"] = field(default_factory=list)
    #: The per-query projection-tree nodes merged here, as
    #: ``(query_index, node)`` pairs in query order.
    sources: list[tuple[int, PTNode]] = field(default_factory=list)
    #: The merged signoff table entries of this position: ``(query_index,
    #: role)`` for every source node that carries a role.  The position is
    #: fully released only when every listed role has been signed off.
    releases: list[tuple[int, Role]] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.step is None

    @property
    def shared(self) -> bool:
        """Is this position used by more than one query?"""
        return self.mask & (self.mask - 1) != 0

    def queries(self) -> list[int]:
        """The query indexes in this node's membership mask."""
        return [i for i in range(self.mask.bit_length()) if self.mask >> i & 1]

    def iter_subtree(self) -> Iterator["UnionNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def __repr__(self) -> str:
        label = "/" if self.step is None else str(self.step)
        return f"UnionNode({label} mask={self.mask:#b})"


class UnionProjection:
    """The merged projection trees of N queries plus the routing masks."""

    def __init__(self, root: UnionNode, trees: Sequence[ProjectionTree]) -> None:
        self.root = root
        self.trees = tuple(trees)

    @property
    def query_count(self) -> int:
        return len(self.trees)

    @property
    def full_mask(self) -> int:
        """The mask with every query's bit set."""
        return (1 << len(self.trees)) - 1

    def all_nodes(self) -> Iterator[UnionNode]:
        yield from self.root.iter_subtree()

    def node_count(self) -> int:
        return sum(1 for _ in self.all_nodes())

    def shared_node_count(self) -> int:
        """Positions used by more than one query — the amortized static work."""
        return sum(1 for node in self.all_nodes() if node.shared)

    def separate_node_count(self) -> int:
        """Sum of the per-query tree sizes (what N separate passes match)."""
        return sum(tree.node_count() for tree in self.trees)

    def release_table(self) -> list[tuple[UnionNode, list[tuple[int, Role]]]]:
        """The merged signoff table: every node with the roles releasing it."""
        return [
            (node, list(node.releases))
            for node in self.all_nodes()
            if node.releases
        ]

    def format(self, names: Sequence[str] | None = None) -> str:
        """Render the union tree with membership masks and release roles.

        ``names`` labels the mask bits (defaults to ``q0..qN-1``); shared
        nodes therefore read like ``people {Q1,Q8,Q20}``.
        """
        labels = list(names) if names is not None else [
            f"q{i}" for i in range(self.query_count)
        ]

        def mask_str(node: UnionNode) -> str:
            members = ",".join(labels[i] for i in node.queries())
            suffix = ""
            if node.releases:
                roles = ",".join(
                    f"{labels[i]}:{role.name}" for i, role in node.releases
                )
                suffix = f" signoff[{roles}]"
            return "{" + members + "}" + suffix

        lines: list[str] = [f"/ {{{','.join(labels)}}}"]

        def walk(node: UnionNode, depth: int) -> None:
            for child in node.children:
                lines.append(
                    "  " * depth + f"{child.step} {mask_str(child)}"
                )
                walk(child, depth + 1)

        walk(self.root, 1)
        return "\n".join(lines)


def build_union_projection(
    trees: Sequence[ProjectionTree],
) -> UnionProjection:
    """Merge per-query projection trees into one union tree with masks.

    Children are unified by their location step (axis, node test, ``[1]``
    flag): two per-query nodes merge exactly when their whole step paths
    from the root are equal.  Masks, sources and the merged signoff table
    follow from which queries contributed to each merged position.
    """
    if not trees:
        raise ValueError("build_union_projection needs at least one tree")
    root = UnionNode(step=None, mask=(1 << len(trees)) - 1)
    for index, tree in enumerate(trees):
        root.sources.append((index, tree.root))

    def merge(union: UnionNode, sources: list[tuple[int, PTNode]]) -> None:
        by_step: dict[Step, list[tuple[int, PTNode]]] = {}
        for index, node in sources:
            for child in node.children:
                assert child.step is not None  # only roots are step-less
                by_step.setdefault(child.step, []).append((index, child))
        for step, merged in by_step.items():
            mask = 0
            releases: list[tuple[int, Role]] = []
            for index, node in merged:
                mask |= 1 << index
                if node.role is not None:
                    releases.append((index, node.role))
            child = UnionNode(
                step=step,
                mask=mask,
                parent=union,
                sources=merged,
                releases=releases,
            )
            union.children.append(child)
            merge(child, merged)

    merge(root, root.sources)
    return UnionProjection(root, trees)
