"""Schema-constraint analysis: FluX-style proofs over the projection tree.

Given a :class:`~repro.analysis.schema.Schema`, this pass derives three
families of facts from a compiled query (Koch et al.'s FluX work is the
blueprint; the paper itself feeds the XMark DTD to FluXQuery in Section 7):

(a) **pruning** — projection-tree nodes whose pattern provably matches
    nothing in any schema-conforming document;
(b) **signoff strengthening** — dependencies provably matched *at most
    once* per binding, and *release horizons*: sibling tags whose opening
    proves no further match of a dependency can start, i.e. the last
    schema-possible occurrence after which the buffer could be released;
(c) **zero-buffer certification** — queries whose entire evaluation can
    stream input tokens straight to the output with an empty buffer
    (:class:`ZeroBufferPlan`, executed by
    :mod:`repro.engine.direct`).

A soundness wall worth stating precisely, because it shapes what runs
where: the engine must produce byte-identical output even on documents
that *violate* the schema.  Any runtime shortcut that relies on a promise
about the **future** of the stream ("no more ``name`` children can come")
can diverge on a violating document *before* the violation is
observable.  Therefore the default runtime applies only facts that are
*structurally* sound on every document: the zero-buffer plan's direct
runner detects nested matches (impossible under the certifying schema,
possible on violating input) purely from the open-tag structure and
falls back to buffering just those matches mid-stream.  The (a)/(b)
facts are surfaced for inspection and applied to the runtime artifacts
only under ``EngineOptions(trust_schema=True)`` — the FluX operating
mode, which assumes conforming input (see
:func:`apply_trusted_constraints` and docs/SCHEMA.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.dependencies import Dependency
from repro.analysis.projection_tree import ProjectionTree, PTNode
from repro.analysis.roles import Role
from repro.analysis.schema import Schema
from repro.analysis.signoff import strip_signoffs
from repro.xquery.ast import (
    Element,
    Expr,
    ForLoop,
    PathOutput,
    Query,
    ROOT_VAR,
    VarRef,
)
from repro.xquery.normalize import normalize
from repro.xquery.paths import Axis, Path, Step, TestKind, format_path
from repro.xquery.semantics import QueryVariables

__all__ = [
    "PositionSet",
    "PrunedPattern",
    "SignoffFact",
    "ZeroBufferPlan",
    "SchemaConstraints",
    "compute_schema_constraints",
    "certify_zero_buffer",
    "prune_projection_tree",
    "apply_trusted_constraints",
]


# ---------------------------------------------------------------------------
# Position sets: where in a conforming document can a pattern node sit?
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PositionSet:
    """An over-approximation of the nodes a pattern step can match.

    ``elements`` holds ``(tag, at_reference_position)`` pairs — the flag
    matters because a reference-position occurrence is a PCDATA leaf
    (text-bearing, childless) even when the tag elsewhere has a content
    model.  ``text`` marks matched text nodes, ``doc`` the virtual
    document root.  Empty on all three axes means *provably unmatchable*.
    """

    elements: frozenset[tuple[str, bool]] = frozenset()
    text: bool = False
    doc: bool = False

    @property
    def empty(self) -> bool:
        return not self.elements and not self.text and not self.doc

    def tags(self) -> frozenset[str]:
        return frozenset(tag for tag, _ref in self.elements)


_DOC_SET = PositionSet(doc=True)


def _element_children(
    schema: Schema, position: tuple[str, bool]
) -> Iterable[tuple[str, bool]]:
    tag, at_reference = position
    if at_reference:
        return ()
    return (
        (spec.tag, schema.is_reference(tag, spec.tag))
        for spec in schema.children_of(tag)
    )


def _text_at(schema: Schema, position: tuple[str, bool]) -> bool:
    tag, at_reference = position
    return at_reference or tag in schema.leaves


def _doc_children(schema: Schema) -> frozenset[tuple[str, bool]]:
    roots = schema.roots or schema.tags  # recursive schema: any root
    return frozenset((tag, False) for tag in roots)


def _closure(
    schema: Schema, seeds: Iterable[tuple[str, bool]]
) -> frozenset[tuple[str, bool]]:
    """All element positions properly below ``seeds`` (child-edge closure)."""
    seen: set[tuple[str, bool]] = set()
    stack = [
        child for seed in seeds for child in _element_children(schema, seed)
    ]
    while stack:
        position = stack.pop()
        if position in seen:
            continue
        seen.add(position)
        stack.extend(
            child
            for child in _element_children(schema, position)
            if child not in seen
        )
    return frozenset(seen)


def apply_step(schema: Schema, positions: PositionSet, step: Step) -> PositionSet:
    """Push a position set through one location step."""
    if step.axis is Axis.CHILD:
        candidates = frozenset(
            child
            for source in positions.elements
            for child in _element_children(schema, source)
        )
        if positions.doc:
            candidates |= _doc_children(schema)
        text_possible = any(_text_at(schema, p) for p in positions.elements)
    elif step.axis is Axis.DESCENDANT:
        level_one = set()
        for source in positions.elements:
            level_one.update(_element_children(schema, source))
        if positions.doc:
            level_one |= _doc_children(schema)
        candidates = frozenset(level_one) | _closure(schema, level_one)
        text_possible = any(
            _text_at(schema, p) for p in set(positions.elements) | candidates
        )
    else:  # DOS: descendant-or-self
        below = set()
        for source in positions.elements:
            below.update(_element_children(schema, source))
        if positions.doc:
            below |= _doc_children(schema)
        candidates = (
            frozenset(positions.elements) | frozenset(below) | _closure(schema, below)
        )
        text_possible = positions.text or any(
            _text_at(schema, p) for p in candidates
        )

    test = step.test
    if test.kind is TestKind.TEXT:
        return PositionSet(text=text_possible)
    elements = frozenset(
        p for p in candidates if test.matches_element(p[0])
    )
    keeps_text = test.kind is TestKind.NODE and text_possible
    keeps_doc = step.axis is Axis.DOS and positions.doc and test.kind is TestKind.NODE
    return PositionSet(elements=elements, text=keeps_text, doc=keeps_doc)


def apply_path(schema: Schema, positions: PositionSet, path: Path) -> PositionSet:
    for step in path:
        positions = apply_step(schema, positions, step)
        if positions.empty:
            return positions
    return positions


# ---------------------------------------------------------------------------
# Facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrunedPattern:
    """A projection-tree node the schema proves unmatchable."""

    display_id: int
    pattern: str  # absolute pattern, paper notation
    role: str | None  # role name carried by the node, if any


@dataclass(frozen=True)
class SignoffFact:
    """One strengthened-signoff fact about a dependency of ``var``."""

    var: str
    path: str  # the dependency path, rendered
    kind: str  # "at-most-once" | "release-horizon"
    detail: str  # human-readable proof sketch


@dataclass(frozen=True)
class ZeroBufferPlan:
    """A proof that a query can evaluate with an empty buffer.

    The certified shape is a single for-loop chain (no conditions, no
    ``[1]`` predicates) whose body emits exactly one dynamic item — the
    bound subtree or one structural path under it — optionally inside
    static constructor wrappers.  ``chain`` is the concatenated loop path
    from the document root; the schema proof obligation recorded here is
    *non-nesting*: in a conforming document no chain match opens inside
    another, so streaming the current match straight through is safe.
    Violating documents are handled by the runner's structural fallback
    (nested matches are buffered until the enclosing match closes), which
    keeps the output byte-identical to the buffered engine on *every*
    document.
    """

    chain: Path  # loop steps, document root downward
    variables: tuple[str, ...]  # loop variables, outermost first
    kind: str  # "subtree" (VarRef body) | "path" (PathOutput body)
    body_path: Path  # relative output path ("path" kind; empty otherwise)
    envelope: tuple[str, ...]  # static element tags around the whole result
    wrappers: tuple[str, ...]  # static element tags around each binding's item
    binding_tags: frozenset[str]  # schema-possible tags of the binding

    def describe(self) -> str:
        body = (
            "subtree copy"
            if self.kind == "subtree"
            else f"path {format_path(self.body_path)}"
        )
        return (
            f"zero-buffer: chain {format_path(self.chain)} -> {body}; "
            f"binding tags {sorted(self.binding_tags) or '(schema-empty)'}"
        )


@dataclass
class SchemaConstraints:
    """Everything the schema pass proved about one compiled query."""

    schema: Schema
    pruned: tuple[PrunedPattern, ...] = ()
    signoff_facts: tuple[SignoffFact, ...] = ()
    zero_buffer: ZeroBufferPlan | None = None
    #: Roles carried by pruned nodes (what trusted mode drops).
    pruned_roles: tuple[Role, ...] = field(default=(), repr=False)

    @property
    def certified_zero_buffer(self) -> bool:
        return self.zero_buffer is not None

    def summary(self) -> str:
        lines = [
            f"schema constraints: {len(self.pruned)} pruned pattern(s), "
            f"{len(self.signoff_facts)} signoff fact(s)"
        ]
        for entry in self.pruned:
            lines.append(
                f"  pruned n{entry.display_id}: {entry.pattern}"
                + (f" (role {entry.role})" if entry.role else "")
            )
        for fact in self.signoff_facts:
            lines.append(f"  {fact.kind} {fact.var}{fact.path}: {fact.detail}")
        lines.append(
            "  " + self.zero_buffer.describe()
            if self.zero_buffer
            else "  zero-buffer: not certified"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


def _node_positions(
    schema: Schema, tree: ProjectionTree
) -> dict[int, PositionSet]:
    """Position set per tree node (keyed by ``id(node)``)."""
    positions: dict[int, PositionSet] = {id(tree.root): _DOC_SET}

    def visit(node: PTNode) -> None:
        here = positions[id(node)]
        for child in node.children:
            assert child.step is not None
            positions[id(child)] = apply_step(schema, here, child.step)
            visit(child)

    visit(tree.root)
    return positions


def _collect_pruned(
    tree: ProjectionTree, positions: dict[int, PositionSet]
) -> tuple[tuple[PrunedPattern, ...], tuple[Role, ...], set[int]]:
    pruned: list[PrunedPattern] = []
    pruned_node_ids: set[int] = set()
    seen_display: set[int] = set()
    for node in tree.all_nodes():
        if node.is_root:
            continue
        if not positions[id(node)].empty:
            continue
        parent = node.parent
        # Report only prune *frontiers* (the shallowest empty node); the
        # whole subtree below is implied and removed with it.
        frontier = parent is None or not positions[id(parent)].empty
        for member in node.iter_subtree():
            pruned_node_ids.add(id(member))
        if frontier and node.display_id not in seen_display:
            seen_display.add(node.display_id)
            pruned.append(
                PrunedPattern(
                    display_id=node.display_id,
                    pattern=format_path(node.path_from_root()),
                    role=node.role.name if node.role is not None else None,
                )
            )
    # Collect dropped roles through the registry, not ``node.role``:
    # redundancy elimination clears the node attribute but keeps the role
    # registered, and a pruned copy must drop those registrations too.
    pruned_roles = tuple(
        role
        for role in tree.roles
        if id(tree.role_nodes.get(role)) in pruned_node_ids
    )
    return tuple(pruned), pruned_roles, pruned_node_ids


def _signoff_facts(
    schema: Schema,
    variables: QueryVariables,
    dependencies: dict[str, list[Dependency]],
    tree: ProjectionTree,
    positions: dict[int, PositionSet],
) -> tuple[SignoffFact, ...]:
    facts: list[SignoffFact] = []
    for var, deps in dependencies.items():
        var_node = tree.var_nodes.get(var)
        if var_node is None:
            continue
        binding = positions[id(var_node)]
        if binding.empty:
            continue
        for dep in deps:
            facts.extend(_facts_for_dependency(schema, var, binding, dep))
    return tuple(facts)


def _facts_for_dependency(
    schema: Schema, var: str, binding: PositionSet, dep: Dependency
) -> list[SignoffFact]:
    facts: list[SignoffFact] = []
    steps = list(dep.path)
    # The trailing dos::node() of output dependencies preserves the
    # matched subtree; it is not an occurrence multiplier.
    if steps and steps[-1].axis is Axis.DOS:
        steps = steps[:-1]
    rendered = format_path(dep.path)

    # (b1) at-most-once: every element step is child::tag with a schema
    # occurrence ceiling of one under every possible parent tag.
    provable = bool(steps)
    sources = binding
    for step in steps:
        if (
            step.axis is not Axis.CHILD
            or step.test.kind is not TestKind.TAG
            or not sources.elements
        ):
            provable = False
            break
        assert step.test.name is not None
        if not all(
            not at_ref and schema.at_most_once(tag, step.test.name)
            for tag, at_ref in sources.elements
        ):
            provable = False
            break
        sources = apply_step(schema, sources, step)
    if provable:
        facts.append(
            SignoffFact(
                var=var,
                path=rendered,
                kind="at-most-once",
                detail="every step has occurrence ceiling 1 in the schema",
            )
        )

    # (b2) release horizon: sibling tags whose opening under the binding
    # proves no further match of the first step can start — the last
    # schema-possible occurrence, where FluX-style evaluation releases
    # the buffer instead of waiting for end-of-parent.
    if steps and steps[0].axis is Axis.CHILD and steps[0].test.kind is TestKind.TAG:
        first = steps[0].test.name
        assert first is not None
        closer_sets = [
            schema.closers(tag, first)
            for tag, at_ref in binding.elements
            if not at_ref
        ]
        if closer_sets and all(closer_sets):
            horizon = frozenset.intersection(*closer_sets)
            if horizon:
                facts.append(
                    SignoffFact(
                        var=var,
                        path=rendered,
                        kind="release-horizon",
                        detail=(
                            "releasable once one of "
                            f"{sorted(horizon)} opens under {var}"
                        ),
                    )
                )
    return facts


# ---------------------------------------------------------------------------
# (c) zero-buffer certification
# ---------------------------------------------------------------------------


def certify_zero_buffer(query: Query, schema: Schema) -> ZeroBufferPlan | None:
    """Certify ``query`` (surface or normalized) for direct evaluation.

    Returns a :class:`ZeroBufferPlan` when the query has the certified
    shape *and* the schema proves chain matches cannot nest in conforming
    documents; ``None`` otherwise.  Works on the plain normalized form
    (early updates and if-pushdown preserve semantics, so the direct
    runner evaluating the plain form is output-equivalent).
    """
    plain = normalize(query)
    envelope: list[str] = [plain.root.tag]
    expr: Expr = plain.root.body
    # Static element wrappers between the result constructor and the loop
    # chain join the envelope (emitted once, around everything).
    while isinstance(expr, Element):
        envelope.append(expr.tag)
        expr = expr.body

    chain: list[Step] = []
    variables: list[str] = []
    source = ROOT_VAR
    while isinstance(expr, ForLoop):
        if expr.where is not None or expr.source != source or len(expr.path) != 1:
            return None
        step = expr.path[0]
        if step.axis not in (Axis.CHILD, Axis.DESCENDANT):
            return None
        if step.test.kind not in (TestKind.TAG, TestKind.STAR) or step.first:
            return None
        if step.last:
            return None
        chain.append(step)
        variables.append(expr.var)
        source = expr.var
        expr = expr.body
    if not chain:
        return None

    wrappers: list[str] = []
    while isinstance(expr, Element):
        wrappers.append(expr.tag)
        expr = expr.body

    binding = apply_path(schema, _DOC_SET, tuple(chain))
    binding_tags = binding.tags()

    if isinstance(expr, VarRef) and expr.var == variables[-1]:
        kind, body_path = "subtree", ()
    elif isinstance(expr, PathOutput) and expr.var == variables[-1]:
        # Child-axis-only output paths have the fixed-relative-depth
        # property: two matches can never nest, on *any* document — no
        # schema fact needed for the inner path.
        for index, step in enumerate(expr.path):
            if step.axis is not Axis.CHILD or step.first or step.last:
                return None
            last = index == len(expr.path) - 1
            allowed = (
                (TestKind.TAG, TestKind.STAR, TestKind.TEXT)
                if last
                else (TestKind.TAG, TestKind.STAR)
            )
            if step.test.kind not in allowed:
                return None
        kind, body_path = "path", tuple(expr.path)
    else:
        return None

    # The schema proof: no possible binding tag is reachable below a
    # possible binding tag, hence chain matches cannot nest in conforming
    # documents (over-approximate reachability, see Schema.reachable_from).
    for tag in binding_tags:
        if binding_tags & schema.reachable_from(tag):
            return None

    return ZeroBufferPlan(
        chain=tuple(chain),
        variables=tuple(variables),
        kind=kind,
        body_path=body_path,
        envelope=tuple(envelope),
        wrappers=tuple(wrappers),
        binding_tags=binding_tags,
    )


def compute_schema_constraints(
    source: Query,
    variables: QueryVariables,
    dependencies: dict[str, list[Dependency]],
    tree: ProjectionTree,
    schema: Schema,
) -> SchemaConstraints:
    """Run the full schema-constraint pass for one compiled query."""
    positions = _node_positions(schema, tree)
    pruned, pruned_roles, _node_ids = _collect_pruned(tree, positions)
    facts = _signoff_facts(schema, variables, dependencies, tree, positions)
    plan = certify_zero_buffer(source, schema)
    return SchemaConstraints(
        schema=schema,
        pruned=pruned,
        signoff_facts=facts,
        zero_buffer=plan,
        pruned_roles=pruned_roles,
    )


# ---------------------------------------------------------------------------
# Trusted-mode application (assumes conforming input, like FluX)
# ---------------------------------------------------------------------------


def prune_projection_tree(
    tree: ProjectionTree, schema: Schema
) -> tuple[ProjectionTree, tuple[Role, ...]]:
    """Copy ``tree`` without schema-unmatchable nodes.

    Returns the pruned copy plus the roles that fell away with the
    removed nodes; the heavy lifting (consistent filtering of the role
    registry, dependency entries, and signoff tables) lives in
    :meth:`~repro.analysis.projection_tree.ProjectionTree.pruned_copy`.
    """
    positions = _node_positions(schema, tree)
    _pruned, pruned_roles, pruned_node_ids = _collect_pruned(tree, positions)
    pruned_tree = tree.pruned_copy(pruned_node_ids, set(pruned_roles))
    return pruned_tree, tuple(pruned_roles)


def apply_trusted_constraints(compiled):
    """Derive trusted-mode artifacts from a schema-compiled query.

    Returns a new :class:`~repro.analysis.compile.CompiledQuery` whose
    projection tree and rewritten query have the schema-pruned patterns
    removed.  On conforming documents the result is byte-identical to the
    untrusted artifacts (pruned patterns never match); on violating
    documents the pruned subtrees are not buffered, so output may differ
    — this is the documented FluX operating assumption, which is why the
    transform only runs under ``EngineOptions(trust_schema=True)``.
    """
    from dataclasses import replace

    constraints = compiled.constraints
    if constraints is None or not constraints.pruned:
        return compiled
    pruned_tree, pruned_roles = prune_projection_tree(
        compiled.projection_tree, constraints.schema
    )
    rewritten = strip_signoffs(compiled.rewritten, pruned_roles)
    # The join plan is keyed by loop-node identity; the stripped query is
    # a fresh AST, so recompute it against the new nodes.
    from repro.analysis.joinplan import compute_join_plan

    return replace(
        compiled,
        projection_tree=pruned_tree,
        rewritten=rewritten,
        joinplan=compute_join_plan(rewritten),
    )
