"""The static analysis pipeline: from surface query to compiled artifacts.

``compile_query`` chains the stages of Sections 3, 4 and 6:

1. normalization (let removal, where->if, multi-step expansion),
2. early updates (Section 6, optional): outputs become one-iteration loops,
3. if-pushdown (Figure 7), so no signOff lands inside an if-expression
   (run after early updates so the freshly created loops receive their ifs),
4. variable analysis: VarsQ, parVarQ, straightness, fsa,
5. dependency collection (Definition 2),
6. projection tree derivation with role assignment (Section 4),
7. signOff insertion (Figure 8),
8. redundant role elimination (Section 6, optional).

The result bundles everything the runtime needs: the rewritten query, the
projection tree, and the analysis tables (useful for inspection and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dependencies import Dependency, collect_dependencies
from repro.analysis.earliness import EarlinessPlan, compute_earliness
from repro.analysis.early_updates import apply_early_updates
from repro.analysis.joinplan import JoinPlan, compute_join_plan
from repro.analysis.projection_tree import (
    ProjectionTree,
    attach_aggregate_chains,
    build_projection_tree,
)
from repro.analysis.redundancy import eliminate_redundant_roles
from repro.analysis.roles import Role
from repro.analysis.schema import Schema
from repro.analysis.schema_constraints import (
    SchemaConstraints,
    compute_schema_constraints,
)
from repro.analysis.signoff import insert_signoffs
from repro.analysis.straight import StraightInfo, compute_straight
from repro.xquery.ast import Query
from repro.xquery.ifpushdown import push_ifs_down_query
from repro.xquery.normalize import normalize
from repro.xquery.parser import parse_query
from repro.xquery.semantics import QueryVariables, analyze_variables

__all__ = ["CompileOptions", "CompiledQuery", "compile_query"]


@dataclass(frozen=True)
class CompileOptions:
    """Feature switches for the Section 6 optimizations.

    The defaults match the paper's prototype ("implemented exactly as
    described in this paper"), i.e. all optimizations on.  The benchmark
    ablations toggle them individually.
    """

    early_updates: bool = True
    eliminate_redundant: bool = True
    push_ifs_only_over_loops: bool = False
    first_witness: bool = True


@dataclass
class CompiledQuery:
    """Everything the static analysis produced for one query."""

    source: Query  # the parsed, un-normalized query
    normalized: Query  # core XQ before signOff insertion
    rewritten: Query  # with signOff statements (and eliminations applied)
    variables: QueryVariables
    straight: StraightInfo
    dependencies: dict[str, list[Dependency]]
    projection_tree: ProjectionTree
    eliminated_roles: list[Role] = field(default_factory=list)
    options: CompileOptions = field(default_factory=CompileOptions)
    #: The schema the query was compiled against, if any, and the facts the
    #: schema-constraint pass proved (pruning, signoff strengthening, and —
    #: when it holds — the zero-buffer certification the direct runner uses).
    schema: Schema | None = None
    constraints: SchemaConstraints | None = None
    #: Decided-watermark plan (docs/EARLINESS.md): which output sites may
    #: stream as tokens arrive, and the per-node watermark report.
    earliness: EarlinessPlan | None = None
    #: Equi-join loops of the rewritten query (docs/JOINS.md), keyed by
    #: loop-node identity; the evaluator dispatches them to the hash
    #: build/probe path.  Recomputed whenever ``rewritten`` is replaced
    #: (trusted-schema pruning), since the keys are ``id()``-based.
    joinplan: JoinPlan = field(default_factory=JoinPlan)

    @property
    def certified_zero_buffer(self) -> bool:
        return self.constraints is not None and self.constraints.certified_zero_buffer


def compile_query(
    query: Query | str,
    options: CompileOptions | None = None,
    *,
    schema: Schema | None = None,
) -> CompiledQuery:
    """Run the full static analysis pipeline on a query (or query text).

    With ``schema`` the pipeline additionally runs the schema-constraint
    pass (:mod:`repro.analysis.schema_constraints`): the resulting
    :class:`CompiledQuery` records the proofs in ``constraints`` and the
    engines dispatch certified queries to the zero-buffer direct runner.
    The default artifacts stay untouched — schema facts only rewrite the
    runtime plan under ``EngineOptions(trust_schema=True)``.
    """
    options = options or CompileOptions()
    source = parse_query(query) if isinstance(query, str) else query
    normalized = normalize(source)
    # Early updates must precede if-pushdown: the rewrite turns outputs into
    # for-loops, and pushdown then moves enclosing ifs inside those loops so
    # that every signOff batch is executed unconditionally (the guarantee of
    # Section 3's "Pushing if-Statements").
    if options.early_updates:
        normalized = apply_early_updates(normalized)
    normalized = push_ifs_down_query(
        normalized, only_over_loops=options.push_ifs_only_over_loops
    )
    variables = analyze_variables(normalized)
    straight = compute_straight(variables)
    dependencies = collect_dependencies(
        normalized, first_witness=options.first_witness
    )
    tree = build_projection_tree(normalized, variables, dependencies)
    # Accumulable aggregates contribute no dependencies; their role-less
    # acc chains keep the matcher descending so the lane's accumulator
    # sees the tokens it counts (repro.engine.relops.aggregates).
    from repro.engine.relops.aggregates import collect_aggregate_sites

    aggregate_sites = collect_aggregate_sites(normalized)
    if aggregate_sites:
        attach_aggregate_chains(tree, aggregate_sites)
    rewritten = insert_signoffs(normalized, variables, straight, tree)
    eliminated: list[Role] = []
    if options.eliminate_redundant:
        rewritten, eliminated = eliminate_redundant_roles(rewritten, variables, tree)
    constraints: SchemaConstraints | None = None
    if schema is not None:
        constraints = compute_schema_constraints(
            source, variables, dependencies, tree, schema
        )
    earliness = compute_earliness(rewritten, tree, constraints)
    joinplan = compute_join_plan(rewritten)
    return CompiledQuery(
        source=source,
        normalized=normalized,
        rewritten=rewritten,
        variables=variables,
        straight=straight,
        dependencies=dependencies,
        projection_tree=tree,
        eliminated_roles=eliminated,
        options=options,
        schema=schema,
        constraints=constraints,
        earliness=earliness,
        joinplan=joinplan,
    )
