"""Projection trees (Sections 2 and 4).

A projection tree summarizes the set of projection paths of a query.  Inner
nodes are location steps; leaves may be ``dos::node()`` steps that preserve
whole subtrees; steps may carry a ``[1]`` (first witness) predicate.  Each
displayed node ``n_i`` defines a role ``r_i`` (``rpi`` in the paper).

Construction (Section 4) proceeds from the variable tree: every variable
becomes a node labeled with its for-loop step and carrying the loop's
*binding* role; every dependency ``<path, r>`` of the variable becomes a
chain of step nodes below it, with the *dependency* role on the last step of
the chain.  The paper draws a chain as a single node labeled with the whole
path (e.g. ``n7 : /title/dos::node()``), so chain nodes share one display id.

Node numbering follows the paper's figures: depth-first over the variable
tree, numbering each variable node, then its dependency chains, then its
child variables.  The root is ``n1`` and carries no role ($root is never
purged during evaluation; the document node is released when the stream
ends).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dependencies import Dependency
from repro.analysis.roles import Role
from repro.xquery.ast import ROOT_VAR, Query
from repro.xquery.paths import TEXT, Axis, Path, Step, dos_node, format_path

_DOS_STEP = dos_node()
from repro.xquery.semantics import QueryVariables

__all__ = [
    "PTNode",
    "ProjectionTree",
    "attach_aggregate_chains",
    "build_projection_tree",
]


@dataclass(eq=False)
class PTNode:
    """One step node of the projection tree."""

    display_id: int
    step: Step | None  # None only for the root "/"
    role: Role | None = None
    var: str | None = None  # set for variable (binding) nodes and the root
    parent: "PTNode | None" = None
    children: list["PTNode"] = field(default_factory=list)
    #: Accumulator chain node (repro.engine.relops.aggregates): carries no
    #: role — matched tokens are *not* preserved — but keeps the matcher
    #: descending so the projection lane sees the tokens an aggregate
    #: counts.  Without these chains a pure-aggregate query's subtrees
    #: would be skipped as dead and the accumulator would never fire.
    acc: bool = False

    def add_child(self, child: "PTNode") -> None:
        child.parent = self
        self.children.append(child)

    @property
    def is_root(self) -> bool:
        return self.step is None

    def path_from_root(self) -> Path:
        """The absolute pattern of this node (used by containment checks)."""
        steps: list[Step] = []
        node: PTNode | None = self
        while node is not None and node.step is not None:
            steps.append(node.step)
            node = node.parent
        return tuple(reversed(steps))

    def iter_subtree(self):
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def __repr__(self) -> str:
        label = "/" if self.step is None else str(self.step)
        role = f" role={self.role.name}" if self.role else ""
        return f"PTNode(n{self.display_id}: {label}{role})"


class ProjectionTree:
    """The projection tree of a query plus the role registry."""

    def __init__(self, root: PTNode) -> None:
        self.root = root
        self.var_nodes: dict[str, PTNode] = {}
        self.dep_entries: dict[str, list[tuple[Dependency, Role]]] = {}
        # All signOff paths per variable, in emission order: prefix roles of
        # multi-step chains first, then the dependency's own role.
        self.signoff_entries: dict[str, list[tuple[Path, Role]]] = {}
        self.roles: list[Role] = []
        self.role_nodes: dict[Role, PTNode] = {}

    # -- queries used by signOff insertion and the engines ---------------

    def binding_role(self, var: str) -> Role | None:
        node = self.var_nodes.get(var)
        return node.role if node is not None else None

    def dependency_roles(self, var: str) -> list[tuple[Dependency, Role]]:
        return self.dep_entries.get(var, [])

    def all_nodes(self):
        yield from self.root.iter_subtree()

    def node_count(self) -> int:
        return sum(1 for _ in self.all_nodes())

    def pruned_copy(
        self, drop_node_ids: set[int], removed_roles: set[Role]
    ) -> "ProjectionTree":
        """Deep-copy the tree without the nodes in ``drop_node_ids``.

        ``drop_node_ids`` holds ``id()`` values of nodes to omit (whole
        subtrees: a listed node's descendants must be listed too);
        ``removed_roles`` are the roles those nodes carried.  The copy
        keeps display ids and chain structure and filters the role
        registry, dependency entries, and signoff tables consistently —
        used by the schema-constraint pass (trusted mode) to drop
        patterns a schema proves unmatchable.
        """
        new_root = PTNode(
            display_id=self.root.display_id, step=None, var=self.root.var
        )
        copy = ProjectionTree(new_root)
        mapping: dict[int, PTNode] = {id(self.root): new_root}

        def visit(node: PTNode, twin: PTNode) -> None:
            for child in node.children:
                if id(child) in drop_node_ids:
                    continue
                child_twin = PTNode(
                    display_id=child.display_id,
                    step=child.step,
                    role=child.role,
                    var=child.var,
                    acc=child.acc,
                )
                twin.add_child(child_twin)
                mapping[id(child)] = child_twin
                visit(child, child_twin)

        visit(self.root, new_root)

        for var, node in self.var_nodes.items():
            twin = mapping.get(id(node))
            if twin is not None:
                copy.var_nodes[var] = twin
        copy.roles = [role for role in self.roles if role not in removed_roles]
        copy.role_nodes = {
            role: mapping[id(node)]
            for role, node in self.role_nodes.items()
            if role not in removed_roles
        }
        copy.dep_entries = {
            var: kept
            for var, entries in self.dep_entries.items()
            if (
                kept := [
                    (dep, role)
                    for dep, role in entries
                    if role not in removed_roles
                ]
            )
        }
        copy.signoff_entries = {
            var: kept
            for var, entries in self.signoff_entries.items()
            if (
                kept := [
                    (path, role)
                    for path, role in entries
                    if role not in removed_roles
                ]
            )
        }
        return copy

    # -- display ----------------------------------------------------------

    def format(self, *, merge_roleless: bool = False) -> str:
        """Render the tree the way the paper's figures do.

        With ``merge_roleless`` true, variable nodes whose binding role was
        eliminated are folded into their children's labels (Figure 12).
        """
        lines: list[str] = []

        def label_of(node: PTNode, prefix: list[Step]) -> str:
            steps = prefix + _chain_steps(node)
            if all(step.axis is Axis.DOS for step in steps):
                return format_path(steps, leading_slash=False)
            return _render_steps(steps)

        def walk(node: PTNode, depth: int, prefix: list[Step]) -> None:
            if node.is_root:
                lines.append("n1: /")
                for child in node.children:
                    walk(child, 1, [])
                return
            chain_end = _chain_end(node)
            merged = (
                merge_roleless
                and node.var is not None
                and node.role is None
                and chain_end is node
            )
            if merged:
                for child in node.children:
                    walk(child, depth, prefix + [node.step])  # type: ignore[list-item]
                return
            suffix = " [acc]" if node.acc else ""
            lines.append(
                "  " * depth
                + f"n{node.display_id}: {label_of(node, prefix)}{suffix}"
            )
            for child in chain_end.children:
                walk(child, depth + 1, [])

        walk(self.root, 0, [])
        return "\n".join(lines)


def _chain_steps(node: PTNode) -> list[Step]:
    """The steps of the display chain starting at ``node``."""
    steps = [node.step]
    current = node
    while (
        len(current.children) == 1
        and current.children[0].display_id == current.display_id
    ):
        current = current.children[0]
        steps.append(current.step)
    return [step for step in steps if step is not None]


def _chain_end(node: PTNode) -> PTNode:
    current = node
    while (
        len(current.children) == 1
        and current.children[0].display_id == current.display_id
    ):
        current = current.children[0]
    return current


def _render_steps(steps: list[Step]) -> str:
    parts: list[str] = []
    for step in steps:
        if step.axis is Axis.DESCENDANT:
            parts.append("//" + _test_str(step))
        elif step.axis is Axis.DOS:
            parts.append("/dos::" + str(step.test) + ("[1]" if step.first else ""))
        else:
            parts.append("/" + _test_str(step))
    return "".join(parts)


def _test_str(step: Step) -> str:
    return str(step.test) + ("[1]" if step.first else "")


def build_projection_tree(
    query: Query,
    variables: QueryVariables,
    dependencies: dict[str, list[Dependency]],
) -> ProjectionTree:
    """Derive the projection tree and role assignment from the query."""
    root = PTNode(display_id=1, step=None, var=ROOT_VAR)
    tree = ProjectionTree(root)
    tree.var_nodes[ROOT_VAR] = root
    counter = 1  # display ids; the root consumed n1
    role_counter = 1  # role ids follow display ids, prefix roles come after

    def next_id() -> int:
        nonlocal counter, role_counter
        counter += 1
        role_counter = max(role_counter, counter)
        return counter

    def next_prefix_role_id() -> int:
        nonlocal role_counter
        role_counter += 1
        return role_counter

    prefix_chains: list[tuple[str, PTNode, Path]] = []

    def add_dependency_chain(anchor: PTNode, dep: Dependency) -> Role:
        display_id = next_id()
        role = Role(id=display_id, kind="dep", var=dep.var)
        current = anchor
        chain: list[PTNode] = []
        for index, step in enumerate(dep.path):
            node = PTNode(display_id=display_id, step=step)
            if index == len(dep.path) - 1:
                node.role = role
            current.add_child(node)
            current = node
            chain.append(node)
        tree.roles.append(role)
        tree.role_nodes[role] = current
        # Intermediate chain steps that no role would preserve: everything
        # except the last step and — for dos-tailed paths — the step the
        # dos::node() leaf self-covers.  They receive *prefix roles* so the
        # evaluator can navigate the buffered path and the batch signOff can
        # release them (the paper's fragment only has single-step condition
        # paths; multi-step conditions are our documented extension).
        covered_from = len(dep.path) - (2 if dep.path[-1] == _DOS_STEP else 1)
        for index in range(covered_from):
            prefix_chains.append((dep.var, chain[index], dep.path[: index + 1]))
        return role

    def visit(var: str) -> None:
        anchor = tree.var_nodes[var]
        for dep in dependencies.get(var, []):
            role = add_dependency_chain(anchor, dep)
            tree.dep_entries.setdefault(var, []).append((dep, role))
        for child_var in variables.children(var):
            info = variables.info(child_var)
            display_id = next_id()
            role = Role(id=display_id, kind="binding", var=child_var)
            if len(info.path) != 1:
                raise ValueError(
                    f"for-loop of {child_var} must be single-step before analysis"
                )
            node = PTNode(
                display_id=display_id, step=info.path[0], role=role, var=child_var
            )
            anchor_node = tree.var_nodes[info.parent or ROOT_VAR]
            anchor_node.add_child(node)
            tree.var_nodes[child_var] = node
            tree.roles.append(role)
            tree.role_nodes[role] = node
            visit(child_var)

    visit(ROOT_VAR)

    # Assign prefix roles (ids continue after the displayed nodes) and build
    # the per-variable signOff emission lists: for every dependency, prefix
    # paths first, then the dependency's own path.
    prefix_roles: dict[int, Role] = {}
    for var, node, _path in prefix_chains:
        role = Role(id=next_prefix_role_id(), kind="prefix", var=var)
        node.role = role
        tree.roles.append(role)
        tree.role_nodes[role] = node
        prefix_roles[id(node)] = role

    for var in variables:
        entries: list[tuple[Path, Role]] = []
        for dep, role in tree.dep_entries.get(var, []):
            for candidate_var, node, path in prefix_chains:
                if candidate_var == var and _is_chain_of(node, tree.role_nodes[role]):
                    entries.append((path, prefix_roles[id(node)]))
            entries.append((dep.path, role))
        if entries:
            tree.signoff_entries[var] = entries
    return tree


def attach_aggregate_chains(tree: ProjectionTree, sites) -> None:
    """Attach role-less accumulator chains for the query's aggregate paths.

    ``sites`` are the pre-deduplicated accumulator groups
    (:func:`repro.engine.relops.aggregates.collect_aggregate_sites`).  Each
    gets a chain of ``acc``-flagged nodes under its variable's tree node.
    The chain carries no role — matched tokens are never preserved on its
    account — but the matcher keeps descending through subtrees it matches,
    so the projection lane observes the open/text/close tokens the
    accumulator automaton needs.  Value-capturing sites (``sum``/``avg``)
    additionally get a ``dos::node()`` continuation below the terminal
    step: the captured value is the matched subtree's *string value*, so
    the whole subtree must stay visible to the lane, not just its root.
    Paths with positional predicates never reach here: they keep a real
    buffered dependency instead (see ``collect_dependencies``).
    """
    next_display = max(node.display_id for node in tree.all_nodes()) + 1
    for site in sites:
        anchor = tree.var_nodes.get(site.var)
        if anchor is None:
            continue
        current = anchor
        for step in site.path:
            node = PTNode(display_id=next_display, step=step, acc=True)
            current.add_child(node)
            current = node
        if site.needs_values and site.path[-1].test.kind is not TEXT:
            tail = PTNode(display_id=next_display, step=dos_node(), acc=True)
            current.add_child(tail)
        next_display += 1


def _is_chain_of(prefix_node: PTNode, chain_end: PTNode) -> bool:
    """Is ``prefix_node`` an ancestor (same display chain) of ``chain_end``?"""
    node: PTNode | None = chain_end
    while node is not None and node.display_id == chain_end.display_id:
        if node is prefix_node:
            return True
        node = node.parent
    return False
