"""Variable dependencies (Definition 2).

``dep($x)`` collects, for every variable, the relative paths whose matches
must be preserved in the buffer:

* ``exists $x/path``            ->  ``path`` with a ``[1]`` predicate on the
                                    last step (only the first witness counts),
* output or comparison ``$x/path`` -> ``path/dos::node()`` (the node and its
                                    whole subtree are needed),
* bare output ``$x``            ->  ``dos::node()``.

Deviation from the letter of the paper: entries are deduplicated per
variable by path.  If-pushdown (Figure 7) triples conditions syntactically;
giving each copy its own role would triple buffering for no benefit.  All
copies are signed off in the same batch (the scope end of ``fsa``), so one
role per distinct path is assigned exactly as often as it is removed.

Multi-step condition paths are kept (the paper's XMark adaptation rewrites
only for-loop paths to single steps); Definition 2 extends verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xquery.ast import (
    Aggregate,
    And,
    Comparison,
    Condition,
    Element,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    Not,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    SignOff,
    Sequence,
    VarRef,
)
from repro.xquery.paths import Path, Step, dos_node

__all__ = ["Dependency", "collect_dependencies"]


@dataclass(frozen=True, slots=True)
class Dependency:
    """One entry of ``dep($x)``: a relative path that must stay buffered."""

    var: str
    path: Path

    def __str__(self) -> str:
        from repro.xquery.paths import format_path

        return f"<{format_path(self.path)}>"


def _with_first_witness(path: Path) -> Path:
    """Mark the last step with the ``[1]`` (first witness) predicate."""
    *prefix, last = path
    return tuple(prefix) + (Step(last.axis, last.test, first=True),)


def _with_subtree(path: Path) -> Path:
    """Append ``dos::node()`` so the whole subtree is preserved."""
    return path + (dos_node(),)


def collect_dependencies(
    query: Query, *, first_witness: bool = True
) -> dict[str, list[Dependency]]:
    """Compute ``dep($x)`` for every variable, in syntactic order.

    The returned dict maps variable names to ordered, de-duplicated
    dependency lists; variables without dependencies are absent.

    With ``first_witness=False``, existence checks keep *all* witnesses
    instead of the first one (no ``[1]`` predicate) — this models engines
    without the paper's first-witness trimming, e.g. the flux-like baseline.
    """
    deps: dict[str, list[Dependency]] = {}
    seen: set[tuple[str, Path]] = set()

    def record(var: str, path: Path) -> None:
        key = (var, path)
        if key in seen:
            return
        seen.add(key)
        deps.setdefault(var, []).append(Dependency(var, path))

    def visit(expr: Expr) -> None:
        if isinstance(expr, Sequence):
            for item in expr.items:
                visit(item)
        elif isinstance(expr, Element):
            visit(expr.body)
        elif isinstance(expr, ForLoop):
            if expr.where is not None:
                visit_condition(expr.where)
            visit(expr.body)
        elif isinstance(expr, IfThenElse):
            visit_condition(expr.cond)
            visit(expr.then_branch)
            visit(expr.else_branch)
        elif isinstance(expr, VarRef):
            record(expr.var, (dos_node(),))
        elif isinstance(expr, PathOutput):
            record(expr.var, _with_subtree(expr.path))
        elif isinstance(expr, Aggregate):
            # Accumulable aggregates contribute no dependencies at all: the
            # projection lane's O(1) accumulator replaces the subtree the
            # naive reading of Definition 2 would buffer
            # (repro.engine.relops.aggregates).  Paths with positional
            # predicates fall outside the accumulator automaton, so they
            # keep the buffered subtree and are navigated at eval time.
            if any(step.first or step.last for step in expr.path):
                record(expr.var, _with_subtree(expr.path))
        elif isinstance(expr, SignOff):
            raise ValueError("dependencies must be collected before signOff insertion")

    def visit_condition(
        cond: Condition, rebind: dict[str, tuple[str, Path]] | None = None
    ) -> None:
        def resolved(var: str, path: Path) -> tuple[str, Path]:
            # Rebase paths on quantified variables onto the binding
            # source (transitively, for nested quantifiers).
            while rebind and var in rebind:
                base_var, base_prefix = rebind[var]
                var, path = base_var, base_prefix + path
            return var, path

        if isinstance(cond, Exists):
            path = _with_first_witness(cond.path) if first_witness else cond.path
            record(*resolved(cond.var, path))
        elif isinstance(cond, Comparison):
            for operand in (cond.left, cond.right):
                if isinstance(operand, PathOperand):
                    record(*resolved(operand.var, _with_subtree(operand.path)))
        elif isinstance(cond, Quantified):
            # The witness nodes themselves must be buffered (the evaluator
            # binds and navigates from them); every witness may need
            # testing, so no first-witness trimming on the binding path.
            record(*resolved(cond.source, cond.path))
            inner_rebind = dict(rebind) if rebind else {}
            inner_rebind[cond.var] = (cond.source, cond.path)
            visit_condition(cond.inner, inner_rebind)
        elif isinstance(cond, (And, Or)):
            visit_condition(cond.left, rebind)
            visit_condition(cond.right, rebind)
        elif isinstance(cond, Not):
            visit_condition(cond.operand, rebind)

    visit(query.root)
    return deps
