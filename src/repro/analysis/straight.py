"""Straight variables and first straight ancestors (Definitions 3 and 4).

A variable is *straight* when its defining for-loop is nested, lexically,
only inside for-loops of its own parVar-ancestors.  SignOff statements for a
variable's roles are emitted at the scope end of its first straight ancestor
``fsa($z)``: for straight variables that is their own loop (per-binding
removal); for non-straight variables — e.g. the inner absolute loop of
Figure 9, or the join sides of XMark Q8 — removal is deferred, because their
bindings are revisited across iterations of unrelated loops.
"""

from __future__ import annotations


from repro.xquery.ast import ROOT_VAR
from repro.xquery.semantics import QueryVariables

__all__ = ["StraightInfo", "compute_straight"]


class StraightInfo:
    """Straightness and ``fsa`` for every variable of a query."""

    def __init__(self, variables: QueryVariables) -> None:
        self._variables = variables
        self._straight: dict[str, bool] = {}
        self._fsa: dict[str, str] = {}
        for name in variables:
            self._straight[name] = self._compute_straight(name)
        for name in variables:
            self._fsa[name] = self._compute_fsa(name)

    def is_straight(self, name: str) -> bool:
        return self._straight[name]

    def fsa(self, name: str) -> str:
        """``fsaQ($x)``: the first straight ancestor variable."""
        return self._fsa[name]

    def variables_with_fsa(self, name: str) -> list[str]:
        """All variables whose signOffs belong to ``name``'s scope end."""
        return [v for v in self._variables if self._fsa[v] == name]

    # ------------------------------------------------------------------

    def _compute_straight(self, name: str) -> bool:
        if name == ROOT_VAR:
            return True
        if name in self._straight:
            return self._straight[name]
        info = self._variables.info(name)
        parent = info.parent
        assert parent is not None
        # Condition (1): the parent variable is straight.
        if not self._compute_straight(parent):
            self._straight[name] = False
            return False
        # Condition (2): every lexically enclosing loop variable is an
        # ancestor variable of this one.
        for enclosing in info.enclosing_loops:
            if not self._variables.is_ancestor(enclosing, name):
                self._straight[name] = False
                return False
        self._straight[name] = True
        return True

    def _compute_fsa(self, name: str) -> str:
        node = name
        while not self._straight[node]:
            parent = self._variables.parent(node)
            assert parent is not None, "$root is straight, recursion terminates"
            node = parent
        return node


def compute_straight(variables: QueryVariables) -> StraightInfo:
    """Convenience constructor mirroring the other analysis entry points."""
    return StraightInfo(variables)
