"""The "early updates" optimization (Section 6).

An output expression ``$x/sigma`` receives its signOff only at the end of
``$x``'s scope; if ``$x`` has several matches for ``sigma``, none is purged
before all have been output.  Rewriting ``$x/sigma`` to ``for $y in
$x/sigma return $y`` gives every match its own one-iteration scope, so each
output node is signed off (and garbage collected) immediately after it has
been written to the output stream.

The rewrite is applied after normalization, when every output path has a
single step.  Text-test outputs are rewritten too (iterating text nodes).
"""

from __future__ import annotations

from repro.xquery.ast import Element, Expr, ForLoop, PathOutput, Query, VarRef
from repro.xquery.normalize import FreshVariables, map_expr, used_variables

__all__ = ["apply_early_updates"]


def apply_early_updates(query: Query, fresh: FreshVariables | None = None) -> Query:
    """Rewrite all path outputs to one-iteration for-loops."""
    if fresh is None:
        fresh = FreshVariables(used_variables(query.root))

    def transform(node: Expr) -> Expr:
        if isinstance(node, PathOutput):
            # Positional outputs stay as they are: the one-iteration loop
            # would carry a [1]/[last()] step, which core XQ forbids (and
            # a positional match cannot be released early anyway — it is
            # only known once its siblings have been seen).
            if any(step.first or step.last for step in node.path):
                return node
            var = fresh.fresh("out")
            return ForLoop(var, node.var, node.path, VarRef(var))
        return node

    root = map_expr(query.root, transform)
    if not isinstance(root, Element):
        raise TypeError("early updates must preserve the root constructor")
    return Query(root)
