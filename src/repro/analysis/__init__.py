"""Static analysis (Section 4): projection trees, roles, signOff insertion.

The entry point is :func:`compile_query`, which runs the full pipeline and
returns a :class:`CompiledQuery` bundling the rewritten query, the
projection tree with role assignment, and the analysis tables.
"""

from repro.analysis.compile import CompiledQuery, CompileOptions, compile_query
from repro.analysis.dependencies import Dependency, collect_dependencies
from repro.analysis.earliness import (
    EarlinessPlan,
    NodeWatermark,
    OutputDecision,
    compute_earliness,
)
from repro.analysis.early_updates import apply_early_updates
from repro.analysis.projection_tree import (
    ProjectionTree,
    PTNode,
    build_projection_tree,
)
from repro.analysis.redundancy import (
    eliminate_redundant_roles,
    is_vacuous_body,
    pattern_contains,
)
from repro.analysis.roles import Role, RoleSet, UndefinedRoleRemoval
from repro.analysis.schema import ChildSpec, Schema, SchemaViolation, load_dtd
from repro.analysis.schema_constraints import (
    SchemaConstraints,
    ZeroBufferPlan,
    apply_trusted_constraints,
    certify_zero_buffer,
    compute_schema_constraints,
)
from repro.analysis.union_tree import (
    UnionNode,
    UnionProjection,
    build_union_projection,
)
from repro.analysis.signoff import insert_signoffs, su_q
from repro.analysis.straight import StraightInfo, compute_straight

__all__ = [
    "compile_query",
    "CompiledQuery",
    "CompileOptions",
    "Dependency",
    "collect_dependencies",
    "EarlinessPlan",
    "NodeWatermark",
    "OutputDecision",
    "compute_earliness",
    "apply_early_updates",
    "ProjectionTree",
    "PTNode",
    "build_projection_tree",
    "eliminate_redundant_roles",
    "pattern_contains",
    "is_vacuous_body",
    "Role",
    "RoleSet",
    "UndefinedRoleRemoval",
    "ChildSpec",
    "Schema",
    "SchemaViolation",
    "load_dtd",
    "SchemaConstraints",
    "ZeroBufferPlan",
    "apply_trusted_constraints",
    "certify_zero_buffer",
    "compute_schema_constraints",
    "UnionNode",
    "UnionProjection",
    "build_union_projection",
    "insert_signoffs",
    "su_q",
    "StraightInfo",
    "compute_straight",
]
