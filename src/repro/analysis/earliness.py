"""Earliest query answering: per-site decided watermarks (docs/EARLINESS.md).

The conservative evaluator serializes an output subtree only once it is
*finished* (its close tag has been read).  Following the earliest-answering
formulation of Gienieczko/Muñoz/Murlak/Paperman (PAPERS.md), this pass
computes, per output expression and per projection-tree node, a **decided
watermark**: the earliest stream event after which no future token can
invalidate or reorder already-produced output.  The evaluator uses the
plan to flush buffered output the moment its watermark passes.

Two watermark kinds are *structural* — they hold on every document, with
no schema assumption, so the runtime may act on them unconditionally:

``open``
    The output site has a matching ``dep`` role ending in ``dos::node()``.
    That role is assigned as an *aggregate* role on the target node itself
    (see :mod:`repro.stream.matcher`), so from the target's open tag until
    the signoff that follows the output expression, every arriving
    descendant is preserved verbatim, never marked or purged, and children
    only ever append.  Serializing in arrival order is therefore
    byte-identical to serializing after the close tag — the subtree is
    decided *at its open tag* and can stream out as it arrives.

``first-witness``
    An existential condition (``exists``, or a comparison, which has
    existential semantics over its operand sequences) is decided **true**
    at its first witnessing token: no later token can turn a satisfied
    existential false.  The evaluator may commit the then-branch — and
    start emitting — without scanning the rest of the binding's subtree.

Two further kinds are *schema-derived* (folded from
:class:`~repro.analysis.schema_constraints.SignoffFact`).  They are
report-only watermarks unless ``EngineOptions(trust_schema=True)``: the
runtime must never rely on them on untrusted input, because a document
that violates the schema after such a watermark would otherwise retract
emitted output (the adversarial splicing tests pin this down):

``at-most-once``
    The schema proves a dependency matches at most once per binding; its
    role could be signed off at the first match.

``horizon``
    The schema proves no further match can start after some close tag
    (the release horizon); the dependency is decided at that close.

Everything else falls back to the ``signoff`` watermark — the paper's
conservative behavior: decided when the dependency's signoff executes.

The plan is computed on the rewritten (post-signoff) query so its sites
are exactly the runtime's output expressions; sites are keyed by
``(variable, relative path)`` rather than AST object identity so the plan
survives the trusted-schema rewrite, which rebuilds the expression tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.projection_tree import ProjectionTree
from repro.analysis.schema_constraints import (
    PositionSet,
    SchemaConstraints,
    apply_step,
)
from repro.xquery.ast import (
    And,
    Comparison,
    Condition,
    Element,
    Exists,
    Expr,
    ForLoop,
    IfThenElse,
    Not,
    Or,
    PathOperand,
    PathOutput,
    Quantified,
    Query,
    ROOT_VAR,
    SignOff,
    Sequence,
    VarRef,
)
from repro.xquery.paths import Axis, Path, TestKind, dos_node, format_path

__all__ = [
    "EarlinessPlan",
    "NodeWatermark",
    "OutputDecision",
    "compute_earliness",
]

#: An output site: ``(variable, relative path)``; the bare ``$x`` output is
#: ``(x, ())``.
Site = tuple[str, Path]


@dataclass(frozen=True)
class OutputDecision:
    """The watermark decision for one output expression."""

    var: str
    path: Path
    #: May the evaluator stream this site's subtree as tokens arrive?
    #: True exactly for ``open`` watermarks (structurally sound).
    streamable: bool
    watermark: str  # "open" | "signoff"
    reason: str

    @property
    def site(self) -> Site:
        return (self.var, self.path)

    def __str__(self) -> str:
        target = f"${self.var}" + (
            format_path(self.path, leading_slash=True) if self.path else ""
        )
        return f"{target}: {self.watermark} ({self.reason})"


@dataclass(frozen=True)
class NodeWatermark:
    """The decided watermark of one projection-tree node / dependency."""

    display_id: int | None  # projection-tree node id, when the role has one
    var: str
    path: str  # rendered dependency or site path
    kind: str  # "open" | "first-witness" | "at-most-once" | "horizon" | "signoff"
    detail: str
    #: Schema-derived watermarks only hold if the document conforms; the
    #: runtime must ignore them unless ``trust_schema=True``.
    trusted_only: bool = False

    def __str__(self) -> str:
        node = f"n{self.display_id} " if self.display_id is not None else ""
        trust = " [trusted only]" if self.trusted_only else ""
        return f"{node}${self.var}{self.path}: {self.kind}{trust} — {self.detail}"


@dataclass(frozen=True)
class EarlinessPlan:
    """Per-site decisions plus the per-node watermark report."""

    decisions: tuple[OutputDecision, ...]
    watermarks: tuple[NodeWatermark, ...]
    #: The sites the evaluator may stream (``open`` watermark), keyed the
    #: way the runtime looks them up.
    streamable_sites: frozenset[Site]
    #: Loop variables whose source content model proves at most one match
    #: per binding (``at-most-once`` watermark): the scan may stop at the
    #: first match instead of draining the binding.  Schema-derived, so the
    #: runtime uses these only under ``EngineOptions(trust_schema=True)``.
    single_match_loops: frozenset[str] = frozenset()

    def decision_for(self, var: str, path: Path = ()) -> OutputDecision | None:
        for decision in self.decisions:
            if decision.var == var and decision.path == path:
                return decision
        return None

    def summary(self) -> str:
        lines = [
            f"earliness: {len(self.streamable_sites)}/{len(self.decisions)} "
            f"output site(s) streamable"
        ]
        lines += [f"  {decision}" for decision in self.decisions]
        lines += [f"  {mark}" for mark in self.watermarks]
        return "\n".join(lines)


def _output_sites(query: Query) -> list[Site]:
    """Output expressions of the (rewritten) query, in syntactic order."""
    sites: list[Site] = []
    seen: set[Site] = set()

    def add(var: str, path: Path) -> None:
        if (var, path) not in seen:
            seen.add((var, path))
            sites.append((var, path))

    def visit(expr: Expr) -> None:
        if isinstance(expr, Sequence):
            for item in expr.items:
                visit(item)
        elif isinstance(expr, Element):
            visit(expr.body)
        elif isinstance(expr, ForLoop):
            visit(expr.body)
        elif isinstance(expr, IfThenElse):
            visit(expr.then_branch)
            visit(expr.else_branch)
        elif isinstance(expr, VarRef):
            add(expr.var, ())
        elif isinstance(expr, PathOutput):
            add(expr.var, expr.path)
        elif isinstance(expr, SignOff):
            pass  # signoffs carry no output

    visit(query.root)
    return sites


def _condition_watermarks(query: Query) -> list[NodeWatermark]:
    """First-witness watermarks for the query's existential conditions."""
    marks: list[NodeWatermark] = []
    seen: set[tuple[str, str, str]] = set()

    def add(var: str, path: Path, what: str) -> None:
        rendered = format_path(path, leading_slash=True) if path else ""
        key = (var, rendered, what)
        if key in seen:
            return
        seen.add(key)
        marks.append(
            NodeWatermark(
                display_id=None,
                var=var,
                path=rendered,
                kind="first-witness",
                detail=f"{what} decided true at its first witness",
            )
        )

    def visit_condition(cond: Condition) -> None:
        if isinstance(cond, Exists):
            add(cond.var, cond.path, "existence check")
        elif isinstance(cond, Comparison):
            for operand in (cond.left, cond.right):
                if isinstance(operand, PathOperand):
                    add(operand.var, operand.path, "comparison")
        elif isinstance(cond, Quantified):
            # ``some`` is existential over its witness sequence: one
            # satisfying witness decides it true.  ``every`` is only
            # decided once all witnesses are seen, so it gets no mark;
            # the inner condition's polarity depends on the quantifier,
            # so no marks are emitted for it either.
            if cond.quantifier == "some":
                add(cond.source, cond.path, "some-quantifier")
        elif isinstance(cond, (And, Or)):
            visit_condition(cond.left)
            visit_condition(cond.right)
        elif isinstance(cond, Not):
            visit_condition(cond.operand)

    def visit(expr: Expr) -> None:
        if isinstance(expr, Sequence):
            for item in expr.items:
                visit(item)
        elif isinstance(expr, Element):
            visit(expr.body)
        elif isinstance(expr, ForLoop):
            if expr.where is not None:
                visit_condition(expr.where)
            visit(expr.body)
        elif isinstance(expr, IfThenElse):
            visit_condition(expr.cond)
            visit(expr.then_branch)
            visit(expr.else_branch)

    visit(query.root)
    return marks


def _single_match_loops(
    rewritten: Query, constraints: SchemaConstraints
) -> list[tuple[str, str]]:
    """Loop vars with a schema proof of at most one match per binding.

    Walks the loop nesting, pushing the schema position set of each
    binding through the loop steps.  A child-axis tag-test loop is
    certified when *every* position its source can occupy allows the
    child tag at most once (reference positions are PCDATA leaves, so
    they contribute zero matches).  The virtual document root qualifies
    for any tag: a well-formed document has exactly one root element.
    """
    schema = constraints.schema
    certified: list[tuple[str, str]] = []
    positions: dict[str, PositionSet | None] = {ROOT_VAR: PositionSet(doc=True)}

    def visit(expr: Expr) -> None:
        if isinstance(expr, Sequence):
            for item in expr.items:
                visit(item)
        elif isinstance(expr, Element):
            visit(expr.body)
        elif isinstance(expr, IfThenElse):
            visit(expr.then_branch)
            visit(expr.else_branch)
        elif isinstance(expr, ForLoop):
            source = positions.get(expr.source)
            step = expr.path[0] if len(expr.path) == 1 else None
            if source is not None and step is not None:
                positions[expr.var] = apply_step(schema, source, step)
                if (
                    step.axis is Axis.CHILD
                    and step.test.kind is TestKind.TAG
                    and not source.text
                    and all(
                        at_reference or schema.at_most_once(tag, step.test.name)
                        for tag, at_reference in source.elements
                    )
                ):
                    certified.append((expr.var, step.test.name))
            else:
                positions[expr.var] = None
            visit(expr.body)

    visit(rewritten.root)
    return certified


def compute_earliness(
    rewritten: Query,
    tree: ProjectionTree,
    constraints: SchemaConstraints | None = None,
) -> EarlinessPlan:
    """Compute the decided-watermark plan for a compiled query.

    Streamability is certified purely structurally: a site streams iff its
    dependency role (``path/dos::node()``) exists in the projection tree —
    redundant-role elimination never drops ``dep`` roles, so the aggregate
    cover the certificate relies on survives every compile option.  Schema
    facts from ``constraints`` are folded into the watermark *report* with
    ``trusted_only=True``; they never make a site streamable, so the plan
    is sound on schema-violating documents.
    """
    decisions: list[OutputDecision] = []
    watermarks: list[NodeWatermark] = []
    streamable: set[Site] = set()

    for var, path in _output_sites(rewritten):
        dep_path = path + (dos_node(),)
        entry = next(
            (
                (dep, role)
                for dep, role in tree.dep_entries.get(var, [])
                if dep.path == dep_path
            ),
            None,
        )
        rendered = format_path(path, leading_slash=True) if path else ""
        if entry is not None:
            dep, role = entry
            node = tree.role_nodes.get(role)
            streamable.add((var, path))
            decisions.append(
                OutputDecision(
                    var=var,
                    path=path,
                    streamable=True,
                    watermark="open",
                    reason=f"aggregate dep role r{role.id} covers the subtree "
                    "from its open tag until the post-output signoff",
                )
            )
            watermarks.append(
                NodeWatermark(
                    display_id=node.display_id if node is not None else None,
                    var=var,
                    path=rendered + "/dos::node()",
                    kind="open",
                    detail="decided at the target's open tag (aggregate cover)",
                )
            )
        else:
            decisions.append(
                OutputDecision(
                    var=var,
                    path=path,
                    streamable=False,
                    watermark="signoff",
                    reason="no matching dep role; decided at conservative signoff",
                )
            )
            watermarks.append(
                NodeWatermark(
                    display_id=None,
                    var=var,
                    path=rendered,
                    kind="signoff",
                    detail="decided when the dependency's signoff executes",
                )
            )

    watermarks.extend(_condition_watermarks(rewritten))

    single_match: frozenset[str] = frozenset()
    if constraints is not None:
        certified_loops = _single_match_loops(rewritten, constraints)
        single_match = frozenset(var for var, _tag in certified_loops)
        for var, tag in certified_loops:
            watermarks.append(
                NodeWatermark(
                    display_id=None,
                    var=var,
                    path=f"/child::{tag}",
                    kind="at-most-once",
                    detail="content model allows one match per binding; "
                    "the scan may stop at the first",
                    trusted_only=True,
                )
            )
        for fact in constraints.signoff_facts:
            kind = "horizon" if fact.kind == "release-horizon" else fact.kind
            watermarks.append(
                NodeWatermark(
                    display_id=None,
                    var=fact.var,
                    path=fact.path,
                    kind=kind,
                    detail=fact.detail,
                    trusted_only=True,
                )
            )

    return EarlinessPlan(
        decisions=tuple(decisions),
        watermarks=tuple(watermarks),
        streamable_sites=frozenset(streamable),
        single_match_loops=single_match,
    )
