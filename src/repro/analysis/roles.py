"""Roles and role-sets (Section 2).

A *role* is a metaphor for the future relevance of a buffered node: each
projection tree node ``n_i`` defines a role ``r_i``; nodes matched during
stream projection are annotated with the corresponding roles, and signOff
statements remove them again.  A *role-set* is a multiset over roles —
multiplicities matter because a node can be matched by the same projection
tree node several times (descendant axes, Figure 4) and is then signed off
equally often.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Role", "RoleSet", "UndefinedRoleRemoval"]


class UndefinedRoleRemoval(RuntimeError):
    """Removing a role with multiplicity zero is undefined (Section 2).

    Raised in strict mode; a correct static rewriting never triggers it
    (safety requirement (1) of Section 3).
    """


@dataclass(eq=False)
class Role:
    """A role ``r_i`` defined by projection tree node ``n_i``.

    Roles compare by identity; ``rQ`` is injective, so every projection tree
    node owns a distinct role object.  ``aggregate`` marks roles that are
    placed on subtree roots instead of every subtree node (Section 6).
    """

    id: int
    kind: str  # "binding" for for-loop variables, "dep" for dependencies
    var: str  # the variable this role belongs to
    aggregate: bool = False

    @property
    def name(self) -> str:
        return f"r{self.id}"

    def __repr__(self) -> str:
        return f"Role({self.name}, {self.kind} of {self.var})"


class RoleSet:
    """A multiset of roles attached to one buffered node.

    The representation is a plain dict role -> multiplicity; empty entries
    are removed eagerly so ``bool(role_set)`` is the emptiness test the
    garbage collector needs.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[Role, int] = {}

    def add(self, role: Role, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("role multiplicities are positive")
        self._counts[role] = self._counts.get(role, 0) + count

    def remove(self, role: Role, count: int = 1) -> None:
        """``rem_rho``: decrement multiplicity; undefined below zero."""
        current = self._counts.get(role, 0)
        if current < count:
            raise UndefinedRoleRemoval(
                f"removing {role.name} x{count} from a node holding x{current}"
            )
        if current == count:
            del self._counts[role]
        else:
            self._counts[role] = current - count

    def clear(self) -> None:
        """Drop every role instance (free-list node recycling)."""
        self._counts.clear()

    def count(self, role: Role) -> int:
        return self._counts.get(role, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __contains__(self, role: Role) -> bool:
        return role in self._counts

    def __iter__(self):
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def as_names(self) -> list[str]:
        """Role names with multiplicity, sorted by id — e.g. ['r3', 'r5', 'r5']."""
        names: list[str] = []
        for role, count in sorted(self._counts.items(), key=lambda item: item[0].id):
            names.extend([role.name] * count)
        return names

    def __repr__(self) -> str:
        return "{" + ",".join(self.as_names()) + "}"
